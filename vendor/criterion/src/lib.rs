//! Offline stand-in for `criterion`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides the benchmark-harness subset the workspace's benches use:
//! [`Criterion`], `benchmark_group` / `bench_function` / `iter`,
//! [`Throughput`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple best-of-N wall-clock
//! measurement printed to stdout — adequate for relative comparisons,
//! with none of criterion's statistics.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic)]
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            samples: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, 10, None, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the sample count (measurement repetitions).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates throughput for per-element/-byte rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.samples, self.throughput, f);
        self
    }

    /// Finishes the group (no-op; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    best: Duration,
}

impl Bencher {
    /// Times one execution of `f` and keeps the best observation.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed();
        if elapsed < self.best {
            self.best = elapsed;
        }
    }
}

fn run_bench(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        best: Duration::MAX,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let best = bencher.best;
    match throughput {
        Some(Throughput::Elements(n)) if best > Duration::ZERO => {
            let rate = n as f64 / best.as_secs_f64();
            println!("  {name}: best {best:?} ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if best > Duration::ZERO => {
            let rate = n as f64 / best.as_secs_f64();
            println!("  {name}: best {best:?} ({rate:.0} B/s)");
        }
        _ => println!("  {name}: best {best:?}"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
