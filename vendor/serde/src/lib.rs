//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under the same crate name.
//! It supports exactly the subset the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs with named fields and
//!   on enums with unit / tuple / struct variants (externally tagged, like
//!   real serde),
//! * primitives, `String`, `Option<T>`, `Vec<T>`, slices, arrays, tuples
//!   up to arity 4, and `HashMap`/`BTreeMap` with string-like keys.
//!
//! Instead of serde's visitor-based zero-copy model, everything funnels
//! through an owned [`Value`] tree — dramatically simpler, and plenty for
//! the report/config payloads this workspace serializes. `serde_json`
//! (also vendored) renders and parses that tree.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic)]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A serialized value: the common data model between `Serialize`,
/// `Deserialize`, and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number. Non-finite values render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow as an object field list.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// One-word description of the value's shape, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A "found X, expected Y" error.
    #[must_use]
    pub fn expected(what: &str, found: &str) -> Self {
        Error(format!("expected {what}, found {found}"))
    }

    /// Free-form error.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the common data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the common data model.
    ///
    /// # Errors
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the input. Only
    /// `Option<T>` accepts this (as `None`), matching real serde.
    ///
    /// # Errors
    /// Returns an [`Error`] for every type except `Option<T>`.
    fn missing(field: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{field}`")))
    }
}

// ---- primitive impls --------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match *v {
                    Value::I64(n) => <$t>::try_from(n).ok(),
                    Value::U64(n) => <$t>::try_from(n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| Error::expected(stringify!($t), v.kind()))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    // Real serde_json cannot represent non-finite floats;
                    // they serialize as null and come back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::expected(stringify!($t), v.kind())),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", v.kind())),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v.kind())),
        }
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::expected("array", v.kind()))?;
        if items.len() != N {
            return Err(Error(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array (tuple)", v.kind()))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error(format!("expected tuple of {expected}, found {}", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::expected("object", v.kind()))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::expected("object", v.kind()))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        assert_eq!(<Option<i64>>::missing("x"), Ok(None));
        assert!(<i64 as Deserialize>::missing("x").is_err());
    }

    #[test]
    fn int_roundtrip_through_value() {
        assert_eq!(u64::from_value(&18u32.to_value()), Ok(18));
        assert_eq!(i64::from_value(&Value::U64(5)), Ok(5));
        assert!(u8::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn big_u64_uses_unsigned_repr() {
        let v = u64::MAX.to_value();
        assert_eq!(v, Value::U64(u64::MAX));
        assert_eq!(u64::from_value(&v), Ok(u64::MAX));
    }

    #[test]
    fn float_accepts_integers_and_null() {
        assert_eq!(f64::from_value(&Value::I64(3)), Ok(3.0));
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1i64, 2.5f64).to_value();
        assert_eq!(v, Value::Array(vec![Value::I64(1), Value::F64(2.5)]));
        let back: (i64, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, 2.5));
    }
}
