//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in this build environment, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) cannot be used.
//! This crate re-implements `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the vendored `serde` stub's
//! `Value`-tree model, parsing the input token stream by hand.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * structs with named fields → JSON objects,
//! * enums with unit variants → strings (`"Variant"`),
//! * enums with struct variants → externally tagged objects
//!   (`{"Variant": {...}}`),
//! * enums with one-element tuple variants → `{"Variant": value}`.
//!
//! Generics, tuple structs, and serde attributes are intentionally
//! unsupported and produce a `compile_error!` naming the offender.

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (stub data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_input(input) {
        Ok(item) => {
            let code = match (&item.body, mode) {
                (Body::Struct(fields), Mode::Serialize) => struct_serialize(&item.name, fields),
                (Body::Struct(fields), Mode::Deserialize) => struct_deserialize(&item.name, fields),
                (Body::Enum(variants), Mode::Serialize) => enum_serialize(&item.name, variants),
                (Body::Enum(variants), Mode::Deserialize) => enum_deserialize(&item.name, variants),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

struct Item {
    name: String,
    body: Body,
}

enum Body {
    /// Named field names, in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Struct variant with named fields.
    Named(Vec<String>),
    /// Tuple variant; we only support arity 1.
    Tuple,
}

/// Parses `[attrs] [pub] (struct|enum) Name { ... }`.
fn parse_input(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive: expected type name".to_string()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generics (on `{name}`)"
        ));
    }

    let group = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stub derive does not support tuple structs (on `{name}`)"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("derive: no body found for `{name}`")),
        }
    };

    let body = match keyword.as_str() {
        "struct" => Body::Struct(parse_named_fields(group.stream())?),
        "enum" => Body::Enum(parse_variants(group.stream())?),
        other => return Err(format!("derive: unsupported item kind `{other}`")),
    };
    Ok(Item { name, body })
}

/// Advances past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional `(crate)` / `(super)` restriction
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` — commas inside `<...>` generics belong to the
/// type (parens/brackets/braces are opaque `Group`s already).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("derive: expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("derive: expected `:` after field `{name}`")),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Parses `Variant, Variant { a: T }, Variant(T), ...`.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("derive: expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = 1 + g
                    .stream()
                    .into_iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ',' ))
                    .count();
                // A trailing comma overcounts, but arity > 1 is unsupported
                // anyway; single-element tuple variants have no comma.
                if arity > 1 {
                    return Err(format!(
                        "serde stub derive supports only 1-element tuple variants (`{name}`)"
                    ));
                }
                i += 1;
                VariantKind::Tuple
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- code generation --------------------------------------------------

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::with_capacity({n});\n\
                {pushes}\
                ::serde::Value::Object(fields)\n\
            }}\n\
        }}",
        n = fields.len()
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match obj_value.get({f:?}) {{\n\
                     Some(v) => ::serde::Deserialize::from_value(v)\n\
                         .map_err(|e| ::serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?,\n\
                     None => ::serde::Deserialize::missing({f:?})?,\n\
                 }},\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(obj_value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                if obj_value.as_object().is_none() {{\n\
                    return Err(::serde::Error::expected(\"object ({name})\", obj_value.kind()));\n\
                }}\n\
                Ok({name} {{\n\
                    {inits}\
                }})\n\
            }}\n\
        }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                ),
                VariantKind::Named(fields) => {
                    let binds = fields.join(", ");
                    let pushes: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "inner.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));\n"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(inner))])\n\
                         }},\n"
                    )
                }
                VariantKind::Tuple => format!(
                    "{name}::{vn}(x) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(x))]),\n"
                ),
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n\
                match self {{\n{arms}}}\n\
            }}\n\
        }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("{vn:?} => return Ok({name}::{vn}),\n", vn = v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: match inner.get({f:?}) {{\n\
                                     Some(v) => ::serde::Deserialize::from_value(v)\n\
                                         .map_err(|e| ::serde::Error::custom(format!(\"{name}::{vn}.{f}: {{e}}\")))?,\n\
                                     None => ::serde::Deserialize::missing({f:?})?,\n\
                                 }},\n"
                            )
                        })
                        .collect();
                    Some(format!(
                        "{vn:?} => {{\n\
                             let inner = tag_value;\n\
                             return Ok({name}::{vn} {{ {inits} }});\n\
                         }},\n"
                    ))
                }
                VariantKind::Tuple => Some(format!(
                    "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(tag_value)?)),\n"
                )),
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                match v {{\n\
                    ::serde::Value::Str(s) => {{\n\
                        match s.as_str() {{\n\
                            {unit_arms}\
                            other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                        }}\n\
                    }}\n\
                    ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                        let (tag, tag_value) = &fields[0];\n\
                        let _ = tag_value;\n\
                        match tag.as_str() {{\n\
                            {tagged_arms}\
                            other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                        }}\n\
                    }}\n\
                    _ => Err(::serde::Error::expected(\"string or single-key object ({name})\", v.kind())),\n\
                }}\n\
            }}\n\
        }}"
    )
}
