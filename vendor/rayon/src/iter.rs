//! Parallel iterator adapters over the work-stealing engine.
//!
//! The design is deliberately simpler than upstream rayon's
//! producer/consumer splitting: the source is materialised into a task
//! vector once, adapters are thin structs recording the pipeline, and a
//! terminal call ([`ParallelIterator::collect`], [`ParallelIterator::sum`],
//! …) hands the tasks to the pool's `run_tasks`. Because results are
//! keyed by task index, every terminal operation is **deterministic**:
//! the output is identical whatever the thread count.

use crate::pool::run_tasks;

/// An iterator whose element production can be distributed across the
/// work-stealing pool.
///
/// Adapters (`map`, `filter`, `filter_map`) defer work; terminal methods
/// (`collect`, `sum`, `for_each`, `count`) execute the pipeline in
/// parallel and assemble results in input order.
///
/// ```
/// use rayon::prelude::*;
/// let evens_doubled: Vec<u32> = (0u32..10)
///     .into_par_iter()
///     .filter(|x| x % 2 == 0)
///     .map(|x| x * 2)
///     .collect();
/// assert_eq!(evens_doubled, vec![0, 4, 8, 12, 16]);
/// ```
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Executes the pipeline on the pool, returning all elements in
    /// input order. Adapters build on this; user code normally calls
    /// [`ParallelIterator::collect`] instead.
    fn drive(self) -> Vec<Self::Item>;

    /// Applies `f` to every element in parallel.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keeps only elements for which `f` returns `true`.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Applies `f` in parallel and keeps the `Some` results.
    fn filter_map<O, F>(self, f: F) -> FilterMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> Option<O> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Runs the pipeline and collects the results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs the pipeline and sums the results.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Runs `f` on every element in parallel, discarding results.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _units: Vec<()> = self.map(f).drive();
    }

    /// Runs the pipeline and counts the surviving elements.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Source stage: a materialised task vector. Produced by the entry-point
/// traits in [`crate::prelude`].
#[derive(Debug)]
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Parallel `map` stage; see [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    O: Send,
    F: Fn(B::Item) -> O + Sync + Send,
{
    type Item = O;

    fn drive(self) -> Vec<O> {
        run_tasks(self.base.drive(), self.f)
    }
}

/// Parallel `filter` stage; see [`ParallelIterator::filter`].
#[derive(Debug)]
pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;

    fn drive(self) -> Vec<B::Item> {
        let f = self.f;
        run_tasks(
            self.base.drive(),
            move |x| if f(&x) { Some(x) } else { None },
        )
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Parallel `filter_map` stage; see [`ParallelIterator::filter_map`].
#[derive(Debug)]
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    O: Send,
    F: Fn(B::Item) -> Option<O> + Sync + Send,
{
    type Item = O;

    fn drive(self) -> Vec<O> {
        run_tasks(self.base.drive(), self.f)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a [`ParallelIterator`] by value.
///
/// Blanket-implemented for every `IntoIterator` with `Send` items, so
/// vectors, ranges, maps, and options all work:
///
/// ```
/// use rayon::prelude::*;
/// let total: u64 = (0u64..100).into_par_iter().map(|x| x * x).sum();
/// assert_eq!(total, 328_350);
/// ```
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator over the pool.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = ParIter<I::Item>;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `.par_iter()`: a parallel iterator over `&T` for slices (and
/// everything that derefs or coerces to a slice — `Vec`, arrays).
pub trait IntoParallelRefIterator<T: Sync> {
    /// Returns a parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.par_iter_mut()`: a parallel iterator over `&mut T` for slices.
pub trait IntoParallelRefMutIterator<T: Send> {
    /// Returns a parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}
