//! The work-stealing execution engine.
//!
//! [`run_tasks`] is the single entry point the iterator adapters drive:
//! it materialises a task list, block-distributes the indices across
//! per-worker deques, and spawns scoped worker threads that drain their
//! own deque from the front and steal the *back half* of a victim's
//! deque when they run dry. Results are written into index-addressed
//! slots, so the output order is always the input order — identical at
//! 1, 2, or 64 threads.
//!
//! Nested parallelism is handled the cheap way: a worker thread that
//! re-enters the engine runs the inner task set sequentially. The outer
//! fan-out already saturates the pool, so inner fan-outs would only add
//! contention.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside worker threads so nested parallel calls degrade to
    /// sequential execution instead of oversubscribing.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel operations on this thread will use.
///
/// Resolution order: an enclosing [`ThreadPool::install`] scope, then the
/// `RAYON_NUM_THREADS` environment variable, then
/// [`std::thread::available_parallelism`].
///
/// ```
/// let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
/// assert_eq!(pool.install(rayon::current_num_threads), 3);
/// ```
#[must_use]
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// With more than one thread available (and outside a worker), `b` runs
/// on a scoped helper thread while the caller runs `a`. A panic in
/// either closure propagates to the caller.
///
/// ```
/// let (a, b) = rayon::join(|| 2 + 2, || "ok");
/// assert_eq!((a, b), (4, "ok"));
/// ```
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || IS_WORKER.with(Cell::get) {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            IS_WORKER.with(|c| c.set(true));
            b()
        });
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

/// Applies `f` to every item on the work-stealing pool and returns the
/// outputs **in input order**.
///
/// Sequential fast paths: zero/one item, a one-thread configuration, or
/// a nested call from inside a worker.
pub(crate) fn run_tasks<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n_items = items.len();
    let threads = current_num_threads().min(n_items);
    if threads <= 1 || IS_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }

    // One slot per task: the input is taken exactly once, the output is
    // written exactly once, both keyed by the task's index.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n_items).map(|_| Mutex::new(None)).collect();

    // Block-distribute indices so workers start on disjoint cache-friendly
    // ranges; stealing rebalances whatever the static split got wrong.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = w * n_items / threads;
            let hi = (w + 1) * n_items / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    std::thread::scope(|s| {
        for me in 0..threads {
            let (deques, slots, results, f) = (&deques, &slots, &results, &f);
            s.spawn(move || {
                IS_WORKER.with(|c| c.set(true));
                worker(me, deques, slots, results, f);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panics propagate before collection")
                .expect("every scheduled task ran")
        })
        .collect()
}

/// Worker loop: pop from our own deque, steal when empty, exit when the
/// whole pool is dry.
fn worker<I, O, F>(
    me: usize,
    deques: &[Mutex<VecDeque<usize>>],
    slots: &[Mutex<Option<I>>],
    results: &[Mutex<Option<O>>],
    f: &F,
) where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    loop {
        let own = deques[me].lock().expect("deque lock").pop_front();
        let idx = match own {
            Some(i) => i,
            None => match steal(me, deques) {
                Some(i) => i,
                None => return,
            },
        };
        // Take the input *before* running `f` so no lock is held during
        // user code (a panic there must not poison the slot).
        let item = slots[idx]
            .lock()
            .expect("slot lock")
            .take()
            .expect("task scheduled exactly once");
        let out = f(item);
        *results[idx].lock().expect("result lock") = Some(out);
    }
}

/// Scans victims round-robin from `me + 1`; takes the back half of the
/// first non-empty deque (the owner keeps the front, which it is already
/// working through), queues the surplus locally, and returns one index.
fn steal(me: usize, deques: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    let n = deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        let mut stolen = {
            let mut dq = deques[victim].lock().expect("deque lock");
            let len = dq.len();
            if len == 0 {
                continue;
            }
            dq.split_off(len / 2)
        };
        let first = stolen.pop_front();
        if !stolen.is_empty() {
            deques[me].lock().expect("deque lock").extend(stolen);
        }
        if first.is_some() {
            return first;
        }
    }
    None
}

/// Error building a [`ThreadPool`]. The vendored pool cannot actually
/// fail to build; the type exists for API compatibility with rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with an explicit thread count.
///
/// ```
/// use rayon::prelude::*;
/// let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
/// let squares: Vec<i32> = pool.install(|| (0..8).into_par_iter().map(|x| x * x).collect());
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` means automatic.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this vendored implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle fixing the thread count for parallel operations run under
/// [`ThreadPool::install`].
///
/// Unlike upstream rayon there are no persistent threads: workers are
/// scoped to each parallel call, so a `ThreadPool` is just configuration
/// and costs nothing while idle.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect for every
    /// parallel operation (and nested `install`s restore it on exit,
    /// even on panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let over = if self.num_threads == 0 {
            None
        } else {
            Some(self.num_threads)
        };
        let _restore = Restore(POOL_OVERRIDE.with(|c| c.replace(over)));
        op()
    }

    /// The thread count parallel operations under this pool will use.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            self.install(current_num_threads)
        } else {
            self.num_threads
        }
    }
}
