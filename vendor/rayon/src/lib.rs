//! Offline stand-in for `rayon`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides the `par_iter()` / `into_par_iter()` entry points the
//! workspace uses, backed by *sequential* std iterators. Call sites keep
//! rayon's API shape; swapping the real rayon back in is a one-line
//! `Cargo.toml` change. Every standard `Iterator` combinator works on the
//! returned iterators, which is exactly how the workspace uses them
//! (`map`/`filter`/`collect`/`sum`).

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic)]
/// The rayon prelude: parallel-iterator entry-point traits.
pub mod prelude {
    /// `.par_iter()` on slices and anything that derefs to a slice
    /// (sequential fallback).
    pub trait IntoParallelRefIterator<T> {
        /// Returns a (sequential) iterator over references.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> IntoParallelRefIterator<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `.into_par_iter()` on owned collections and ranges (sequential
    /// fallback).
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts into a (sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_iter_mut()` on slices (sequential fallback).
    pub trait IntoParallelRefMutIterator<T> {
        /// Returns a (sequential) iterator over mutable references.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> IntoParallelRefMutIterator<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
        let range_sum: u64 = (0u64..5).into_par_iter().sum();
        assert_eq!(range_sum, 10);
    }
}
