//! Offline work-stealing stand-in for `rayon`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides the subset of rayon's API the workspace uses — but unlike the
//! original sequential facade it actually runs work in parallel: a
//! work-stealing pool of scoped threads with per-worker deques backs
//! `par_iter()` / `into_par_iter()` pipelines and [`join`]. Swapping the
//! real rayon back in remains a one-line `Cargo.toml` change.
//!
//! Two guarantees call sites rely on:
//!
//! 1. **Determinism** — results are keyed by input index, so every
//!    terminal operation returns the same bytes at any thread count.
//! 2. **Bounded nesting** — parallel calls from inside a worker thread run
//!    sequentially, so nested `par_iter`s never oversubscribe the host.
//!
//! Thread count resolution: [`ThreadPool::install`] override, then the
//! `RAYON_NUM_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! ```
//! use rayon::prelude::*;
//! let squares: Vec<u64> = (0u64..32).into_par_iter().map(|x| x * x).collect();
//! assert_eq!(squares[31], 961);
//! ```

// Vendored stand-in: exempt from workspace lint policy, but rustdoc-clean.
#![allow(clippy::all, clippy::pedantic)]
#![warn(missing_docs)]

pub mod iter;
mod pool;

pub use pool::{current_num_threads, join, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// The rayon prelude: parallel-iterator entry points and combinators.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
        let range_sum: u64 = (0u64..5).into_par_iter().sum();
        assert_eq!(range_sum, 10);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let work = |threads: usize| -> Vec<u64> {
            with_threads(threads, || {
                (0u64..500)
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 3)
                    .filter(|x| x % 3 != 0)
                    .collect()
            })
        };
        let seq = work(1);
        assert_eq!(seq, work(2));
        assert_eq!(seq, work(8));
    }

    #[test]
    fn pool_actually_runs_work_on_worker_threads() {
        let main_id = std::thread::current().id();
        let off_main = AtomicUsize::new(0);
        with_threads(4, || {
            (0..64).into_par_iter().for_each(|_| {
                if std::thread::current().id() != main_id {
                    off_main.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        // Every task runs on a scoped worker, never the calling thread.
        assert_eq!(off_main.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_parallel_calls_run_sequentially_and_correctly() {
        let matrix: Vec<u64> = with_threads(4, || {
            (0u64..8)
                .into_par_iter()
                .map(|row| (0u64..8).into_par_iter().map(|col| row * 8 + col).sum())
                .collect()
        });
        let expect: Vec<u64> = (0..8)
            .map(|row: u64| (0..8).map(|c| row * 8 + c).sum())
            .collect();
        assert_eq!(matrix, expect);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let (a, b) = crate::join(|| (0..100).sum::<i32>(), || "right".to_string());
        assert_eq!(a, 4950);
        assert_eq!(b, "right");
    }

    #[test]
    fn filter_map_and_count_match_sequential() {
        let n = with_threads(8, || {
            (0u32..1000)
                .into_par_iter()
                .filter_map(|x| (x % 7 == 0).then_some(x))
                .count()
        });
        assert_eq!(n, (0u32..1000).filter(|x| x % 7 == 0).count());
    }

    #[test]
    fn par_iter_mut_allows_in_place_updates() {
        let mut v: Vec<i64> = (0..100).collect();
        with_threads(4, || {
            v.par_iter_mut().for_each(|x| *x *= 2);
        });
        assert_eq!(v[99], 198);
    }

    #[test]
    fn steals_rebalance_a_lopsided_split() {
        // All the heavy tasks land in the first worker's block; with
        // stealing the others must pick some of them up. We only assert
        // correctness here (timing is not observable deterministically).
        let out: Vec<u64> = with_threads(4, || {
            (0u64..200)
                .into_par_iter()
                .map(|i| {
                    if i < 50 {
                        // Busy-ish task: tiny deterministic spin.
                        (0..500u64).fold(i, |a, b| a.wrapping_add(b ^ a))
                    } else {
                        i
                    }
                })
                .collect()
        });
        let expect: Vec<u64> = (0u64..200)
            .map(|i| {
                if i < 50 {
                    (0..500u64).fold(i, |a, b| a.wrapping_add(b ^ a))
                } else {
                    i
                }
            })
            .collect();
        assert_eq!(out, expect);
    }
}
