//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stub's [`Value`] tree as JSON text and
//! parses JSON text back into it. Supports the workspace's API subset:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Value`].

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic)]
pub use serde::Value;

/// Error type (shared with the `serde` stub).
pub use serde::Error;

/// `Result` alias matching real serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible in this stub (kept `Result` for API compatibility).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as compact JSON appended onto `out`, reusing the
/// caller's buffer instead of allocating a fresh `String` per call.
pub fn to_string_into<T: serde::Serialize + ?Sized>(value: &T, out: &mut String) {
    write_value(out, &value.to_value(), None, 0);
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
/// Infallible in this stub (kept `Result` for API compatibility).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
/// Returns a message with the byte offset for syntax errors, or a shape
/// mismatch description from the target type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

/// Parses JSON text into a [`Value`], requiring the whole input to be a
/// single JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a syntax error with byte offset.
pub fn parse_value_complete(text: &str) -> Result<Value> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---- rendering --------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let mut buf = itoa_buffer();
            out.push_str(write_i64(*n, &mut buf));
        }
        Value::U64(n) => {
            let mut buf = itoa_buffer();
            out.push_str(write_u64(*n, &mut buf));
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip float formatting.
                let s = format!("{x}");
                out.push_str(&s);
                // Keep it a JSON number that reads back as a float when it
                // carries no fraction (e.g. "1" stays integer — fine).
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn itoa_buffer() -> [u8; 24] {
    [0u8; 24]
}

fn write_i64(n: i64, buf: &mut [u8; 24]) -> &str {
    use std::io::Write as _;
    let mut cursor = std::io::Cursor::new(&mut buf[..]);
    let _ = write!(cursor, "{n}");
    let len = cursor.position() as usize;
    std::str::from_utf8(&buf[..len]).expect("digits are UTF-8")
}

fn write_u64(n: u64, buf: &mut [u8; 24]) -> &str {
    use std::io::Write as _;
    let mut cursor = std::io::Cursor::new(&mut buf[..]);
    let _ = write!(cursor, "{n}");
    let len = cursor.position() as usize;
    std::str::from_utf8(&buf[..len]).expect("digits are UTF-8")
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'n') => expect_literal(bytes, pos, "null", Value::Null),
        Some(b't') => expect_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error("lone surrogate in string".to_string()));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u escape".to_string()))?,
                        );
                    }
                    _ => return Err(Error(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
    let s = std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".to_string()))?;
    u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".to_string()))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error("invalid number".to_string()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1i64, 2u64), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(i64, u64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn optional_null_roundtrip() {
        let v: Option<i64> = None;
        assert_eq!(to_string(&v).unwrap(), "null");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<i64>>("5").unwrap(), Some(5));
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = Value::Object(vec![("a".to_string(), Value::I64(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<i64>("42 junk").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
