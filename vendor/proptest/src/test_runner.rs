//! Deterministic RNG, config, error type, and the `proptest!` macro family.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion; the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; another case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Deterministic splitmix64 stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded directly.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// RNG seeded from a test name (FNV-1a), so each test explores its own
    /// deterministic case stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        lo + (self.next_u64() % (span + 1)) as usize
    }
}

/// Defines property tests. Mirrors proptest's macro surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0i64..100, v in prop::collection::vec(any::<u64>(), 1..10)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut seed_rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let case_seed = seed_rng.next_u64();
                    let mut case_rng = $crate::test_runner::TestRng::new(case_seed);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut case_rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body; ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case #{} (case seed {}):\n{}",
                                stringify!($name), accepted, case_seed, msg,
                            );
                        }
                    }
                }
                assert!(
                    accepted > 0,
                    "proptest `{}`: every generated case was rejected by prop_assume!",
                    stringify!($name),
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = a.unit_f64();
        assert!((0.0..1.0).contains(&u));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0i64..10, 10i64..20), c in any::<bool>()) {
            prop_assert!(a < b);
            let _ = c;
        }

        #[test]
        fn assume_rejects_cleanly(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1i32), Just(2i32), Just(3i32)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }
}
