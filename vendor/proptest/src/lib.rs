//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait (ranges, tuples, `Just`, `any`,
//! `prop_map`, collections, options, unions), the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input;
//! * sampling is driven by a fixed splitmix64 stream seeded from the test
//!   name, so every run explores the same cases (fully reproducible, at
//!   the cost of run-to-run variety).

// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all, clippy::pedantic)]
use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy, StrategyExt, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_inclusive(self.size.min, self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::*;

    /// Strategy producing `Some(inner)` about 3/4 of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The prelude: everything a `use proptest::prelude::*;` caller expects.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, StrategyExt, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias so `prop::collection::vec` / `prop::option::of` work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
