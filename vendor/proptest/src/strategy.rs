//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of type `Self::Value`.
///
/// Object-safe: `prop_oneof!` boxes strategies into
/// `Box<dyn Strategy<Value = V>>`. Combinators live on [`StrategyExt`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Combinator extensions, blanket-implemented for every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generates with `self`, then builds a second strategy from the value
    /// and samples it.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (rejection sampling with
    /// a bounded retry count).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F> {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`StrategyExt::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`StrategyExt::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of several boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty option list.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Full-domain strategy for `T` (`any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() % 2 == 0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats only: mixed magnitudes, both signs.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * 10f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

// ---- range strategies -------------------------------------------------

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- tuple strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1_000 {
            let x = (5i64..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = (1u64..=3).sample(&mut rng);
            assert!((1..=3).contains(&y));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let n = (-20i32..-10).sample(&mut rng);
            assert!((-20..-10).contains(&n));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::new(9);
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
        let u = Union::new(vec![
            Box::new(Just(1i32)) as Box<dyn Strategy<Value = i32>>,
            Box::new(Just(2i32)),
        ]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[(u.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = TestRng::new(11);
        let s = crate::collection::vec(0i64..5, 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() <= 5);
        }
    }
}
