//! The Fig. 12 harness: every model × {without, with} elapsed time at
//! elapsed points of 1/8, 1/4, and 1/2 of the mean runtime.
//!
//! Protocol (paper §VI.A, "fair comparison"): both variants predict **only**
//! jobs that have already been running for the elapsed point `E`. The
//! baseline ("Without Elapsed Time") is trained normally and ignores `E`;
//! the improved variant ("With Elapsed Time") is trained on the jobs that
//! survived `E`, receives `ln(1+E)` as an extra feature, and never predicts
//! below `E` — a prediction under the already-observed elapsed time is
//! certainly wrong.

use lumos_core::Trace;
use rayon::prelude::*;
use serde::Serialize;

use crate::dataset::{Dataset, Instance};
use crate::metrics::{score, PredictionScore};
use crate::models::{Gbt, Last2, LinearRegression, Mlp, Model, Tobit};

/// Model families of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ModelKind {
    /// Mean of the user's last two runtimes.
    Last2,
    /// Ridge linear regression.
    LinReg,
    /// Censored Gaussian regression.
    Tobit,
    /// Gradient-boosted trees (XGBoost stand-in).
    Xgboost,
    /// Multilayer perceptron.
    Mlp,
}

impl ModelKind {
    /// All families, in the paper's presentation order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Last2,
        ModelKind::Tobit,
        ModelKind::Xgboost,
        ModelKind::LinReg,
        ModelKind::Mlp,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Last2 => "Last2",
            Self::LinReg => "LR",
            Self::Tobit => "Tobit",
            Self::Xgboost => "XGBoost",
            Self::Mlp => "MLP",
        }
    }

    fn build(self) -> Option<Box<dyn Model + Send>> {
        match self {
            Self::Last2 => None,
            Self::LinReg => Some(Box::new(LinearRegression::default())),
            Self::Tobit => Some(Box::new(Tobit::default())),
            Self::Xgboost => Some(Box::new(Gbt::default())),
            Self::Mlp => Some(Box::new(Mlp::default())),
        }
    }
}

/// Which side of the comparison a score belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Variant {
    /// Baseline: elapsed time not considered.
    Without,
    /// Improved: elapsed time as a feature + survival conditioning + clamp.
    WithElapsed,
}

/// One Fig. 12 cell pair: a model at one elapsed point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// Model family.
    pub model: ModelKind,
    /// Elapsed point as a fraction of mean runtime (1/8, 1/4, 1/2).
    pub elapsed_frac: f64,
    /// Elapsed point in seconds.
    pub elapsed_seconds: f64,
    /// Baseline score.
    pub without: PredictionScore,
    /// Elapsed-aware score.
    pub with_elapsed: PredictionScore,
}

fn static_features(i: &Instance) -> Vec<f64> {
    i.features.to_vec()
}

fn elapsed_features(i: &Instance, elapsed: f64) -> Vec<f64> {
    let mut f = i.features.to_vec();
    f.push((1.0 + elapsed).ln());
    f
}

fn run_model(
    kind: ModelKind,
    train: &[Instance],
    test: &[Instance],
    elapsed: f64,
    global_mean: f64,
) -> (PredictionScore, PredictionScore) {
    let actual: Vec<f64> = test.iter().map(|i| i.runtime).collect();
    match kind.build() {
        None => {
            // Last2 is history-based.
            let without: Vec<f64> = test
                .iter()
                .map(|i| Last2::predict(i, global_mean))
                .collect();
            let with: Vec<f64> = test
                .iter()
                .map(|i| Last2::predict_with_elapsed(i, global_mean, elapsed))
                .collect();
            (score(&actual, &without), score(&actual, &with))
        }
        Some(_) => {
            // Baseline: trained on everything, static features only.
            let mut base = kind.build().expect("feature model");
            let bx: Vec<Vec<f64>> = train.iter().map(static_features).collect();
            let by: Vec<f64> = train.iter().map(|i| i.runtime).collect();
            let bc: Vec<bool> = train.iter().map(|i| i.censored).collect();
            base.fit(&bx, &by, &bc);
            let without: Vec<f64> = test
                .iter()
                .map(|i| base.predict(&static_features(i)))
                .collect();

            // Elapsed-aware: survival-conditioned training + elapsed feature
            // + clamp at the observed elapsed time.
            let mut aware = kind.build().expect("feature model");
            let survivors: Vec<&Instance> = train.iter().filter(|i| i.runtime > elapsed).collect();
            // Degenerate guard: if nothing survived E, fall back to all.
            let pool: Vec<&Instance> = if survivors.is_empty() {
                train.iter().collect()
            } else {
                survivors
            };
            let ax: Vec<Vec<f64>> = pool.iter().map(|i| elapsed_features(i, elapsed)).collect();
            let ay: Vec<f64> = pool.iter().map(|i| i.runtime).collect();
            let ac: Vec<bool> = pool.iter().map(|i| i.censored).collect();
            aware.fit(&ax, &ay, &ac);
            let with: Vec<f64> = test
                .iter()
                .map(|i| {
                    aware
                        .predict(&elapsed_features(i, elapsed))
                        .max(elapsed.max(1.0))
                })
                .collect();

            (score(&actual, &without), score(&actual, &with))
        }
    }
}

/// Runs the full Fig. 12 grid on one trace. `max_instances` caps the
/// dataset (chronological thinning) so debug-mode tests stay fast.
#[must_use]
pub fn evaluate_trace(trace: &Trace, fracs: &[f64], max_instances: usize) -> Vec<Fig12Row> {
    let mut dataset = Dataset::from_trace(trace);
    if dataset.len() > max_instances && max_instances > 0 {
        let stride = dataset.len().div_ceil(max_instances);
        dataset.instances = dataset.instances.into_iter().step_by(stride).collect();
    }
    if dataset.len() < 20 {
        return Vec::new();
    }
    let (train, test) = dataset.split(0.6);
    let mean_runtime = train.iter().map(|i| i.runtime).sum::<f64>() / train.len() as f64;
    let global_mean = mean_runtime;

    let grid: Vec<(ModelKind, f64)> = ModelKind::ALL
        .iter()
        .flat_map(|&m| fracs.iter().map(move |&f| (m, f)))
        .collect();

    grid.par_iter()
        .filter_map(|&(model, frac)| {
            let elapsed = frac * mean_runtime;
            let eligible: Vec<Instance> = test
                .iter()
                .filter(|i| i.runtime > elapsed)
                .cloned()
                .collect();
            if eligible.len() < 10 {
                return None;
            }
            let (without, with_elapsed) = run_model(model, train, &eligible, elapsed, global_mean);
            Some(Fig12Row {
                model,
                elapsed_frac: frac,
                elapsed_seconds: elapsed,
                without,
                with_elapsed,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, JobStatus, SystemSpec};
    use lumos_stats::Rng;

    /// A synthetic bimodal workload: per user, short failures and long
    /// passes — the Fig. 11 structure that elapsed time exploits.
    fn bimodal_trace(n: usize, seed: u64) -> Trace {
        let mut rng = Rng::new(seed);
        let mut jobs = Vec::with_capacity(n);
        for i in 0..n {
            let user = (i % 7) as u32;
            let fail = rng.chance(0.4);
            let runtime = if fail {
                10 + rng.next_below(40) as i64
            } else {
                3_000 + rng.next_below(1_200) as i64
            };
            let mut j = Job::basic(i as u64, user, i as i64 * 30, runtime, 8);
            j.status = if fail {
                JobStatus::Failed
            } else {
                JobStatus::Passed
            };
            jobs.push(j);
        }
        Trace::new(SystemSpec::theta(), jobs).unwrap()
    }

    #[test]
    fn produces_the_full_grid() {
        let rows = evaluate_trace(&bimodal_trace(600, 1), &[0.125, 0.25, 0.5], 10_000);
        assert_eq!(rows.len(), 15, "5 models × 3 elapsed points");
        for r in &rows {
            assert!(r.without.jobs >= 10);
            assert_eq!(r.without.jobs, r.with_elapsed.jobs);
        }
    }

    #[test]
    fn elapsed_time_reduces_underestimates() {
        // The paper's headline: with elapsed time, the underestimate rate
        // drops for (almost) every model. On a cleanly bimodal workload it
        // must drop on average.
        let rows = evaluate_trace(&bimodal_trace(800, 2), &[0.25], 10_000);
        assert_eq!(rows.len(), 5);
        let mean_without: f64 = rows
            .iter()
            .map(|r| r.without.underestimate_rate)
            .sum::<f64>()
            / rows.len() as f64;
        let mean_with: f64 = rows
            .iter()
            .map(|r| r.with_elapsed.underestimate_rate)
            .sum::<f64>()
            / rows.len() as f64;
        assert!(
            mean_with < mean_without,
            "with {mean_with:.3} vs without {mean_without:.3}"
        );
    }

    #[test]
    fn accuracy_stays_comparable_or_better() {
        let rows = evaluate_trace(&bimodal_trace(800, 3), &[0.25], 10_000);
        let mean_without: f64 =
            rows.iter().map(|r| r.without.accuracy).sum::<f64>() / rows.len() as f64;
        let mean_with: f64 =
            rows.iter().map(|r| r.with_elapsed.accuracy).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_with > mean_without - 0.05,
            "with {mean_with:.3} vs without {mean_without:.3}"
        );
    }

    #[test]
    fn tiny_traces_return_empty() {
        let rows = evaluate_trace(&bimodal_trace(10, 4), &[0.25], 10_000);
        assert!(rows.is_empty());
    }

    #[test]
    fn subsampling_caps_instances() {
        let rows = evaluate_trace(&bimodal_trace(2_000, 5), &[0.125], 300);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.without.jobs < 200);
        }
    }
}
