//! Incremental (streaming) walltime predictors for the serving loop.
//!
//! The batch providers in [`crate::walltime`] consume a whole [`Trace`]
//! and emit one estimate per job. A live scheduler cannot do that: jobs
//! arrive one at a time and the predictor must answer *before* the next
//! submission, from state it carries forward. This module provides that
//! form — an [`OnlinePredictor`] is fed completions via
//! [`OnlinePredictor::observe`] and asked for planning walltimes via
//! [`OnlinePredictor::predict`], holding constant state per user
//! (last two runtimes) plus a running global mean.
//!
//! Two invariants matter for `lumos-serve`:
//!
//! * **Batch parity** — driving a streaming predictor over a trace in
//!   submission order reproduces [`crate::walltime::last2_walltimes`] /
//!   [`crate::walltime::user_walltimes`] exactly (those functions now
//!   delegate here), so an online, predictor-enabled server reports the
//!   same schedule as `simulate_with_walltimes` on the identical arrivals.
//! * **Determinism + serializability** — state is plain data with a
//!   canonical (user-sorted) layout, so it can be checkpointed next to a
//!   session snapshot and rebuilt by journal replay into a byte-identical
//!   predictor.
//!
//! [`Trace`]: lumos_core::Trace

use lumos_core::{Duration, UserId};
use serde::{Deserialize, Serialize};

/// The cold-start estimate (seconds) for the very first job, before any
/// runtime has been observed: one hour, the classic default.
pub const COLD_START_WALLTIME: f64 = 3_600.0;

/// Floor (seconds) applied to every model-derived estimate.
pub const MIN_WALLTIME: Duration = 60;

/// A streaming walltime predictor: constant-time prediction from bounded
/// per-user state, updated one completion at a time.
///
/// Estimates for a job may use only jobs submitted before it — callers
/// must `predict` first and `observe` after (strictly online, no leakage
/// of the job's own runtime).
pub trait OnlinePredictor {
    /// Planning walltime (seconds) for the next job of `user`.
    /// `requested` is the walltime the client supplied, if any; providers
    /// are free to ignore it.
    fn predict(&self, user: UserId, requested: Option<Duration>) -> Duration;

    /// Absorbs an observed runtime for `user` (floored at 1 s, matching
    /// the batch providers).
    fn observe(&mut self, user: UserId, runtime: Duration);

    /// Display name.
    fn name(&self) -> &'static str;
}

/// Per-user runtime history: the user's last two observed runtimes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct UserHistory {
    /// The user id (the `users` table is sorted by it).
    user: UserId,
    /// Most recent observed runtime.
    last: f64,
    /// Second most recent observed runtime, once there are two.
    prev: Option<f64>,
}

/// Streaming Last2 predictor (Tsafrir-style): the mean of the user's last
/// two observed runtimes × a safety margin, falling back to the running
/// global mean for first-time users and to [`COLD_START_WALLTIME`] before
/// any observation. Mirrors [`crate::walltime::last2_walltimes`] exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Last2Online {
    /// Multiplicative safety margin (underestimates are the dangerous
    /// direction; paper §VI.A).
    margin: f64,
    /// Jobs absorbed into the running global mean.
    seen: u64,
    /// Sum of all observed runtimes.
    global_sum: f64,
    /// Per-user histories, sorted by user id (canonical layout so equal
    /// state serializes identically).
    users: Vec<UserHistory>,
}

impl Last2Online {
    /// Creates an empty predictor with the given safety `margin`.
    ///
    /// # Panics
    /// Panics if `margin <= 0`.
    #[must_use]
    pub fn new(margin: f64) -> Self {
        assert!(margin > 0.0, "safety margin must be positive");
        Self {
            margin,
            seen: 0,
            global_sum: 0.0,
            users: Vec::new(),
        }
    }

    /// The configured safety margin.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Completions observed so far.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.seen
    }
}

impl OnlinePredictor for Last2Online {
    fn predict(&self, user: UserId, _requested: Option<Duration>) -> Duration {
        let base = match self.users.binary_search_by_key(&user, |h| h.user) {
            Ok(i) => {
                let h = &self.users[i];
                match h.prev {
                    Some(prev) => 0.5 * (h.last + prev),
                    None => h.last,
                }
            }
            Err(_) if self.seen > 0 => self.global_sum / self.seen as f64,
            Err(_) => COLD_START_WALLTIME,
        };
        ((base * self.margin) as Duration).max(MIN_WALLTIME)
    }

    fn observe(&mut self, user: UserId, runtime: Duration) {
        let runtime = runtime.max(1) as f64;
        match self.users.binary_search_by_key(&user, |h| h.user) {
            Ok(i) => {
                let h = &mut self.users[i];
                h.prev = Some(h.last);
                h.last = runtime;
            }
            Err(i) => self.users.insert(
                i,
                UserHistory {
                    user,
                    last: runtime,
                    prev: None,
                },
            ),
        }
        self.global_sum += runtime;
        self.seen += 1;
    }

    fn name(&self) -> &'static str {
        "last2"
    }
}

/// Pass-through provider: trusts the client's requested walltime and falls
/// back to a [`Last2Online`] estimate when none was supplied. Mirrors
/// [`crate::walltime::user_walltimes`] exactly (the margin applies only to
/// the fallback, never to a user-supplied value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserOnline {
    /// Fallback model for jobs submitted without a walltime.
    fallback: Last2Online,
}

impl UserOnline {
    /// Creates a pass-through provider whose fallback uses `margin`.
    ///
    /// # Panics
    /// Panics if `margin <= 0`.
    #[must_use]
    pub fn new(margin: f64) -> Self {
        Self {
            fallback: Last2Online::new(margin),
        }
    }
}

impl OnlinePredictor for UserOnline {
    fn predict(&self, user: UserId, requested: Option<Duration>) -> Duration {
        match requested {
            Some(w) => w,
            None => self.fallback.predict(user, None),
        }
    }

    fn observe(&mut self, user: UserId, runtime: Duration) {
        self.fallback.observe(user, runtime);
    }

    fn name(&self) -> &'static str {
        "user"
    }
}

/// Which predictor a server runs, with its safety margin. The plain-data
/// counterpart of [`Predictor`] — journaled in the configuration header so
/// recovery can detect drift and virgin replays can adopt it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorConfig {
    /// Streaming Last2 with the given margin; overrides client walltimes.
    Last2 {
        /// Multiplicative safety margin.
        margin: f64,
    },
    /// Trust client walltimes; Last2(margin) only as the missing-walltime
    /// fallback.
    User {
        /// Multiplicative safety margin (fallback only).
        margin: f64,
    },
}

impl PredictorConfig {
    /// Parses the CLI syntax `last2[:MARGIN]`, `user[:MARGIN]`, or `off`
    /// (→ `None`). The margin defaults to 1.0 and must be a positive
    /// finite number.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown modes or bad margins.
    pub fn parse(s: &str) -> Result<Option<Self>, String> {
        if s == "off" {
            return Ok(None);
        }
        let (kind, margin) = match s.split_once(':') {
            Some((k, m)) => {
                let margin: f64 = m
                    .parse()
                    .map_err(|e| format!("bad predictor margin `{m}`: {e}"))?;
                (k, margin)
            }
            None => (s, 1.0),
        };
        if !margin.is_finite() || margin <= 0.0 {
            return Err(format!(
                "predictor margin must be a positive finite number, got {margin}"
            ));
        }
        match kind {
            "last2" => Ok(Some(Self::Last2 { margin })),
            "user" => Ok(Some(Self::User { margin })),
            other => Err(format!(
                "unknown predictor `{other}` (expected last2[:MARGIN], user[:MARGIN], or off)"
            )),
        }
    }

    /// Display name of the configured mode.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Last2 { .. } => "last2",
            Self::User { .. } => "user",
        }
    }

    /// The configured safety margin.
    #[must_use]
    pub fn margin(self) -> f64 {
        match self {
            Self::Last2 { margin } | Self::User { margin } => margin,
        }
    }
}

/// A running predictor with its full streaming state — the serializable
/// dispatch over the concrete [`OnlinePredictor`] implementations, built
/// from a [`PredictorConfig`] and checkpointed next to session snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predictor {
    /// Streaming Last2 state.
    Last2(Last2Online),
    /// Pass-through state (Last2 fallback inside).
    User(UserOnline),
}

impl Predictor {
    /// Creates an empty predictor for `config`.
    #[must_use]
    pub fn new(config: PredictorConfig) -> Self {
        match config {
            PredictorConfig::Last2 { margin } => Self::Last2(Last2Online::new(margin)),
            PredictorConfig::User { margin } => Self::User(UserOnline::new(margin)),
        }
    }

    /// The plain-data configuration this predictor was built from.
    #[must_use]
    pub fn config(&self) -> PredictorConfig {
        match self {
            Self::Last2(p) => PredictorConfig::Last2 { margin: p.margin() },
            Self::User(p) => PredictorConfig::User {
                margin: p.fallback.margin(),
            },
        }
    }
}

impl OnlinePredictor for Predictor {
    fn predict(&self, user: UserId, requested: Option<Duration>) -> Duration {
        match self {
            Self::Last2(p) => p.predict(user, requested),
            Self::User(p) => p.predict(user, requested),
        }
    }

    fn observe(&mut self, user: UserId, runtime: Duration) {
        match self {
            Self::Last2(p) => p.observe(user, runtime),
            Self::User(p) => p.observe(user, runtime),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Self::Last2(p) => p.name(),
            Self::User(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walltime::{last2_walltimes, user_walltimes};
    use lumos_core::{Job, SystemSpec, Trace};

    fn trace(runtimes: &[(u32, i64)]) -> Trace {
        let jobs: Vec<Job> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &(user, rt))| Job::basic(i as u64, user, i as i64 * 10, rt, 8))
            .collect();
        Trace::new(SystemSpec::theta(), jobs).unwrap()
    }

    #[test]
    fn streaming_last2_matches_batch_provider() {
        let t = trace(&[
            (1, 100),
            (2, 50),
            (1, 200),
            (3, 0),
            (2, 7_200),
            (1, 400),
            (3, 30),
            (3, 90),
        ]);
        for margin in [1.0, 1.5, 2.0] {
            let batch = last2_walltimes(&t, margin);
            let mut p = Last2Online::new(margin);
            for (j, &expect) in t.jobs().iter().zip(&batch) {
                assert_eq!(p.predict(j.user, j.walltime), expect);
                p.observe(j.user, j.runtime);
            }
        }
    }

    #[test]
    fn streaming_user_matches_batch_provider() {
        let mut jobs = vec![
            Job::basic(0, 1, 0, 100, 8),
            Job::basic(1, 2, 10, 300, 8),
            Job::basic(2, 1, 20, 250, 8),
        ];
        jobs[1].walltime = Some(999);
        let t = Trace::new(SystemSpec::theta(), jobs).unwrap();
        let batch = user_walltimes(&t, 1.2);
        let mut p = UserOnline::new(1.2);
        for (j, &expect) in t.jobs().iter().zip(&batch) {
            assert_eq!(p.predict(j.user, j.walltime), expect);
            p.observe(j.user, j.runtime);
        }
    }

    #[test]
    fn cold_start_and_floor() {
        let p = Last2Online::new(1.0);
        assert_eq!(p.predict(1, None), 3_600);
        let mut p = Last2Online::new(1.0);
        p.observe(1, 2);
        assert_eq!(p.predict(1, None), 60, "estimates are floored at a minute");
    }

    #[test]
    fn state_round_trips_through_json() {
        let mut p = Predictor::new(PredictorConfig::Last2 { margin: 1.5 });
        for (u, rt) in [(3u32, 120i64), (1, 50), (3, 700), (2, 10)] {
            p.observe(u, rt);
        }
        let json = serde_json::to_string(&p).unwrap();
        let back: Predictor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.predict(3, None), p.predict(3, None));
    }

    #[test]
    fn config_parsing() {
        assert_eq!(PredictorConfig::parse("off").unwrap(), None);
        assert_eq!(
            PredictorConfig::parse("last2").unwrap(),
            Some(PredictorConfig::Last2 { margin: 1.0 })
        );
        assert_eq!(
            PredictorConfig::parse("last2:1.5").unwrap(),
            Some(PredictorConfig::Last2 { margin: 1.5 })
        );
        assert_eq!(
            PredictorConfig::parse("user:2").unwrap(),
            Some(PredictorConfig::User { margin: 2.0 })
        );
        assert!(PredictorConfig::parse("last2:-1").is_err());
        assert!(PredictorConfig::parse("last2:nope").is_err());
        assert!(PredictorConfig::parse("oracle").is_err());
    }
}
