//! Minimal dense linear algebra: solve `A x = b` by Gaussian elimination
//! with partial pivoting. Enough for normal-equation ridge regression.

/// Solves `A x = b` in place. `a` is row-major `n × n`.
/// Returns `None` when the matrix is numerically singular.
#[must_use]
#[allow(clippy::needless_range_loop)] // index form mirrors the math
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "A must be n × n");
    for row in &a {
        assert_eq!(row.len(), n, "A must be n × n");
    }
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x + 3y = 10 ⇒ x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }
}
