//! Prediction metrics — paper §VI.A.
//!
//! * **Prediction Accuracy** = `min(runtime, prediction) / max(runtime,
//!   prediction)`, averaged over jobs; higher is better.
//! * **Underestimate Rate** = fraction of jobs with `prediction < runtime`;
//!   lower is better, and it is the more important metric — an
//!   underestimated runtime makes backfilling schedule jobs into slots they
//!   will overrun, or gets jobs killed at their predicted limit.

use serde::Serialize;

/// Aggregate score over a prediction run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PredictionScore {
    /// Mean `min/max` accuracy.
    pub accuracy: f64,
    /// Fraction of predictions below the actual runtime.
    pub underestimate_rate: f64,
    /// Jobs scored.
    pub jobs: usize,
}

/// Per-pair accuracy.
#[must_use]
pub fn pair_accuracy(runtime: f64, prediction: f64) -> f64 {
    if runtime <= 0.0 || prediction <= 0.0 {
        return 0.0;
    }
    let (lo, hi) = if runtime < prediction {
        (runtime, prediction)
    } else {
        (prediction, runtime)
    };
    lo / hi
}

/// Mean accuracy over pairs.
///
/// # Panics
/// Panics on length mismatch.
#[must_use]
pub fn accuracy(runtimes: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(runtimes.len(), predictions.len());
    if runtimes.is_empty() {
        return 0.0;
    }
    runtimes
        .iter()
        .zip(predictions)
        .map(|(&r, &p)| pair_accuracy(r, p))
        .sum::<f64>()
        / runtimes.len() as f64
}

/// Fraction of pairs with `prediction < runtime`.
///
/// # Panics
/// Panics on length mismatch.
#[must_use]
pub fn underestimate_rate(runtimes: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(runtimes.len(), predictions.len());
    if runtimes.is_empty() {
        return 0.0;
    }
    runtimes
        .iter()
        .zip(predictions)
        .filter(|&(&r, &p)| p < r)
        .count() as f64
        / runtimes.len() as f64
}

/// Convenience: both metrics at once.
#[must_use]
pub fn score(runtimes: &[f64], predictions: &[f64]) -> PredictionScore {
    PredictionScore {
        accuracy: accuracy(runtimes, predictions),
        underestimate_rate: underestimate_rate(runtimes, predictions),
        jobs: runtimes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let s = score(&[100.0, 200.0], &[100.0, 200.0]);
        assert_eq!(s.accuracy, 1.0);
        assert_eq!(s.underestimate_rate, 0.0);
    }

    #[test]
    fn accuracy_is_symmetric_ratio() {
        assert!((pair_accuracy(100.0, 200.0) - 0.5).abs() < 1e-12);
        assert!((pair_accuracy(200.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn underestimates_counted_strictly() {
        let r = [100.0, 100.0, 100.0];
        let p = [99.0, 100.0, 101.0];
        assert!((underestimate_rate(&r, &p) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_values_score_zero() {
        assert_eq!(pair_accuracy(0.0, 10.0), 0.0);
        assert_eq!(pair_accuracy(10.0, -1.0), 0.0);
    }

    #[test]
    fn empty_is_safe() {
        let s = score(&[], &[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.accuracy, 0.0);
    }
}
