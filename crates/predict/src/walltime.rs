//! Online walltime providers: turn a runtime predictor into the per-job
//! planning estimates a backfilling scheduler consumes
//! (`lumos_sim::simulate_with_walltimes`).
//!
//! All providers are strictly *online*: the estimate for job *i* uses only
//! jobs submitted before it — no leakage of the job's own runtime.
//! Underestimated walltimes are the dangerous direction (Tsafrir et al.;
//! paper §VI.A), so every provider takes a multiplicative safety `margin`.

use lumos_core::{Duration, Trace};

use crate::online::{Last2Online, OnlinePredictor, UserOnline};

/// Per-job walltime estimates from the Last2 predictor: the mean of the
/// user's last two observed runtimes × `margin`, falling back to the
/// running global mean for first-time users. Returns one estimate per job,
/// submit-ordered like `trace.jobs()`.
///
/// Delegates to the streaming [`Last2Online`] predictor — this is, by
/// construction, exactly what a predictor-enabled server computes when the
/// same jobs arrive one at a time.
///
/// # Panics
/// Panics if `margin <= 0`.
#[must_use]
pub fn last2_walltimes(trace: &Trace, margin: f64) -> Vec<Duration> {
    let mut model = Last2Online::new(margin);
    trace
        .jobs()
        .iter()
        .map(|j| {
            let estimate = model.predict(j.user, None);
            // Update the history only after predicting (strictly online).
            model.observe(j.user, j.runtime);
            estimate
        })
        .collect()
}

/// Oracle walltimes: the actual runtimes (+1 s so estimates are never
/// exceeded). The upper bound on what any predictor can deliver to the
/// scheduler.
#[must_use]
pub fn perfect_walltimes(trace: &Trace) -> Vec<Duration> {
    trace.jobs().iter().map(|j| j.runtime.max(1) + 1).collect()
}

/// The user-supplied walltimes (the baseline the paper's Fig. 12 models
/// compete against); jobs without one fall back to the Last2 estimate.
/// Delegates to the streaming [`UserOnline`] provider.
#[must_use]
pub fn user_walltimes(trace: &Trace, margin: f64) -> Vec<Duration> {
    let mut model = UserOnline::new(margin);
    trace
        .jobs()
        .iter()
        .map(|j| {
            let estimate = model.predict(j.user, j.walltime);
            model.observe(j.user, j.runtime);
            estimate
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    fn trace(runtimes: &[(u32, i64)]) -> Trace {
        let jobs: Vec<Job> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &(user, rt))| Job::basic(i as u64, user, i as i64 * 10, rt, 8))
            .collect();
        Trace::new(SystemSpec::theta(), jobs).unwrap()
    }

    #[test]
    fn last2_uses_only_past_jobs() {
        let t = trace(&[(1, 100), (1, 200), (1, 400)]);
        let w = last2_walltimes(&t, 1.0);
        // Job 0: cold start (1 h); job 1: last = 100; job 2: mean(100, 200).
        assert_eq!(w[0], 3_600);
        assert_eq!(w[1], 100);
        assert_eq!(w[2], 150);
    }

    #[test]
    fn margin_scales_estimates() {
        let t = trace(&[(1, 1_000), (1, 1_000), (1, 1_000)]);
        let w = last2_walltimes(&t, 1.5);
        assert_eq!(w[2], 1_500);
    }

    #[test]
    fn unknown_users_fall_back_to_global_mean() {
        let t = trace(&[(1, 1_000), (2, 50)]);
        let w = last2_walltimes(&t, 1.0);
        assert_eq!(w[1], 1_000, "user 2's first job uses the global mean");
    }

    #[test]
    fn estimates_are_floored_at_a_minute() {
        let t = trace(&[(1, 2), (1, 2), (1, 2)]);
        let w = last2_walltimes(&t, 1.0);
        assert!(w.iter().all(|&x| x >= 60));
    }

    #[test]
    fn perfect_walltimes_cover_runtimes() {
        let t = trace(&[(1, 100), (2, 0)]);
        let w = perfect_walltimes(&t);
        for (j, &wt) in t.jobs().iter().zip(&w) {
            assert!(wt > j.runtime);
        }
    }

    #[test]
    fn user_walltimes_prefer_the_trace_values() {
        let mut jobs = vec![Job::basic(0, 1, 0, 100, 8), Job::basic(1, 1, 10, 100, 8)];
        jobs[0].walltime = Some(500);
        let t = Trace::new(SystemSpec::theta(), jobs).unwrap();
        let w = user_walltimes(&t, 1.0);
        assert_eq!(w[0], 500);
        assert_eq!(w[1], 100, "missing walltime falls back to Last2");
    }
}
