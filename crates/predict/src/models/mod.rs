//! The prediction model zoo (paper §VI.A): Last2, Linear Regression,
//! Tobit, gradient-boosted trees, and an MLP — all from scratch.
//!
//! All matrix-style models implement [`Model`]: they are fit on a feature
//! matrix and predict runtimes in **seconds** (internally most regress
//! `ln(runtime)` for stability across the seconds-to-weeks range). Last2
//! is history-based rather than feature-based and lives in [`last2`].

pub mod gbt;
pub mod last2;
pub mod linreg;
pub mod mlp;
pub mod tobit;

pub use gbt::Gbt;
pub use last2::Last2;
pub use linreg::LinearRegression;
pub use mlp::Mlp;
pub use tobit::Tobit;

/// A trainable runtime regressor.
pub trait Model {
    /// Fits on feature rows `x` and runtimes `y` (seconds). `censored[i]`
    /// marks right-censored observations (runtime is a lower bound); only
    /// the Tobit model uses it.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], censored: &[bool]);

    /// Predicts a runtime (seconds, > 0) for one feature row.
    fn predict(&self, x: &[f64]) -> f64;

    /// Model display name.
    fn name(&self) -> &'static str;
}

/// Standard normal PDF.
#[must_use]
pub(crate) fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7 — ample for MLE gradients).
#[must_use]
pub(crate) fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        for z in [-2.0, -0.5, 0.7, 1.9] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        assert!(normal_pdf(5.0) < 1e-5);
    }
}
