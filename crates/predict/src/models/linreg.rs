//! Ridge linear regression on `ln(runtime)` via the normal equations.

use crate::linalg::solve;
use crate::models::Model;

/// Ridge OLS over log-runtimes.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    ridge: f64,
    /// Weights (bias last); empty until fit.
    weights: Vec<f64>,
    fallback: f64,
}

impl LinearRegression {
    /// Creates a model with ridge penalty `ridge ≥ 0`.
    #[must_use]
    pub fn new(ridge: f64) -> Self {
        assert!(ridge >= 0.0);
        Self {
            ridge,
            weights: Vec::new(),
            fallback: 1.0,
        }
    }

    /// Fitted weights (bias last).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new(1e-3)
    }
}

impl Model for LinearRegression {
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], _censored: &[bool]) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            return;
        }
        let d = x[0].len() + 1; // + bias
        let logs: Vec<f64> = y.iter().map(|&v| v.max(1.0).ln()).collect();
        self.fallback = (logs.iter().sum::<f64>() / logs.len() as f64).exp();

        // Normal equations: (XᵀX + λI) w = Xᵀy, with bias column appended.
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        for (row, &t) in x.iter().zip(&logs) {
            debug_assert_eq!(row.len(), d - 1);
            for i in 0..d {
                let xi = if i == d - 1 { 1.0 } else { row[i] };
                xty[i] += xi * t;
                for j in i..d {
                    let xj = if j == d - 1 { 1.0 } else { row[j] };
                    xtx[i][j] += xi * xj;
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                xtx[i][j] = xtx[j][i];
            }
            xtx[i][i] += self.ridge;
        }
        if let Some(w) = solve(xtx, xty) {
            self.weights = w;
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return self.fallback;
        }
        debug_assert_eq!(x.len() + 1, self.weights.len());
        let mut acc = *self.weights.last().expect("bias present");
        for (w, v) in self.weights.iter().zip(x) {
            acc += w * v;
        }
        // Clamp the exponent so a wild extrapolation cannot overflow.
        acc.clamp(-5.0, 20.0).exp()
    }

    fn name(&self) -> &'static str {
        "LinReg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_log_linear_relationship() {
        // runtime = exp(2 + 0.5 · x0)
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (2.0 + 0.5 * r[0]).exp()).collect();
        let mut m = LinearRegression::new(1e-9);
        m.fit(&x, &y, &vec![false; y.len()]);
        let w = m.weights();
        assert!((w[0] - 0.5).abs() < 1e-6, "slope {}", w[0]);
        assert!((w[1] - 2.0).abs() < 1e-6, "bias {}", w[1]);
        let p = m.predict(&[4.0]);
        assert!((p / (4.0f64).exp() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unfit_model_predicts_fallback() {
        let m = LinearRegression::default();
        assert_eq!(m.predict(&[1.0, 2.0]), 1.0);
    }

    #[test]
    fn constant_feature_does_not_explode() {
        // A constant column makes XᵀX singular without the ridge.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| 100.0 + i as f64).collect();
        let mut m = LinearRegression::new(1e-3);
        m.fit(&x, &y, &[false; 50]);
        let p = m.predict(&[1.0, 25.0]);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn extrapolation_is_clamped() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| (1.0 + r[0]).exp()).collect();
        let mut m = LinearRegression::default();
        m.fit(&x, &y, &[false; 10]);
        assert!(m.predict(&[1e9]).is_finite());
    }
}
