//! A small feed-forward network: one tanh hidden layer, linear output,
//! SGD with momentum on standardized `ln(runtime)` targets. Deterministic
//! via an explicit seed.

use lumos_stats::Rng;

use crate::models::Model;

/// Multilayer perceptron regressor.
#[derive(Debug, Clone)]
pub struct Mlp {
    hidden: usize,
    epochs: usize,
    learning_rate: f64,
    seed: u64,
    // Fitted state.
    w1: Vec<Vec<f64>>, // hidden × input
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
    feat_mu: Vec<f64>,
    feat_sd: Vec<f64>,
    target_mu: f64,
    target_sd: f64,
    fitted: bool,
}

impl Mlp {
    /// Creates a network configuration.
    #[must_use]
    pub fn new(hidden: usize, epochs: usize, learning_rate: f64, seed: u64) -> Self {
        assert!(hidden > 0 && epochs > 0 && learning_rate > 0.0);
        Self {
            hidden,
            epochs,
            learning_rate,
            seed,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            feat_mu: Vec::new(),
            feat_sd: Vec::new(),
            target_mu: 0.0,
            target_sd: 1.0,
            fitted: false,
        }
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let mut h = Vec::with_capacity(self.hidden);
        for (wrow, b) in self.w1.iter().zip(&self.b1) {
            let mut acc = *b;
            for (w, v) in wrow.iter().zip(x) {
                acc += w * v;
            }
            h.push(acc.tanh());
        }
        let mut out = self.b2;
        for (w, v) in self.w2.iter().zip(&h) {
            out += w * v;
        }
        (h, out)
    }

    fn standardize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.feat_mu)
            .zip(&self.feat_sd)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Self::new(16, 40, 0.02, 0x11A9)
    }
}

impl Model for Mlp {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], _censored: &[bool]) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            return;
        }
        let n = x.len();
        let d = x[0].len();
        let logs: Vec<f64> = y.iter().map(|&v| v.max(1.0).ln()).collect();

        // Standardize features and target.
        self.feat_mu = vec![0.0; d];
        self.feat_sd = vec![0.0; d];
        for row in x {
            for (m, v) in self.feat_mu.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut self.feat_mu {
            *m /= n as f64;
        }
        for row in x {
            for ((s, v), m) in self.feat_sd.iter_mut().zip(row).zip(&self.feat_mu) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut self.feat_sd {
            *s = (*s / n as f64).sqrt().max(1e-9);
        }
        self.target_mu = logs.iter().sum::<f64>() / n as f64;
        let var = logs
            .iter()
            .map(|l| (l - self.target_mu) * (l - self.target_mu))
            .sum::<f64>()
            / n as f64;
        self.target_sd = var.sqrt().max(1e-9);

        let xs: Vec<Vec<f64>> = x.iter().map(|r| self.standardize(r)).collect();
        let ts: Vec<f64> = logs
            .iter()
            .map(|l| (l - self.target_mu) / self.target_sd)
            .collect();

        // Xavier-ish init.
        let mut rng = Rng::new(self.seed);
        let scale = (1.0 / d as f64).sqrt();
        self.w1 = (0..self.hidden)
            .map(|_| (0..d).map(|_| rng.next_gaussian() * scale).collect())
            .collect();
        self.b1 = vec![0.0; self.hidden];
        let hscale = (1.0 / self.hidden as f64).sqrt();
        self.w2 = (0..self.hidden)
            .map(|_| rng.next_gaussian() * hscale)
            .collect();
        self.b2 = 0.0;

        // SGD with momentum over shuffled epochs.
        let mut order: Vec<usize> = (0..n).collect();
        let mut m_w1 = vec![vec![0.0; d]; self.hidden];
        let mut m_b1 = vec![0.0; self.hidden];
        let mut m_w2 = vec![0.0; self.hidden];
        let mut m_b2 = 0.0;
        let beta = 0.9;
        for _ in 0..self.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let (h, out) = self.forward(&xs[i]);
                let err = out - ts[i];
                // Output layer gradients.
                for j in 0..self.hidden {
                    let g2 = err * h[j];
                    m_w2[j] = beta * m_w2[j] + (1.0 - beta) * g2;
                    // Hidden layer.
                    let dh = err * self.w2[j] * (1.0 - h[j] * h[j]);
                    for k in 0..d {
                        let g1 = dh * xs[i][k];
                        m_w1[j][k] = beta * m_w1[j][k] + (1.0 - beta) * g1;
                        self.w1[j][k] -= self.learning_rate * m_w1[j][k];
                    }
                    m_b1[j] = beta * m_b1[j] + (1.0 - beta) * dh;
                    self.b1[j] -= self.learning_rate * m_b1[j];
                    self.w2[j] -= self.learning_rate * m_w2[j];
                }
                m_b2 = beta * m_b2 + (1.0 - beta) * err;
                self.b2 -= self.learning_rate * m_b2;
            }
        }
        self.fitted = true;
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if !self.fitted {
            return 1.0;
        }
        let (_, out) = self.forward(&self.standardize(x));
        let log = out * self.target_sd + self.target_mu;
        log.clamp(-5.0, 20.0).exp()
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_nonlinear_boundary() {
        // runtime = 60 for x in [0,1), 3600 for x in [1,2).
        let x: Vec<Vec<f64>> = (0..400).map(|i| vec![(i % 20) as f64 / 10.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 1.0 { 60.0 } else { 3_600.0 })
            .collect();
        let mut m = Mlp::new(16, 80, 0.05, 7);
        m.fit(&x, &y, &vec![false; y.len()]);
        let lo = m.predict(&[0.3]);
        let hi = m.predict(&[1.7]);
        assert!(hi > 4.0 * lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn deterministic_under_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| 100.0 + i as f64 * 10.0).collect();
        let mut a = Mlp::new(8, 10, 0.02, 42);
        let mut b = Mlp::new(8, 10, 0.02, 42);
        a.fit(&x, &y, &[false; 50]);
        b.fit(&x, &y, &[false; 50]);
        assert_eq!(a.predict(&[25.0]), b.predict(&[25.0]));
    }

    #[test]
    fn unfit_model_is_safe() {
        let m = Mlp::default();
        assert_eq!(m.predict(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn predictions_are_positive_and_finite() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| 10.0 + i as f64).collect();
        let mut m = Mlp::default();
        m.fit(&x, &y, &[false; 100]);
        for i in 0..100 {
            let p = m.predict(&[i as f64, (i * i) as f64]);
            assert!(p.is_finite() && p > 0.0);
        }
    }
}
