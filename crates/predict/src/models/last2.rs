//! Last2 prediction (Tsafrir et al.): the mean of the user's last two
//! runtimes — the classic system-generated walltime estimate.
//!
//! The elapsed-time variant implements the paper's §VI.A intuition
//! directly: once a job has run for `elapsed` seconds, the user's past
//! runs that were *shorter* than `elapsed` are ruled out, so the estimate
//! averages the last two runs that exceeded it.

use crate::dataset::Instance;

/// Last2 predictor (stateless; operates on per-instance history).
#[derive(Debug, Clone, Copy, Default)]
pub struct Last2;

impl Last2 {
    /// Baseline prediction: mean of the user's last two runtimes, falling
    /// back to the global mean for history-less users.
    #[must_use]
    pub fn predict(instance: &Instance, global_mean: f64) -> f64 {
        let h = &instance.history;
        match h.len() {
            0 => global_mean.max(1.0),
            1 => h[0].max(1.0),
            n => 0.5 * (h[n - 1] + h[n - 2]),
        }
    }

    /// Elapsed-aware prediction: mean of the user's last two runtimes that
    /// exceeded `elapsed`; if none exist, the next plausible milestone
    /// (1.5× the elapsed time, but at least the global conditional
    /// fallback). Always ≥ `elapsed`.
    #[must_use]
    pub fn predict_with_elapsed(instance: &Instance, global_mean: f64, elapsed: f64) -> f64 {
        let surviving: Vec<f64> = instance
            .history
            .iter()
            .copied()
            .filter(|&r| r > elapsed)
            .collect();
        let raw = match surviving.len() {
            0 => (1.5 * elapsed).max(global_mean),
            1 => surviving[0],
            n => 0.5 * (surviving[n - 1] + surviving[n - 2]),
        };
        raw.max(elapsed).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Instance, STATIC_FEATURES};

    fn instance(history: Vec<f64>) -> Instance {
        Instance {
            user: 1,
            features: [0.0; STATIC_FEATURES],
            runtime: 100.0,
            walltime: None,
            censored: false,
            history,
        }
    }

    #[test]
    fn baseline_means_last_two() {
        let i = instance(vec![100.0, 200.0, 400.0]);
        assert_eq!(Last2::predict(&i, 50.0), 300.0);
    }

    #[test]
    fn baseline_falls_back_to_global_mean() {
        assert_eq!(Last2::predict(&instance(vec![]), 777.0), 777.0);
        assert_eq!(Last2::predict(&instance(vec![42.0]), 777.0), 42.0);
    }

    #[test]
    fn elapsed_filters_short_history() {
        // History has short failures (30 s) and hour-long passes; once the
        // job survives 60 s, only the hour-long runs count.
        let i = instance(vec![3_600.0, 30.0, 30.0, 3_700.0, 30.0]);
        let p = Last2::predict_with_elapsed(&i, 500.0, 60.0);
        assert_eq!(p, (3_600.0 + 3_700.0) / 2.0);
        // Baseline is dragged down by the failure mode.
        assert!(Last2::predict(&i, 500.0) < 2_000.0);
    }

    #[test]
    fn elapsed_prediction_never_underestimates_elapsed() {
        let i = instance(vec![10.0, 20.0]);
        let p = Last2::predict_with_elapsed(&i, 15.0, 1_000.0);
        assert!(p >= 1_000.0);
    }
}
