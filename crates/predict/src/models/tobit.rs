//! Tobit (censored Gaussian) regression on `ln(runtime)`.
//!
//! Jobs killed at their walltime are *right-censored*: the observed runtime
//! is a lower bound on what the job would have run. Fan et al. showed that
//! modelling this censoring trades a little accuracy for far fewer
//! underestimates — exactly the trade the paper's Fig. 12 explores.
//!
//! Fit by EM: censored targets are imputed with the truncated-Gaussian
//! conditional mean `μ + σ·φ(z)/(1−Φ(z))`, an OLS step refits the linear
//! predictor, and σ is re-estimated — unconditionally stable, unlike raw
//! gradient ascent on the censored likelihood.

use crate::linalg::solve;
use crate::models::{normal_cdf, normal_pdf, Model};

/// Censored Gaussian regressor over log-runtimes.
#[derive(Debug, Clone)]
pub struct Tobit {
    em_iterations: usize,
    ridge: f64,
    weights: Vec<f64>,
    sigma: f64,
    fallback: f64,
}

impl Tobit {
    /// Creates a model running `em_iterations` EM rounds with the given
    /// ridge penalty in the M-step.
    #[must_use]
    pub fn new(em_iterations: usize, ridge: f64) -> Self {
        assert!(em_iterations > 0 && ridge >= 0.0);
        Self {
            em_iterations,
            ridge,
            weights: Vec::new(),
            sigma: 1.0,
            fallback: 1.0,
        }
    }

    /// Fitted residual σ (log space).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Ridge OLS on `(x, targets)`; returns weights with bias last.
    #[allow(clippy::needless_range_loop)] // index form mirrors the math
    fn ols(&self, x: &[Vec<f64>], targets: &[f64]) -> Option<Vec<f64>> {
        let d = x[0].len() + 1;
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        for (row, &t) in x.iter().zip(targets) {
            for i in 0..d {
                let xi = if i == d - 1 { 1.0 } else { row[i] };
                xty[i] += xi * t;
                for j in i..d {
                    let xj = if j == d - 1 { 1.0 } else { row[j] };
                    xtx[i][j] += xi * xj;
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                xtx[i][j] = xtx[j][i];
            }
            xtx[i][i] += self.ridge.max(1e-9);
        }
        solve(xtx, xty)
    }

    fn linear(&self, w: &[f64], x: &[f64]) -> f64 {
        let mut acc = *w.last().expect("bias present");
        for (wi, v) in w.iter().zip(x) {
            acc += wi * v;
        }
        acc
    }
}

impl Default for Tobit {
    fn default() -> Self {
        Self::new(15, 1e-3)
    }
}

impl Model for Tobit {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], censored: &[bool]) {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), censored.len());
        if x.is_empty() {
            return;
        }
        let logs: Vec<f64> = y.iter().map(|&v| v.max(1.0).ln()).collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        self.fallback = mean.exp();

        // Start from the uncensored OLS fit.
        let Some(mut w) = self.ols(x, &logs) else {
            return;
        };
        let mut sigma = {
            let var = x
                .iter()
                .zip(&logs)
                .map(|(row, &t)| {
                    let r = t - self.linear(&w, row);
                    r * r
                })
                .sum::<f64>()
                / logs.len() as f64;
            var.sqrt().clamp(0.05, 10.0)
        };

        let mut targets = logs.clone();
        for _ in 0..self.em_iterations {
            // E-step: impute censored observations with the conditional
            // mean of the truncated Gaussian above the observed bound.
            for ((row, (&t, target)), &cens) in x
                .iter()
                .zip(logs.iter().zip(targets.iter_mut()))
                .zip(censored)
            {
                if cens {
                    let mu = self.linear(&w, row);
                    let z = (t - mu) / sigma;
                    let surv = (1.0 - normal_cdf(z)).max(1e-9);
                    let inverse_mills = normal_pdf(z) / surv;
                    // Clamp the imputation to a few σ above the bound so a
                    // far-off μ cannot launch the target to infinity.
                    *target = (mu + sigma * inverse_mills).clamp(t, t + 3.0 * sigma);
                }
            }
            // M-step: refit and re-estimate σ on the imputed targets.
            match self.ols(x, &targets) {
                Some(new_w) => w = new_w,
                None => break,
            }
            let var = x
                .iter()
                .zip(&targets)
                .map(|(row, &t)| {
                    let r = t - self.linear(&w, row);
                    r * r
                })
                .sum::<f64>()
                / targets.len() as f64;
            sigma = var.sqrt().clamp(0.05, 10.0);
        }
        self.weights = w;
        self.sigma = sigma;
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return self.fallback;
        }
        debug_assert_eq!(x.len() + 1, self.weights.len());
        self.linear(&self.weights, x).clamp(-5.0, 20.0).exp()
    }

    fn name(&self) -> &'static str {
        "Tobit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncensored_fit_matches_ols() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (1.0 + 0.4 * r[0]).exp()).collect();
        let mut m = Tobit::default();
        m.fit(&x, &y, &vec![false; y.len()]);
        let p_lo = m.predict(&[1.0]);
        let p_hi = m.predict(&[9.0]);
        assert!(p_hi > p_lo, "monotone in the feature");
        assert!((p_lo.ln() - 1.4).abs() < 0.05, "ln p_lo {}", p_lo.ln());
        assert!((p_hi.ln() - 4.6).abs() < 0.05, "ln p_hi {}", p_hi.ln());
        assert!(m.sigma() < 0.1, "noise-free fit has tiny sigma");
    }

    #[test]
    fn censoring_pushes_predictions_up() {
        // Same covariate everywhere; half the observations are censored at
        // 200 s. A censoring-aware fit must predict above the naive fit.
        let x: Vec<Vec<f64>> = (0..200).map(|_| vec![1.0]).collect();
        let y: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 100.0 } else { 200.0 })
            .collect();
        let cens: Vec<bool> = (0..200).map(|i| i % 2 == 1).collect();
        let mut with = Tobit::default();
        with.fit(&x, &y, &cens);
        let mut without = Tobit::default();
        without.fit(&x, &y, &[false; 200]);
        assert!(
            with.predict(&[1.0]) > without.predict(&[1.0]),
            "censoring-aware {} ≤ naive {}",
            with.predict(&[1.0]),
            without.predict(&[1.0])
        );
    }

    #[test]
    fn imputation_never_drops_below_the_bound() {
        // All observations censored: predictions must sit above the bound.
        let x: Vec<Vec<f64>> = (0..100).map(|_| vec![1.0]).collect();
        let y = vec![1_000.0; 100];
        let mut m = Tobit::default();
        m.fit(&x, &y, &[true; 100]);
        assert!(m.predict(&[1.0]) >= 1_000.0 * 0.95);
    }

    #[test]
    fn unfit_model_is_safe() {
        let m = Tobit::default();
        assert_eq!(m.predict(&[0.0]), 1.0);
    }
}
