//! Gradient-boosted regression trees (the XGBoost stand-in).
//!
//! Squared loss on `ln(runtime)`, depth-limited trees with exact split
//! search, shrinkage, and a minimum leaf size. Deterministic: no feature or
//! row subsampling.

use crate::models::Model;

/// One split node or leaf.
#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn eval(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.eval(x)
                } else {
                    right.eval(x)
                }
            }
        }
    }
}

/// Gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct Gbt {
    n_trees: usize,
    max_depth: usize,
    min_leaf: usize,
    learning_rate: f64,
    base: f64,
    trees: Vec<Node>,
}

impl Gbt {
    /// Creates an ensemble configuration.
    #[must_use]
    pub fn new(n_trees: usize, max_depth: usize, min_leaf: usize, learning_rate: f64) -> Self {
        assert!(n_trees > 0 && max_depth > 0 && min_leaf > 0);
        assert!(learning_rate > 0.0 && learning_rate <= 1.0);
        Self {
            n_trees,
            max_depth,
            min_leaf,
            learning_rate,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    #[allow(clippy::needless_range_loop)] // `f` indexes columns, not rows of `x`
    fn build(
        &self,
        x: &[Vec<f64>],
        residuals: &[f64],
        indices: &mut [usize],
        depth: usize,
    ) -> Node {
        let mean = indices.iter().map(|&i| residuals[i]).sum::<f64>() / indices.len() as f64;
        if depth >= self.max_depth || indices.len() < 2 * self.min_leaf {
            return Node::Leaf(mean);
        }
        let n_features = x[0].len();
        let total_sum: f64 = indices.iter().map(|&i| residuals[i]).sum();
        let n = indices.len() as f64;
        let parent_score = total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let mut sorted = indices.to_vec();
        for f in 0..n_features {
            sorted
                .sort_unstable_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite features"));
            let mut left_sum = 0.0;
            for (k, &i) in sorted.iter().enumerate().take(sorted.len() - 1) {
                left_sum += residuals[i];
                let left_n = (k + 1) as f64;
                // Can't split between equal feature values.
                if x[i][f] == x[sorted[k + 1]][f] {
                    continue;
                }
                if k + 1 < self.min_leaf || sorted.len() - k - 1 < self.min_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_n = n - left_n;
                let score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
                if score > parent_score + 1e-12 && best.is_none_or(|(_, _, s)| score > s) {
                    let threshold = 0.5 * (x[i][f] + x[sorted[k + 1]][f]);
                    best = Some((f, threshold, score));
                }
            }
        }
        match best {
            None => Node::Leaf(mean),
            Some((feature, threshold, _)) => {
                let (mut left_idx, mut right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| x[i][feature] <= threshold);
                let left = self.build(x, residuals, &mut left_idx, depth + 1);
                let right = self.build(x, residuals, &mut right_idx, depth + 1);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
    }
}

impl Default for Gbt {
    fn default() -> Self {
        Self::new(40, 3, 5, 0.15)
    }
}

impl Model for Gbt {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], _censored: &[bool]) {
        assert_eq!(x.len(), y.len());
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let logs: Vec<f64> = y.iter().map(|&v| v.max(1.0).ln()).collect();
        self.base = logs.iter().sum::<f64>() / logs.len() as f64;
        let mut predictions = vec![self.base; logs.len()];
        let mut indices: Vec<usize> = (0..logs.len()).collect();
        for _ in 0..self.n_trees {
            let residuals: Vec<f64> = logs.iter().zip(&predictions).map(|(t, p)| t - p).collect();
            let tree = self.build(x, &residuals, &mut indices, 0);
            for (p, row) in predictions.iter_mut().zip(x) {
                *p += self.learning_rate * tree.eval(row);
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.learning_rate * t.eval(x);
        }
        acc.clamp(-5.0, 20.0).exp()
    }

    fn name(&self) -> &'static str {
        "XGBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function() {
        // runtime = 100 if x<5 else 10000 — trees nail this, lines cannot.
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 10) as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] < 5.0 { 100.0 } else { 10_000.0 })
            .collect();
        let mut m = Gbt::default();
        m.fit(&x, &y, &vec![false; y.len()]);
        assert_eq!(m.tree_count(), 40);
        let lo = m.predict(&[2.0]);
        let hi = m.predict(&[8.0]);
        assert!((lo / 100.0 - 1.0).abs() < 0.2, "lo {lo}");
        assert!((hi / 10_000.0 - 1.0).abs() < 0.2, "hi {hi}");
    }

    #[test]
    fn constant_target_yields_leaves() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![500.0; 50];
        let mut m = Gbt::default();
        m.fit(&x, &y, &[false; 50]);
        let p = m.predict(&[25.0]);
        assert!((p / 500.0 - 1.0).abs() < 0.01, "p {p}");
    }

    #[test]
    fn min_leaf_is_respected_on_tiny_data() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1.0, 10.0, 100.0];
        let mut m = Gbt::new(5, 3, 5, 0.5);
        m.fit(&x, &y, &[false, false, false]);
        // 3 samples < 2×min_leaf ⇒ all trees are single leaves; prediction
        // is the geometric-ish mean.
        let p = m.predict(&[1.0]);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn unfit_model_is_safe() {
        let m = Gbt::default();
        assert!((m.predict(&[1.0]) - 1.0).abs() < 1e-12);
    }
}
