//! # lumos-predict
//!
//! Use Case 1 of the paper (§VI.A): **job runtime prediction with elapsed
//! time**. The observation behind it is Fig. 11 — per user, the runtime
//! distributions of Passed / Failed / Killed jobs separate sharply, so a
//! job's *elapsed* time carries strong information about its remaining
//! runtime: once a job has outlived the early-failure mode, it will most
//! likely run to the next mode.
//!
//! Implemented from scratch:
//!
//! * [`models::Last2`] — Tsafrir-style mean of the user's last two runtimes,
//! * [`models::LinearRegression`] — ridge OLS via normal equations,
//! * [`models::Tobit`] — censored Gaussian regression (killed-at-walltime
//!   jobs are right-censored observations) fit by gradient ascent,
//! * [`models::Gbt`] — gradient-boosted regression trees (the paper's
//!   XGBoost stand-in),
//! * [`models::Mlp`] — a small feed-forward network.
//!
//! For serving, [`online`] provides *streaming* predictors
//! ([`OnlinePredictor`]): the Last2 model in incremental form plus a
//! pass-through "user" provider, with serializable state so `lumos-serve`
//! can checkpoint them and rebuild them deterministically during crash
//! recovery. The batch walltime providers in [`walltime`] delegate to them.
//!
//! The evaluation harness ([`eval`]) reproduces Fig. 12: every model is
//! scored with and without the elapsed-time feature at elapsed points of
//! 1/8, 1/4, and 1/2 of the system's mean runtime, on *Prediction Accuracy*
//! (`min(r, p) / max(r, p)`, higher better) and *Underestimate Rate*
//! (`P(p < r)`, lower better).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod eval;
pub mod linalg;
pub mod metrics;
pub mod models;
pub mod online;
pub mod walltime;

pub use dataset::{Dataset, Instance};
pub use eval::{evaluate_trace, Fig12Row, ModelKind, Variant};
pub use metrics::{accuracy, underestimate_rate, PredictionScore};
pub use online::{Last2Online, OnlinePredictor, Predictor, PredictorConfig, UserOnline};
