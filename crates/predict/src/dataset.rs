//! Prediction datasets built from traces.
//!
//! One [`Instance`] per job, with features computable *at prediction time*
//! (no leakage of the actual runtime): the static request, the submitting
//! hour, the user's history so far, and — for the "with elapsed" variants —
//! the job's elapsed execution time. Instances are chronological, so the
//! train/test split is a time split, matching how an online scheduler
//! predictor would be deployed.

use lumos_core::{hour_of_day, JobStatus, Trace, UserId};
use std::collections::HashMap;

/// Number of static features (excluding the elapsed-time feature).
pub const STATIC_FEATURES: usize = 8;

/// One prediction instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Submitting user.
    pub user: UserId,
    /// Static features (length [`STATIC_FEATURES`]).
    pub features: [f64; STATIC_FEATURES],
    /// Actual runtime (seconds, ≥ 1) — the prediction target.
    pub runtime: f64,
    /// Walltime if the trace carries one.
    pub walltime: Option<f64>,
    /// True when the job was killed at its walltime — a right-censored
    /// observation for the Tobit model.
    pub censored: bool,
    /// Runtimes of this user's previous jobs (most recent last, capped).
    pub history: Vec<f64>,
}

/// A chronological dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Instances, submit-ordered.
    pub instances: Vec<Instance>,
}

/// How much per-user history each instance carries.
const HISTORY: usize = 8;

impl Dataset {
    /// Builds the dataset from a trace. Jobs with runtime 0 are kept with
    /// runtime 1 (they exist in real traces).
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut history: HashMap<UserId, Vec<f64>> = HashMap::new();
        let mut instances = Vec::with_capacity(trace.len());
        for j in trace.jobs() {
            let user_hist = history.entry(j.user).or_default();
            let runtime = j.runtime.max(1) as f64;
            let last = user_hist.last().copied().unwrap_or(0.0);
            let last2 = if user_hist.len() >= 2 {
                (user_hist[user_hist.len() - 1] + user_hist[user_hist.len() - 2]) / 2.0
            } else {
                last
            };
            let mean = if user_hist.is_empty() {
                0.0
            } else {
                user_hist.iter().sum::<f64>() / user_hist.len() as f64
            };
            let features = [
                (j.procs as f64).ln_1p(),
                j.walltime.map_or(0.0, |w| (w.max(1) as f64).ln()),
                f64::from(j.walltime.is_some()),
                f64::from(hour_of_day(j.submit, trace.system.tz_offset)) / 24.0,
                last.max(1.0).ln(),
                last2.max(1.0).ln(),
                mean.max(1.0).ln(),
                (user_hist.len() as f64).ln_1p(),
            ];
            instances.push(Instance {
                user: j.user,
                features,
                runtime,
                walltime: j.walltime.map(|w| w.max(1) as f64),
                censored: j.status == JobStatus::Killed
                    && j.walltime.is_some_and(|w| j.runtime >= w),
                history: user_hist
                    .iter()
                    .rev()
                    .take(HISTORY)
                    .rev()
                    .copied()
                    .collect(),
            });
            user_hist.push(runtime);
        }
        Self { instances }
    }

    /// Chronological split: the first `train_frac` of instances train, the
    /// rest test.
    ///
    /// # Panics
    /// Panics unless `0 < train_frac < 1`.
    #[must_use]
    pub fn split(&self, train_frac: f64) -> (&[Instance], &[Instance]) {
        assert!(train_frac > 0.0 && train_frac < 1.0, "bad split fraction");
        let cut = ((self.instances.len() as f64) * train_frac) as usize;
        let cut = cut.clamp(1, self.instances.len().saturating_sub(1));
        self.instances.split_at(cut)
    }

    /// Mean runtime over the whole dataset (the reference for the elapsed
    /// points 1/8, 1/4, 1/2 of Fig. 12).
    #[must_use]
    pub fn mean_runtime(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances.iter().map(|i| i.runtime).sum::<f64>() / self.instances.len() as f64
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    fn trace() -> Trace {
        let mut jobs = Vec::new();
        for i in 0..10u64 {
            let mut j = Job::basic(i, (i % 2) as u32, i as i64 * 100, 100 + i as i64, 64);
            j.walltime = Some(1_000);
            jobs.push(j);
        }
        Trace::new(SystemSpec::theta(), jobs).unwrap()
    }

    #[test]
    fn history_is_strictly_past_and_per_user() {
        let d = Dataset::from_trace(&trace());
        assert_eq!(d.len(), 10);
        // First job of each user has empty history.
        assert!(d.instances[0].history.is_empty());
        assert!(d.instances[1].history.is_empty());
        // Third job of user 0 (index 4) has seen runtimes 100 and 102.
        assert_eq!(d.instances[4].history, vec![100.0, 102.0]);
    }

    #[test]
    fn features_have_no_runtime_leakage() {
        // Two traces differing only in a job's runtime must produce the same
        // features for that job.
        let t1 = trace();
        let mut jobs: Vec<Job> = t1.jobs().to_vec();
        jobs[9].runtime = 99_999;
        let t2 = Trace::new(t1.system.clone(), jobs).unwrap();
        let d1 = Dataset::from_trace(&t1);
        let d2 = Dataset::from_trace(&t2);
        assert_eq!(d1.instances[9].features, d2.instances[9].features);
    }

    #[test]
    fn censoring_flags_killed_at_walltime() {
        let spec = SystemSpec::theta();
        let mut killed = Job::basic(1, 1, 0, 1_000, 64);
        killed.walltime = Some(1_000);
        killed.status = lumos_core::JobStatus::Killed;
        let mut free = Job::basic(2, 1, 1, 500, 64);
        free.walltime = Some(1_000);
        free.status = lumos_core::JobStatus::Killed;
        let d = Dataset::from_trace(&Trace::new(spec, vec![killed, free]).unwrap());
        assert!(d.instances[0].censored);
        assert!(!d.instances[1].censored);
    }

    #[test]
    fn split_is_chronological() {
        let d = Dataset::from_trace(&trace());
        let (train, test) = d.split(0.6);
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 4);
        assert!(train.last().unwrap().runtime <= test.first().unwrap().runtime);
    }

    #[test]
    fn mean_runtime() {
        let d = Dataset::from_trace(&trace());
        assert!((d.mean_runtime() - 104.5).abs() < 1e-9);
    }
}
