//! Property-based tests for the prediction substrate: metric bounds,
//! model sanity, and the elapsed-time clamp invariant.

use lumos_predict::metrics::{pair_accuracy, score};
use lumos_predict::models::{Gbt, Last2, LinearRegression, Mlp, Model, Tobit};
use lumos_predict::Instance;
use proptest::prelude::*;

fn arb_xy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0, 1.0f64..100_000.0), 10..80).prop_map(
        |rows| {
            let x: Vec<Vec<f64>> = rows.iter().map(|&(a, b, _)| vec![a, b]).collect();
            let y: Vec<f64> = rows.iter().map(|&(_, _, t)| t).collect();
            (x, y)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accuracy_is_in_unit_interval(r in 0.001f64..1e7, p in 0.001f64..1e7) {
        let a = pair_accuracy(r, p);
        prop_assert!((0.0..=1.0).contains(&a));
        // Symmetric in its arguments.
        prop_assert!((a - pair_accuracy(p, r)).abs() < 1e-12);
        // Perfect iff equal.
        prop_assert!((pair_accuracy(r, r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn score_bounds(pairs in prop::collection::vec((1.0f64..1e6, 1.0f64..1e6), 1..100)) {
        let r: Vec<f64> = pairs.iter().map(|&(a, _)| a).collect();
        let p: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
        let s = score(&r, &p);
        prop_assert!((0.0..=1.0).contains(&s.accuracy));
        prop_assert!((0.0..=1.0).contains(&s.underestimate_rate));
        prop_assert_eq!(s.jobs, pairs.len());
    }

    #[test]
    fn models_always_predict_positive_finite((x, y) in arb_xy()) {
        let censored = vec![false; y.len()];
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(LinearRegression::default()),
            Box::new(Tobit::default()),
            Box::new(Gbt::new(10, 2, 3, 0.2)),
            Box::new(Mlp::new(4, 5, 0.02, 1)),
        ];
        for mut m in models {
            m.fit(&x, &y, &censored);
            for row in x.iter().take(10) {
                let p = m.predict(row);
                prop_assert!(p.is_finite() && p > 0.0, "{} predicted {p}", m.name());
            }
        }
    }

    #[test]
    fn constant_target_is_recovered((x, _) in arb_xy(), target in 2.0f64..1e5) {
        let y = vec![target; x.len()];
        let censored = vec![false; y.len()];
        let mut lin = LinearRegression::default();
        lin.fit(&x, &y, &censored);
        let p = lin.predict(&x[0]);
        prop_assert!((p / target - 1.0).abs() < 0.2, "predicted {p} for constant {target}");
    }

    #[test]
    fn last2_with_elapsed_never_predicts_below_elapsed(
        history in prop::collection::vec(1.0f64..1e6, 0..8),
        elapsed in 1.0f64..1e6,
        global in 1.0f64..1e6,
    ) {
        let instance = Instance {
            user: 0,
            features: [0.0; lumos_predict::dataset::STATIC_FEATURES],
            runtime: 1.0,
            walltime: None,
            censored: false,
            history,
        };
        let p = Last2::predict_with_elapsed(&instance, global, elapsed);
        prop_assert!(p >= elapsed);
    }
}
