//! `lumos` — regenerate every table and figure of the paper from the
//! synthetic five-system suite (or from SWF traces you supply), or run
//! the online scheduling service.
//!
//! ```text
//! lumos <command> [--seed N] [--days N] [--out DIR] [--swf FILE --system NAME]
//! lumos serve [--addr HOST:PORT] [--system NAME] [--policy P] [--backfill B]
//!             [--queue-cap N] [--time-scale X] [--tenants FILE]
//!             [--journal DIR] [--fsync always|never|interval:MS] [--snapshot-every N]
//!             [--group-commit N] [--replicate-to ADDR | --follow ADDR]
//! lumos journal inspect DIR [--verbose]
//!
//! Commands:
//!   table1      dataset overview (Table I)
//!   fig1        job geometries: runtime / arrival / resources (Fig. 1)
//!   fig2        core-hour domination (Fig. 2)
//!   fig3        system utilization (Fig. 3)
//!   fig4        waiting & turnaround + per-class waits (Figs. 4–5)
//!   fig6        failure distributions + geometry correlations (Figs. 6–7)
//!   fig8        per-user resource-configuration groups (Fig. 8)
//!   fig9        queue-conditioned submission behaviour (Figs. 9–10)
//!   fig11       per-user runtime violins by status (Fig. 11)
//!   fig12       runtime prediction with elapsed time (Fig. 12)
//!   table2      adaptive relaxed backfilling (Table II)
//!   takeaways   evaluate the paper's eight takeaways
//!   all         everything above + JSON report
//!   serve       online scheduling service (NDJSON over TCP + stdin)
//!   journal     audit a serve journal directory (inspect)
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use lumos_analysis::SystemAnalysis;
use lumos_bench::{fig12::run_fig12, render, table2::run_table2};

/// CLI failure, split so `main` can exit 2 on bad invocations and 1 on
/// runtime errors.
enum CliError {
    /// The invocation itself is wrong (unknown command/flag, bad value).
    Usage(String),
    /// The invocation is fine but the work failed (I/O, parse, ...).
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

struct Options {
    command: String,
    seed: u64,
    days: u32,
    out: Option<PathBuf>,
    swf: Option<PathBuf>,
    system: Option<String>,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let command = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        command,
        seed: lumos_bench::DEFAULT_SEED,
        days: lumos_bench::DEFAULT_DAYS,
        out: None,
        swf: None,
        system: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--days" => {
                opts.days = value("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--swf" => opts.swf = Some(PathBuf::from(value("--swf")?)),
            "--system" => opts.system = Some(value("--system")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: lumos <table1|fig1|fig2|fig3|fig4|fig6|fig8|fig9|fig11|fig12|table2|takeaways|all> \
     [--seed N] [--days N] [--out DIR] [--swf FILE --system NAME]\n\
     \x20      lumos serve [--addr HOST:PORT] [--system NAME] [--policy P] [--backfill B] \
     [--queue-cap N] [--time-scale X] [--predictor last2[:MARGIN]|user[:MARGIN]|off] \
     [--tenants FILE] [--journal DIR] [--fsync always|never|interval:MS] [--snapshot-every N] \
     [--group-commit N] [--replicate-to ADDR | --follow ADDR]\n\
     \x20      lumos journal inspect DIR [--verbose]\n\
     \x20      lumos --help | --version"
        .to_string()
}

/// Resolves a `--system` name to its paper spec.
fn system_spec(name: &str) -> Result<lumos_core::SystemSpec, String> {
    match name {
        "mira" => Ok(lumos_core::SystemSpec::mira()),
        "theta" => Ok(lumos_core::SystemSpec::theta()),
        "blue-waters" => Ok(lumos_core::SystemSpec::blue_waters()),
        "philly" => Ok(lumos_core::SystemSpec::philly()),
        "helios" => Ok(lumos_core::SystemSpec::helios()),
        other => Err(format!(
            "unknown --system {other} (expected mira|theta|blue-waters|philly|helios)"
        )),
    }
}

/// Runs `lumos serve`: bind, announce, serve until a Shutdown command.
fn run_serve(mut args: impl Iterator<Item = String>) -> Result<(), CliError> {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut config = lumos_serve::ServeConfig::new(lumos_core::SystemSpec::theta());
    let mut journal_dir: Option<PathBuf> = None;
    let mut fsync: Option<lumos_serve::FsyncPolicy> = None;
    let mut snapshot_every: Option<u64> = None;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value\n{}", usage())))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--system" => {
                config.system = system_spec(&value("--system")?).map_err(CliError::Usage)?;
            }
            "--policy" => {
                config.sim.policy = match value("--policy")?.as_str() {
                    "fcfs" => lumos_sim::Policy::Fcfs,
                    "sjf" => lumos_sim::Policy::Sjf,
                    "ljf" => lumos_sim::Policy::Ljf,
                    "saf" => lumos_sim::Policy::Saf,
                    "sqf" => lumos_sim::Policy::Sqf,
                    "maxmin" => lumos_sim::Policy::MaxMinFair,
                    "wfair" => lumos_sim::Policy::WeightedFair,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown --policy {other} (expected fcfs|sjf|ljf|saf|sqf|maxmin|wfair)"
                        )))
                    }
                };
            }
            "--backfill" => {
                config.sim.backfill = match value("--backfill")?.as_str() {
                    "none" => lumos_sim::Backfill::None,
                    "easy" => lumos_sim::Backfill::Easy,
                    "conservative" => lumos_sim::Backfill::Conservative,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown --backfill {other} (expected none|easy|conservative)"
                        )))
                    }
                };
            }
            "--queue-cap" => {
                config.queue_capacity = value("--queue-cap")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--queue-cap: {e}")))?;
            }
            "--time-scale" => {
                config.time_scale = value("--time-scale")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--time-scale: {e}")))?;
                if !config.time_scale.is_finite() || config.time_scale < 0.0 {
                    return Err(CliError::Usage(
                        "--time-scale must be a finite value ≥ 0".into(),
                    ));
                }
            }
            "--predictor" => {
                config.predictor = lumos_serve::PredictorConfig::parse(&value("--predictor")?)
                    .map_err(|e| CliError::Usage(format!("--predictor: {e}")))?;
            }
            "--tenants" => {
                let path = PathBuf::from(value("--tenants")?);
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    CliError::Usage(format!("--tenants: reading {}: {e}", path.display()))
                })?;
                let table = lumos_sim::TenantTable::parse(&text)
                    .map_err(|e| CliError::Usage(format!("--tenants: {}: {e}", path.display())))?;
                config.tenants = Some(table);
            }
            "--group-commit" => {
                config.group_commit = value("--group-commit")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--group-commit: {e}")))?;
            }
            "--journal" => journal_dir = Some(PathBuf::from(value("--journal")?)),
            "--replicate-to" => config.replicate_to = Some(value("--replicate-to")?),
            "--follow" => config.follow = Some(value("--follow")?),
            "--fsync" => {
                fsync = Some(
                    lumos_serve::FsyncPolicy::parse(&value("--fsync")?)
                        .map_err(|e| CliError::Usage(format!("--fsync: {e}")))?,
                );
            }
            "--snapshot-every" => {
                snapshot_every = Some(
                    value("--snapshot-every")?
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--snapshot-every: {e}")))?,
                );
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag {other}\n{}",
                    usage()
                )))
            }
        }
    }
    if config.replicate_to.is_some() && config.follow.is_some() {
        return Err(CliError::Usage(
            "--replicate-to and --follow are mutually exclusive (a server is \
             either the primary or the follower)"
                .into(),
        ));
    }
    match journal_dir {
        Some(dir) => {
            let mut jc = lumos_serve::JournalConfig::new(dir);
            if let Some(policy) = fsync {
                jc.fsync = policy;
            }
            if let Some(every) = snapshot_every {
                jc.snapshot_every = every;
            }
            config.journal = Some(jc);
        }
        None if fsync.is_some() || snapshot_every.is_some() => {
            return Err(CliError::Usage(
                "--fsync and --snapshot-every require --journal DIR".into(),
            ));
        }
        None if config.replicate_to.is_some() || config.follow.is_some() => {
            return Err(CliError::Usage(
                "--replicate-to and --follow require --journal DIR".into(),
            ));
        }
        None => {}
    }
    let server = lumos_serve::Server::bind(&addr, config)
        .map_err(|e| CliError::Runtime(format!("binding {addr}: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    eprintln!("lumos-serve listening on {bound} (NDJSON; also reading stdin)");
    server
        .run(true)
        .map_err(|e| CliError::Runtime(e.to_string()))
}

/// Runs `lumos journal inspect DIR [--verbose]`: audits a serve journal
/// directory — per-segment record counts, snapshot validity, torn tails.
/// Damage is a warning on stderr, not a failure: exit 0 unless the
/// directory itself is unreadable.
fn run_journal(mut args: impl Iterator<Item = String>) -> Result<(), CliError> {
    use lumos_serve::journal;

    let sub = args
        .next()
        .ok_or_else(|| CliError::Usage(format!("journal expects a subcommand\n{}", usage())))?;
    if sub != "inspect" {
        return Err(CliError::Usage(format!(
            "unknown journal subcommand {sub} (expected inspect)"
        )));
    }
    let mut dir: Option<PathBuf> = None;
    let mut verbose = false;
    for arg in args {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unexpected argument {other}\n{}",
                    usage()
                )))
            }
        }
    }
    let dir = dir.ok_or_else(|| {
        CliError::Usage(format!("journal inspect expects a directory\n{}", usage()))
    })?;

    let (segments, snapshots) = journal::scan_dir(&dir)
        .map_err(|e| CliError::Runtime(format!("reading {}: {e}", dir.display())))?;
    if segments.is_empty() && snapshots.is_empty() {
        println!("{}: no journal segments or snapshots", dir.display());
        return Ok(());
    }

    for &seq in &snapshots {
        let path = journal::snapshot_path(&dir, seq);
        match std::fs::read_to_string(&path) {
            Err(e) => eprintln!("warning: snapshot-{seq:06}.json: unreadable: {e}"),
            Ok(text) => match serde_json::from_str::<lumos_serve::ServerSnapshot>(&text) {
                Err(e) => eprintln!("warning: snapshot-{seq:06}.json: corrupt: {e}"),
                Ok(snap) => {
                    let clock = snap.state.clock;
                    let jobs = snap.state.jobs.len();
                    match lumos_sim::SimSession::restore(&snap.system, snap.state) {
                        Ok(_) => println!(
                            "snapshot-{seq:06}.json: valid ({} bytes, t = {clock}, {jobs} jobs)",
                            text.len()
                        ),
                        Err(e) => eprintln!("warning: snapshot-{seq:06}.json: inconsistent: {e}"),
                    }
                }
            },
        }
    }

    let mut total = 0usize;
    let mut torn_segments = 0usize;
    for &seq in &segments {
        let path = journal::segment_path(&dir, seq);
        let seg = journal::read_segment(&path)
            .map_err(|e| CliError::Runtime(format!("reading {}: {e}", path.display())))?;
        let mut counts = [0usize; 4]; // config, submit, cancel, advance
        for record in &seg.records {
            counts[match record {
                journal::JournalRecord::Config { .. } => 0,
                journal::JournalRecord::Submit { .. } => 1,
                journal::JournalRecord::Cancel { .. } => 2,
                journal::JournalRecord::Advance { .. } => 3,
            }] += 1;
        }
        println!(
            "journal-{seq:06}.log: {} records ({} config, {} submit, {} cancel, {} advance)",
            seg.records.len(),
            counts[0],
            counts[1],
            counts[2],
            counts[3]
        );
        if verbose {
            for record in &seg.records {
                match record {
                    journal::JournalRecord::Config {
                        system,
                        sim,
                        predictor,
                        tenants,
                    } => {
                        println!(
                            "  config  system={} policy={:?} predictor={} tenants={}",
                            system.name,
                            sim.policy,
                            predictor.map_or("off", |p| p.name()),
                            tenants.as_ref().map_or(0, lumos_sim::TenantTable::len)
                        );
                        if let Some(table) = tenants {
                            for spec in table.iter() {
                                let quota = spec
                                    .quota
                                    .map_or_else(|| "unlimited".into(), |q| q.to_string());
                                println!(
                                    "    tenant  {} weight={} quota={quota}",
                                    spec.name, spec.weight
                                );
                            }
                        }
                    }
                    journal::JournalRecord::Submit { now, job } => {
                        let tenant = job
                            .tenant
                            .as_ref()
                            .map_or(String::new(), |t| format!(" tenant={t}"));
                        println!(
                            "  submit  t={now} job={} procs={}{tenant}",
                            job.id, job.procs
                        );
                    }
                    journal::JournalRecord::Cancel { now, id } => {
                        println!("  cancel  t={now} job={id}");
                    }
                    journal::JournalRecord::Advance { to } => println!("  advance to={to}"),
                }
            }
        }
        if let Some(torn) = &seg.torn {
            torn_segments += 1;
            eprintln!(
                "warning: journal-{seq:06}.log: torn record at byte {}: {}",
                torn.offset, torn.reason
            );
        }
        total += seg.records.len();
    }
    println!(
        "{}: {} segment(s), {} snapshot(s), {total} intact record(s){}",
        dir.display(),
        segments.len(),
        snapshots.len(),
        if torn_segments > 0 {
            format!(", {torn_segments} torn")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Loads the analysis suite: either the five synthetic systems, or a single
/// SWF trace when `--swf` is given.
fn load_suite(opts: &Options) -> Result<Vec<SystemAnalysis>, String> {
    match &opts.swf {
        None => Ok(lumos_bench::analyzed_suite(opts.seed, opts.days)),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let spec = match opts.system.as_deref() {
                None => lumos_core::SystemSpec::theta(),
                Some(name) => system_spec(name)?,
            };
            let trace = lumos_traces::swf::parse(&text, spec).map_err(|e| e.to_string())?;
            Ok(vec![lumos_analysis::analyze_system(&trace)])
        }
    }
}

fn write_json(opts: &Options, name: &str, json: &str) -> Result<(), String> {
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn run(args: impl Iterator<Item = String>) -> Result<(), CliError> {
    let opts = parse_args(args).map_err(CliError::Usage)?;
    let to_json = |v: &dyn erased::Json| v.to_json();

    match opts.command.as_str() {
        "table1" => {
            let analyses = load_suite(&opts)?;
            let rows: Vec<_> = analyses.iter().map(|a| a.overview.clone()).collect();
            print!("{}", lumos_analysis::report::render_table(&rows));
            write_json(&opts, "table1", &to_json(&rows))?;
        }
        "fig1" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig1(&analyses));
            write_json(&opts, "fig1", &to_json(&analyses))?;
        }
        "fig2" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig2(&analyses));
        }
        "fig3" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig3(&analyses));
        }
        "fig4" | "fig5" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig4_fig5(&analyses));
        }
        "fig6" | "fig7" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig6_fig7(&analyses));
        }
        "fig8" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig8(&analyses));
        }
        "fig9" | "fig10" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig9_fig10(&analyses));
        }
        "fig11" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::fig11(&analyses));
        }
        "fig12" => {
            let results = run_fig12(opts.seed, opts.days, 20_000);
            print!("{}", render::fig12(&results));
            write_json(&opts, "fig12", &to_json(&results))?;
        }
        "table2" => {
            let rows = run_table2(opts.seed, opts.days, 0.10);
            print!("{}", render::table2(&rows));
            write_json(&opts, "table2", &to_json(&rows))?;
        }
        "takeaways" => {
            let analyses = load_suite(&opts)?;
            print!("{}", render::takeaway_report(&analyses));
        }
        "all" => {
            let analyses = load_suite(&opts)?;
            let rows: Vec<_> = analyses.iter().map(|a| a.overview.clone()).collect();
            println!(
                "== Table I ==\n{}",
                lumos_analysis::report::render_table(&rows)
            );
            println!("== Fig. 1 (geometries) ==\n{}", render::fig1(&analyses));
            println!("== Fig. 2 (domination) ==\n{}", render::fig2(&analyses));
            println!("== Fig. 3 (utilization) ==\n{}", render::fig3(&analyses));
            println!(
                "== Figs. 4–5 (waiting) ==\n{}",
                render::fig4_fig5(&analyses)
            );
            println!(
                "== Figs. 6–7 (failures) ==\n{}",
                render::fig6_fig7(&analyses)
            );
            println!("== Fig. 8 (user groups) ==\n{}", render::fig8(&analyses));
            println!(
                "== Figs. 9–10 (submissions) ==\n{}",
                render::fig9_fig10(&analyses)
            );
            println!("== Fig. 11 (user violins) ==\n{}", render::fig11(&analyses));
            let fig12_results = run_fig12(opts.seed, opts.days, 20_000);
            println!(
                "== Fig. 12 (prediction) ==\n{}",
                render::fig12(&fig12_results)
            );
            let table2_rows = run_table2(opts.seed, opts.days, 0.10);
            println!(
                "== Table II (adaptive backfilling) ==\n{}",
                render::table2(&table2_rows)
            );
            println!("== Takeaways ==\n{}", render::takeaway_report(&analyses));
            write_json(&opts, "suite", &to_json(&analyses))?;
            write_json(&opts, "fig12", &to_json(&fig12_results))?;
            write_json(&opts, "table2", &to_json(&table2_rows))?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown command {other}\n{}",
                usage()
            )))
        }
    }
    Ok(())
}

/// Tiny serialization helper so each match arm can serialize its own type.
mod erased {
    pub trait Json {
        fn to_json(&self) -> String;
    }
    impl<T: serde::Serialize> Json for T {
        fn to_json(&self) -> String {
            serde_json::to_string_pretty(self).expect("report types serialize")
        }
    }
}

fn report(result: Result<(), CliError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("--help" | "-h" | "help") => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Some("--version" | "-V" | "version") => {
            println!("lumos {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("serve") => {
            args.next();
            report(run_serve(args))
        }
        Some("journal") => {
            args.next();
            report(run_journal(args))
        }
        _ => report(run(args)),
    }
}
