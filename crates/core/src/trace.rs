//! The [`Trace`] container: an ordered job stream bound to a system.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::job::{Job, JobStatus, UserId};
use crate::system::SystemSpec;
use crate::time::{Duration, Timestamp};

/// A job trace: every job observed on one system over some window,
/// sorted by submit time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The system the jobs ran on.
    pub system: SystemSpec,
    jobs: Vec<Job>,
}

impl Trace {
    /// Builds a trace, sorting jobs by `(submit, id)` and validating against
    /// the system spec.
    ///
    /// # Errors
    /// Rejects empty job lists, jobs larger than the machine, and negative
    /// time fields.
    pub fn new(system: SystemSpec, mut jobs: Vec<Job>) -> Result<Self> {
        system.validate()?;
        if jobs.is_empty() {
            return Err(CoreError::EmptyTrace);
        }
        jobs.sort_unstable_by_key(|j| (j.submit, j.id));
        for j in &jobs {
            if j.procs == 0 || j.procs > system.total_units {
                return Err(CoreError::OversizedJob {
                    job: j.id,
                    requested: j.procs,
                    capacity: system.total_units,
                });
            }
            if j.runtime < 0 {
                return Err(CoreError::InvalidTime {
                    job: j.id,
                    what: "negative runtime",
                });
            }
            if let Some(w) = j.wait {
                if w < 0 {
                    return Err(CoreError::InvalidTime {
                        job: j.id,
                        what: "negative wait",
                    });
                }
            }
            if let Some(wt) = j.walltime {
                if wt < 0 {
                    return Err(CoreError::InvalidTime {
                        job: j.id,
                        what: "negative walltime",
                    });
                }
            }
        }
        Ok(Self { system, jobs })
    }

    /// All jobs, sorted by submit time.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace holds no jobs (never true for a validated trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// First submit time.
    #[must_use]
    pub fn start_time(&self) -> Timestamp {
        self.jobs.first().map_or(0, |j| j.submit)
    }

    /// Last submit time.
    #[must_use]
    pub fn end_time(&self) -> Timestamp {
        self.jobs.last().map_or(0, |j| j.submit)
    }

    /// Submission span (`end_time - start_time`).
    #[must_use]
    pub fn span(&self) -> Duration {
        self.end_time() - self.start_time()
    }

    /// Distinct users, ascending.
    #[must_use]
    pub fn users(&self) -> Vec<UserId> {
        let mut u: Vec<UserId> = self.jobs.iter().map(|j| j.user).collect();
        u.sort_unstable();
        u.dedup();
        u
    }

    /// Jobs belonging to `user`, in submit order.
    #[must_use]
    pub fn jobs_of(&self, user: UserId) -> Vec<&Job> {
        self.jobs.iter().filter(|j| j.user == user).collect()
    }

    /// The `n` users who submitted the most jobs, descending by job count
    /// (ties broken by user id for determinism). Paper §V.C analyses the
    /// top-3 heaviest users per system.
    #[must_use]
    pub fn top_users(&self, n: usize) -> Vec<(UserId, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<UserId, usize> = HashMap::new();
        for j in &self.jobs {
            *counts.entry(j.user).or_insert(0) += 1;
        }
        let mut v: Vec<(UserId, usize)> = counts.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Total consumed core-hours (resource-hours) across all jobs.
    #[must_use]
    pub fn total_core_hours(&self) -> f64 {
        self.jobs.iter().map(Job::core_hours).sum()
    }

    /// Count of jobs with the given status.
    #[must_use]
    pub fn count_status(&self, status: JobStatus) -> usize {
        self.jobs.iter().filter(|j| j.status == status).count()
    }

    /// Restricts the trace to jobs submitted in `[from, to)`.
    ///
    /// # Errors
    /// Returns [`CoreError::EmptyTrace`] if no jobs fall in the window.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> Result<Trace> {
        let jobs: Vec<Job> = self
            .jobs
            .iter()
            .filter(|j| j.submit >= from && j.submit < to)
            .cloned()
            .collect();
        Trace::new(self.system.clone(), jobs)
    }

    /// Replaces every job's recorded wait with `None` (used before replaying
    /// a trace through the simulator).
    #[must_use]
    pub fn without_waits(mut self) -> Trace {
        for j in &mut self.jobs {
            j.wait = None;
        }
        self
    }

    /// Consumes the trace, returning its jobs.
    #[must_use]
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Mutable access for controlled rewrites (e.g. the simulator writing
    /// observed waits back into the trace). Jobs must remain sorted by
    /// submit time; `debug_assert`s guard this in tests.
    pub fn jobs_mut(&mut self) -> &mut [Job] {
        &mut self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemSpec;

    fn tiny_system() -> SystemSpec {
        let mut s = SystemSpec::theta();
        s.name = "tiny".into();
        s
    }

    fn job(id: u64, user: UserId, submit: Timestamp) -> Job {
        Job::basic(id, user, submit, 100, 64)
    }

    #[test]
    fn new_sorts_by_submit() {
        let t = Trace::new(
            tiny_system(),
            vec![job(2, 1, 50), job(1, 1, 10), job(3, 2, 30)],
        )
        .unwrap();
        let submits: Vec<_> = t.jobs().iter().map(|j| j.submit).collect();
        assert_eq!(submits, vec![10, 30, 50]);
        assert_eq!(t.start_time(), 10);
        assert_eq!(t.end_time(), 50);
        assert_eq!(t.span(), 40);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Trace::new(tiny_system(), vec![]).unwrap_err(),
            CoreError::EmptyTrace
        );
    }

    #[test]
    fn rejects_oversized_jobs() {
        let sys = tiny_system();
        let mut j = job(1, 1, 0);
        j.procs = sys.total_units + 1;
        assert!(matches!(
            Trace::new(sys, vec![j]).unwrap_err(),
            CoreError::OversizedJob { .. }
        ));
    }

    #[test]
    fn rejects_zero_proc_jobs() {
        let mut j = job(1, 1, 0);
        j.procs = 0;
        assert!(Trace::new(tiny_system(), vec![j]).is_err());
    }

    #[test]
    fn rejects_negative_times() {
        let mut j = job(1, 1, 0);
        j.runtime = -1;
        assert!(matches!(
            Trace::new(tiny_system(), vec![j]).unwrap_err(),
            CoreError::InvalidTime { .. }
        ));

        let mut j = job(1, 1, 0);
        j.wait = Some(-5);
        assert!(Trace::new(tiny_system(), vec![j]).is_err());
    }

    #[test]
    fn top_users_orders_by_count_then_id() {
        let jobs = vec![
            job(1, 10, 0),
            job(2, 10, 1),
            job(3, 20, 2),
            job(4, 20, 3),
            job(5, 30, 4),
        ];
        let t = Trace::new(tiny_system(), jobs).unwrap();
        let top = t.top_users(2);
        assert_eq!(top, vec![(10, 2), (20, 2)]);
    }

    #[test]
    fn window_filters_by_submit() {
        let t = Trace::new(
            tiny_system(),
            vec![job(1, 1, 0), job(2, 1, 100), job(3, 1, 200)],
        )
        .unwrap();
        let w = t.window(50, 200).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.jobs()[0].id, 2);
        assert!(t.window(1_000, 2_000).is_err());
    }

    #[test]
    fn core_hours_accumulate() {
        let t = Trace::new(tiny_system(), vec![job(1, 1, 0), job(2, 1, 10)]).unwrap();
        let expected = 2.0 * (64.0 * 100.0 / 3600.0);
        assert!((t.total_core_hours() - expected).abs() < 1e-9);
    }

    #[test]
    fn without_waits_clears_all() {
        let mut j = job(1, 1, 0);
        j.wait = Some(10);
        let t = Trace::new(tiny_system(), vec![j]).unwrap().without_waits();
        assert!(t.jobs().iter().all(|j| j.wait.is_none()));
    }
}
