//! Time primitives.
//!
//! All timestamps and durations in the workspace are integer **seconds**.
//! Job traces (SWF and the published Mira/Theta/Philly/Helios traces) are
//! second-granular; integers keep event ordering exact and hashable.

/// A point in time, in seconds since the trace epoch (or UNIX epoch for
/// real traces).
pub type Timestamp = i64;

/// A span of time, in seconds.
pub type Duration = i64;

/// One minute, in seconds.
pub const MINUTE: Duration = 60;

/// One hour, in seconds.
pub const HOUR: Duration = 3_600;

/// One day, in seconds.
pub const DAY: Duration = 86_400;

/// Returns the local hour of day (`0..=23`) for `t`, where `tz_offset` is the
/// system's offset from the trace clock in seconds (e.g. `-6 * HOUR` for a
/// Central-Time cluster driven by a UTC trace clock).
///
/// Paper §III.A plots job arrival counts per local hour (Fig. 1b bottom);
/// the per-system timezone matters because Mira/Theta are Central Time while
/// Philly is Pacific Time.
///
/// ```
/// use lumos_core::time::{hour_of_day, HOUR};
/// assert_eq!(hour_of_day(0, 0), 0);
/// assert_eq!(hour_of_day(3 * HOUR + 59, 0), 3);
/// assert_eq!(hour_of_day(0, -6 * HOUR), 18); // 00:00 UTC is 18:00 CST
/// ```
#[must_use]
pub fn hour_of_day(t: Timestamp, tz_offset: Duration) -> u8 {
    let local = t + tz_offset;
    let secs_in_day = local.rem_euclid(DAY);
    (secs_in_day / HOUR) as u8
}

/// Returns the day index (0-based) of `t` relative to the trace epoch.
#[must_use]
pub fn day_index(t: Timestamp) -> i64 {
    t.div_euclid(DAY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_of_day_wraps_across_midnight() {
        assert_eq!(hour_of_day(DAY - 1, 0), 23);
        assert_eq!(hour_of_day(DAY, 0), 0);
        assert_eq!(hour_of_day(DAY + HOUR, 0), 1);
    }

    #[test]
    fn hour_of_day_handles_negative_offsets() {
        // 02:00 trace time in a -6h zone is 20:00 the previous day.
        assert_eq!(hour_of_day(2 * HOUR, -6 * HOUR), 20);
    }

    #[test]
    fn hour_of_day_handles_positive_offsets() {
        assert_eq!(hour_of_day(23 * HOUR, 2 * HOUR), 1);
    }

    #[test]
    fn day_index_is_floor_division() {
        assert_eq!(day_index(-1), -1);
        assert_eq!(day_index(0), 0);
        assert_eq!(day_index(DAY - 1), 0);
        assert_eq!(day_index(DAY), 1);
    }
}
