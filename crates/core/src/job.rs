//! The [`Job`] record and its exit-status trichotomy.

use serde::{Deserialize, Serialize};

use crate::time::{Duration, Timestamp};

/// Unique job identifier within a trace.
pub type JobId = u64;

/// Unique user identifier within a trace.
pub type UserId = u32;

/// Final exit status of a job (paper §IV.A).
///
/// The paper folds raw exit signals into three buckets: `SIGTERM`/`SIGKILL`
/// become [`JobStatus::Killed`] (terminated by an external actor — user
/// cancellation, walltime limit, preemption), `SIGABRT`/`SIGSEGV` become
/// [`JobStatus::Failed`] (the job itself crashed), and a clean exit is
/// [`JobStatus::Passed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JobStatus {
    /// Job finished normally.
    Passed,
    /// Job failed mid-execution due to a technical issue (crash, assertion,
    /// segfault, bad configuration).
    Failed,
    /// Job was killed by external factors before finishing (cancellation,
    /// walltime limit, admin action).
    Killed,
}

impl JobStatus {
    /// All statuses, in the paper's presentation order.
    pub const ALL: [JobStatus; 3] = [JobStatus::Passed, JobStatus::Failed, JobStatus::Killed];

    /// Short label used in reports ("Passed" / "Failed" / "Killed").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Passed => "Passed",
            Self::Failed => "Failed",
            Self::Killed => "Killed",
        }
    }

    /// Classifies a POSIX signal number the way the paper does
    /// (§IV.A): `SIGTERM`(15)/`SIGKILL`(9)/`SIGINT`(2) → Killed;
    /// `SIGABRT`(6)/`SIGSEGV`(11)/`SIGBUS`(7)/`SIGFPE`(8)/`SIGILL`(4) → Failed.
    /// `None` (clean exit, code 0) → Passed; any other nonzero exit → Failed.
    #[must_use]
    pub fn from_exit(signal: Option<u8>, exit_code: i32) -> Self {
        match signal {
            Some(2 | 9 | 15) => Self::Killed,
            Some(4 | 6 | 7 | 8 | 11) => Self::Failed,
            Some(_) => Self::Failed,
            None if exit_code == 0 => Self::Passed,
            None => Self::Failed,
        }
    }

    /// True if the job did not finish normally.
    #[must_use]
    pub fn is_unsuccessful(self) -> bool {
        !matches!(self, Self::Passed)
    }
}

/// A single execution instance submitted by a user (paper §II.C).
///
/// `procs` is the job's resource request in the system's *scheduling unit*:
/// CPU cores on Mira/Theta, GPUs on Philly/Helios, cores on the hybrid
/// Blue Waters. `nodes` is the node count the request maps to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Trace-unique identifier.
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Submission (arrival) time.
    pub submit: Timestamp,
    /// Observed waiting time in the queue, if the trace records one.
    /// Synthetic traces fill this by replaying through `lumos-sim`.
    pub wait: Option<Duration>,
    /// Actual execution time, in seconds (always ≥ 0; zero-length jobs exist
    /// in real traces and are kept).
    pub runtime: Duration,
    /// User-requested walltime limit, in seconds. Backfilling depends on it.
    /// DL traces (Philly/Helios) do not provide walltimes; `None` there.
    pub walltime: Option<Duration>,
    /// Resource units requested (cores for HPC systems, GPUs for DL systems).
    pub procs: u64,
    /// Number of nodes the request occupies.
    pub nodes: u32,
    /// Final exit status.
    pub status: JobStatus,
    /// Virtual cluster / partition the job is bound to (Philly-style
    /// isolation); `None` when the system schedules one global pool.
    pub virtual_cluster: Option<u16>,
}

impl Job {
    /// Creates a minimal passed job; convenient in tests and examples.
    #[must_use]
    pub fn basic(
        id: JobId,
        user: UserId,
        submit: Timestamp,
        runtime: Duration,
        procs: u64,
    ) -> Self {
        Self {
            id,
            user,
            submit,
            wait: None,
            runtime,
            walltime: None,
            procs,
            nodes: procs.max(1).min(u64::from(u32::MAX)) as u32,
            status: JobStatus::Passed,
            virtual_cluster: None,
        }
    }

    /// Core-hours (resource-hours) consumed: `procs × runtime / 3600`.
    #[must_use]
    pub fn core_hours(&self) -> f64 {
        (self.procs as f64) * (self.runtime as f64) / 3_600.0
    }

    /// The job's end time given an actual start time.
    #[must_use]
    pub fn end_given_start(&self, start: Timestamp) -> Timestamp {
        start + self.runtime
    }

    /// Observed start time (`submit + wait`), if a wait was recorded.
    #[must_use]
    pub fn start(&self) -> Option<Timestamp> {
        self.wait.map(|w| self.submit + w)
    }

    /// Observed turnaround time (`wait + runtime`), if a wait was recorded.
    #[must_use]
    pub fn turnaround(&self) -> Option<Duration> {
        self.wait.map(|w| w + self.runtime)
    }

    /// Bounded slowdown with the given interactivity bound (paper §II.C,
    /// `bound` = 10 s in all experiments):
    /// `max(1, (wait + runtime) / max(runtime, bound))`.
    ///
    /// Returns `None` if the job has no recorded wait.
    #[must_use]
    pub fn bounded_slowdown(&self, bound: Duration) -> Option<f64> {
        let wait = self.wait? as f64;
        let run = self.runtime as f64;
        let denom = run.max(bound as f64);
        Some(((wait + run) / denom).max(1.0))
    }

    /// The walltime the scheduler should plan with: the user estimate if
    /// present, otherwise the actual runtime (perfect estimate fallback used
    /// for DL traces, which carry no walltimes).
    #[must_use]
    pub fn planning_walltime(&self) -> Duration {
        self.walltime.unwrap_or(self.runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_from_signals_matches_paper_rules() {
        assert_eq!(JobStatus::from_exit(Some(15), 0), JobStatus::Killed);
        assert_eq!(JobStatus::from_exit(Some(9), 0), JobStatus::Killed);
        assert_eq!(JobStatus::from_exit(Some(6), 0), JobStatus::Failed);
        assert_eq!(JobStatus::from_exit(Some(11), 0), JobStatus::Failed);
        assert_eq!(JobStatus::from_exit(None, 0), JobStatus::Passed);
        assert_eq!(JobStatus::from_exit(None, 1), JobStatus::Failed);
    }

    #[test]
    fn core_hours_scales_with_procs_and_runtime() {
        let j = Job::basic(1, 1, 0, 7_200, 16);
        assert!((j.core_hours() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_floors_at_one() {
        let mut j = Job::basic(1, 1, 0, 3_600, 1);
        j.wait = Some(0);
        assert_eq!(j.bounded_slowdown(10), Some(1.0));
    }

    #[test]
    fn bounded_slowdown_uses_interactive_bound_for_short_jobs() {
        // 1-second job waiting 99 seconds: raw slowdown would be 100,
        // bounded slowdown is (99 + 1) / max(1, 10) = 10.
        let mut j = Job::basic(1, 1, 0, 1, 1);
        j.wait = Some(99);
        assert_eq!(j.bounded_slowdown(10), Some(10.0));
    }

    #[test]
    fn bounded_slowdown_none_without_wait() {
        let j = Job::basic(1, 1, 0, 100, 1);
        assert_eq!(j.bounded_slowdown(10), None);
    }

    #[test]
    fn turnaround_and_start_derive_from_wait() {
        let mut j = Job::basic(3, 1, 50, 100, 1);
        assert_eq!(j.start(), None);
        j.wait = Some(25);
        assert_eq!(j.start(), Some(75));
        assert_eq!(j.turnaround(), Some(125));
    }

    #[test]
    fn planning_walltime_prefers_estimate() {
        let mut j = Job::basic(1, 1, 0, 100, 1);
        assert_eq!(j.planning_walltime(), 100);
        j.walltime = Some(500);
        assert_eq!(j.planning_walltime(), 500);
    }

    #[test]
    fn serde_roundtrip() {
        let mut j = Job::basic(9, 4, 1_000, 60, 8);
        j.status = JobStatus::Killed;
        j.virtual_cluster = Some(3);
        let s = serde_json::to_string(&j).unwrap();
        let back: Job = serde_json::from_str(&s).unwrap();
        assert_eq!(j, back);
    }
}
