//! Error types shared across the workspace.

use std::fmt;

/// Result alias using [`CoreError`].
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by trace construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A job requested more resources than the system owns.
    OversizedJob {
        /// Offending job id.
        job: u64,
        /// Resource units requested.
        requested: u64,
        /// Resource units the system owns.
        capacity: u64,
    },
    /// A job carries a negative or otherwise nonsensical time field.
    InvalidTime {
        /// Offending job id.
        job: u64,
        /// Human-readable description of the bad field.
        what: &'static str,
    },
    /// A trace operation required jobs sorted by submit time, but they were not.
    UnsortedTrace {
        /// Index of the first out-of-order job.
        index: usize,
    },
    /// The trace is empty where at least one job is required.
    EmptyTrace,
    /// A system specification is internally inconsistent.
    InvalidSystem(String),
    /// Parse failure in a trace file (e.g. SWF).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A serialized session snapshot is internally inconsistent and cannot
    /// be restored (e.g. mismatched table lengths or overcommitted
    /// partitions).
    InvalidSnapshot(String),
    /// A job id was resubmitted while an earlier job with the same id is
    /// still live (pending, waiting, or running).
    DuplicateJob {
        /// The reused job id.
        job: u64,
    },
    /// A submission referenced a tenant name absent from the tenant table
    /// (or named a tenant on a server with no tenant table at all).
    UnknownTenant {
        /// The unrecognized tenant name.
        name: String,
    },
    /// Accepting a job would push its tenant past its resource-unit quota.
    ///
    /// The quota bounds a tenant's total *outstanding* resource units —
    /// everything pending, waiting, or running — so the check can reject
    /// at submit time instead of letting jobs queue forever.
    QuotaExceeded {
        /// Tenant whose quota would be exceeded.
        tenant: String,
        /// Resource units the new job requests.
        requested: u64,
        /// Resource units the tenant already has outstanding.
        in_use: u64,
        /// The tenant's configured quota in resource units.
        quota: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OversizedJob {
                job,
                requested,
                capacity,
            } => write!(
                f,
                "job {job} requests {requested} resource units but the system has {capacity}"
            ),
            Self::InvalidTime { job, what } => {
                write!(f, "job {job} has invalid time field: {what}")
            }
            Self::UnsortedTrace { index } => {
                write!(f, "trace is not sorted by submit time at index {index}")
            }
            Self::EmptyTrace => write!(f, "trace contains no jobs"),
            Self::InvalidSystem(msg) => write!(f, "invalid system spec: {msg}"),
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::InvalidSnapshot(msg) => write!(f, "invalid session snapshot: {msg}"),
            Self::DuplicateJob { job } => {
                write!(
                    f,
                    "duplicate job id {job}: an earlier submission is still live"
                )
            }
            Self::UnknownTenant { name } => {
                write!(f, "unknown tenant `{name}`")
            }
            Self::QuotaExceeded {
                tenant,
                requested,
                in_use,
                quota,
            } => write!(
                f,
                "tenant `{tenant}` quota exceeded: {requested} units requested \
                 with {in_use} already outstanding against a quota of {quota}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::OversizedJob {
            job: 7,
            requested: 100,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains("job 7"));
        assert!(s.contains("100"));
        assert!(s.contains("10"));
    }

    #[test]
    fn invalid_snapshot_display() {
        let e = CoreError::InvalidSnapshot("states has 3 entries for 4 jobs".into());
        let s = e.to_string();
        assert!(s.contains("invalid session snapshot"));
        assert!(s.contains("3 entries for 4 jobs"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::EmptyTrace, CoreError::EmptyTrace);
        assert_ne!(CoreError::EmptyTrace, CoreError::UnsortedTrace { index: 0 });
    }
}
