//! Job categorisation rules from paper §III.A and §V.B.
//!
//! * [`SizeClass`] — small / middle / large by resource request, with
//!   HPC-style (fraction-of-machine) and DL-style (GPU-count) thresholds.
//! * [`LengthClass`] — short / middle / long by runtime.
//! * [`RequestClass`] / [`RuntimeClass`] — the four-way variants with an
//!   extra `Minimal` bucket used by the submission-behaviour analyses
//!   (Figs. 9 & 10).
//! * [`QueueClass`] — short / middle / long queue-length terciles.

use serde::{Deserialize, Serialize};

use crate::system::{SystemKind, SystemSpec};
use crate::time::{Duration, DAY, HOUR, MINUTE};

/// Three-way job size category (paper §III.A).
///
/// HPC systems (Mira, Theta, Blue Waters): small < 10 % of total cores,
/// middle 10–30 %, large > 30 % (following Patel et al.).
/// DL systems (Philly, Helios): small = 1 GPU, middle 2–8 GPUs,
/// large > 8 GPUs (following Hu et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeClass {
    /// Small request.
    Small,
    /// Middle request.
    Middle,
    /// Large request.
    Large,
}

impl SizeClass {
    /// All classes in ascending order.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Middle, SizeClass::Large];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Small => "Small",
            Self::Middle => "Middle",
            Self::Large => "Large",
        }
    }

    /// Classifies a request of `procs` units on `system`, applying the
    /// HPC or DL thresholds according to the system kind.
    #[must_use]
    pub fn classify(procs: u64, system: &SystemSpec) -> Self {
        match system.kind {
            SystemKind::ClassicHpc | SystemKind::Hybrid => {
                let frac = system.fraction_of_machine(procs);
                if frac < 0.10 {
                    Self::Small
                } else if frac <= 0.30 {
                    Self::Middle
                } else {
                    Self::Large
                }
            }
            SystemKind::DlCluster => {
                if procs <= 1 {
                    Self::Small
                } else if procs <= 8 {
                    Self::Middle
                } else {
                    Self::Large
                }
            }
        }
    }
}

/// Three-way job length category (paper §III.A, following Rodrigo et al.):
/// short < 1 h, middle 1 h – 1 day, long > 1 day. Applied identically to
/// every system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LengthClass {
    /// Runtime < 1 hour.
    Short,
    /// Runtime between 1 hour and 1 day.
    Middle,
    /// Runtime > 1 day.
    Long,
}

impl LengthClass {
    /// All classes in ascending order.
    pub const ALL: [LengthClass; 3] = [LengthClass::Short, LengthClass::Middle, LengthClass::Long];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Short => "Short",
            Self::Middle => "Middle",
            Self::Long => "Long",
        }
    }

    /// Classifies a runtime.
    #[must_use]
    pub fn classify(runtime: Duration) -> Self {
        if runtime < HOUR {
            Self::Short
        } else if runtime <= DAY {
            Self::Middle
        } else {
            Self::Long
        }
    }
}

/// Four-way resource-request category for the submission-behaviour analysis
/// (Fig. 9): `Minimal` = exactly one scheduling unit, otherwise the
/// [`SizeClass`] buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RequestClass {
    /// Exactly one CPU core / one GPU.
    Minimal,
    /// Small but more than one unit.
    Small,
    /// Middle request.
    Middle,
    /// Large request.
    Large,
}

impl RequestClass {
    /// All classes in ascending order.
    pub const ALL: [RequestClass; 4] = [
        RequestClass::Minimal,
        RequestClass::Small,
        RequestClass::Middle,
        RequestClass::Large,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Minimal => "Minimal",
            Self::Small => "Small",
            Self::Middle => "Middle",
            Self::Large => "Large",
        }
    }

    /// Classifies a request, carving the one-unit jobs out of `Small`.
    #[must_use]
    pub fn classify(procs: u64, system: &SystemSpec) -> Self {
        if procs <= 1 {
            return Self::Minimal;
        }
        match SizeClass::classify(procs, system) {
            SizeClass::Small => Self::Small,
            SizeClass::Middle => Self::Middle,
            SizeClass::Large => Self::Large,
        }
    }
}

/// Four-way runtime category for the submission-behaviour analysis
/// (Fig. 10): `Minimal` = finished within 60 s, otherwise [`LengthClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuntimeClass {
    /// Runtime ≤ 60 s.
    Minimal,
    /// Short (≤ 1 h) but over a minute.
    Short,
    /// Between 1 hour and 1 day.
    Middle,
    /// Over a day.
    Long,
}

impl RuntimeClass {
    /// All classes in ascending order.
    pub const ALL: [RuntimeClass; 4] = [
        RuntimeClass::Minimal,
        RuntimeClass::Short,
        RuntimeClass::Middle,
        RuntimeClass::Long,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Minimal => "Minimal",
            Self::Short => "Short",
            Self::Middle => "Middle",
            Self::Long => "Long",
        }
    }

    /// Classifies a runtime, carving the sub-minute jobs out of `Short`.
    #[must_use]
    pub fn classify(runtime: Duration) -> Self {
        if runtime <= MINUTE {
            return Self::Minimal;
        }
        match LengthClass::classify(runtime) {
            LengthClass::Short => Self::Short,
            LengthClass::Middle => Self::Middle,
            LengthClass::Long => Self::Long,
        }
    }
}

/// Queue-length terciles (paper §V.B): with `Q` the maximum observed queue
/// length, short < Q/3, middle Q/3–2Q/3, long > 2Q/3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueueClass {
    /// Queue shorter than a third of the maximum.
    Short,
    /// Queue between one and two thirds of the maximum.
    Middle,
    /// Queue longer than two thirds of the maximum.
    Long,
}

impl QueueClass {
    /// All classes in ascending order.
    pub const ALL: [QueueClass; 3] = [QueueClass::Short, QueueClass::Middle, QueueClass::Long];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Short => "Short",
            Self::Middle => "Middle",
            Self::Long => "Long",
        }
    }

    /// Classifies an observed queue length against the maximum queue length.
    /// `max_queue == 0` classifies everything as `Short`.
    #[must_use]
    pub fn classify(queue_len: usize, max_queue: usize) -> Self {
        if max_queue == 0 {
            return Self::Short;
        }
        let frac = queue_len as f64 / max_queue as f64;
        if frac < 1.0 / 3.0 {
            Self::Short
        } else if frac <= 2.0 / 3.0 {
            Self::Middle
        } else {
            Self::Long
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mira() -> SystemSpec {
        SystemSpec::mira()
    }
    fn philly() -> SystemSpec {
        SystemSpec::philly()
    }

    #[test]
    fn hpc_size_thresholds_are_fraction_based() {
        let m = mira();
        // 5% of Mira
        assert_eq!(SizeClass::classify(39_321, &m), SizeClass::Small);
        // 20% of Mira
        assert_eq!(SizeClass::classify(157_286, &m), SizeClass::Middle);
        // 40% of Mira
        assert_eq!(SizeClass::classify(314_572, &m), SizeClass::Large);
    }

    #[test]
    fn dl_size_thresholds_are_gpu_counts() {
        let p = philly();
        assert_eq!(SizeClass::classify(1, &p), SizeClass::Small);
        assert_eq!(SizeClass::classify(2, &p), SizeClass::Middle);
        assert_eq!(SizeClass::classify(8, &p), SizeClass::Middle);
        assert_eq!(SizeClass::classify(9, &p), SizeClass::Large);
        assert_eq!(SizeClass::classify(2_048, &p), SizeClass::Large);
    }

    #[test]
    fn length_thresholds() {
        assert_eq!(LengthClass::classify(0), LengthClass::Short);
        assert_eq!(LengthClass::classify(HOUR - 1), LengthClass::Short);
        assert_eq!(LengthClass::classify(HOUR), LengthClass::Middle);
        assert_eq!(LengthClass::classify(DAY), LengthClass::Middle);
        assert_eq!(LengthClass::classify(DAY + 1), LengthClass::Long);
    }

    #[test]
    fn request_class_separates_minimal() {
        let p = philly();
        assert_eq!(RequestClass::classify(1, &p), RequestClass::Minimal);
        assert_eq!(RequestClass::classify(4, &p), RequestClass::Middle);
        let m = mira();
        assert_eq!(RequestClass::classify(1, &m), RequestClass::Minimal);
        assert_eq!(RequestClass::classify(16, &m), RequestClass::Small);
    }

    #[test]
    fn runtime_class_separates_minimal() {
        assert_eq!(RuntimeClass::classify(30), RuntimeClass::Minimal);
        assert_eq!(RuntimeClass::classify(60), RuntimeClass::Minimal);
        assert_eq!(RuntimeClass::classify(61), RuntimeClass::Short);
        assert_eq!(RuntimeClass::classify(2 * HOUR), RuntimeClass::Middle);
        assert_eq!(RuntimeClass::classify(2 * DAY), RuntimeClass::Long);
    }

    #[test]
    fn queue_class_terciles() {
        assert_eq!(QueueClass::classify(0, 0), QueueClass::Short);
        assert_eq!(QueueClass::classify(0, 300), QueueClass::Short);
        assert_eq!(QueueClass::classify(99, 300), QueueClass::Short);
        assert_eq!(QueueClass::classify(150, 300), QueueClass::Middle);
        assert_eq!(QueueClass::classify(250, 300), QueueClass::Long);
        assert_eq!(QueueClass::classify(300, 300), QueueClass::Long);
    }
}
