//! # lumos-core
//!
//! Core data model for the `lumos-rs` cross-system job characterization and
//! scheduling suite — a Rust reproduction of *"Cross-System Analysis of Job
//! Characterization and Scheduling in Large-Scale Computing Clusters"*
//! (Zhang et al., IPPS 2024).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Job`] — a single execution instance (submit time, resources, runtime,
//!   exit status, owning user),
//! * [`JobStatus`] — the Passed / Failed / Killed trichotomy of paper §IV,
//! * [`SystemSpec`] — the static description of a cluster (Mira, Theta,
//!   Blue Waters, Philly, Helios, or any user-supplied system),
//! * [`Trace`] — an ordered collection of jobs bound to a system,
//! * the size / length / queue categorisation rules of paper §III,
//! * time helpers (epoch seconds, hour-of-day with timezone offsets).
//!
//! Everything is plain data: no I/O, no randomness, no scheduling logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod error;
pub mod job;
pub mod system;
pub mod time;
pub mod trace;

pub use categories::{LengthClass, QueueClass, RequestClass, RuntimeClass, SizeClass};
pub use error::{CoreError, Result};
pub use job::{Job, JobId, JobStatus, UserId};
pub use system::{ResourceKind, SystemId, SystemKind, SystemSpec};
pub use time::{hour_of_day, Duration, Timestamp, DAY, HOUR, MINUTE};
pub use trace::Trace;
