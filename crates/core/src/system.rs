//! Static cluster descriptions ([`SystemSpec`]) for the five target systems
//! and any user-supplied system.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::time::Duration;

/// Identifies one of the paper's five target systems, or a custom one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemId {
    /// Mira — ALCF Blue Gene/Q, classic HPC (49,152 nodes × 16 cores).
    Mira,
    /// Theta — ALCF Cray XC40, classic HPC (4,392 nodes × 64 cores).
    Theta,
    /// Blue Waters — NCSA hybrid (22,636 CPU + 4,228 GPU nodes).
    BlueWaters,
    /// Philly — Microsoft DL cluster (552 nodes, 2,490 GPUs, 14 virtual clusters).
    Philly,
    /// Helios — SenseTime DL cluster (802 nodes, 6,416 GPUs).
    Helios,
    /// Any other system described by a custom [`SystemSpec`].
    Custom,
}

impl SystemId {
    /// The five paper systems, in presentation order.
    pub const PAPER_SYSTEMS: [SystemId; 5] = [
        SystemId::Mira,
        SystemId::Theta,
        SystemId::BlueWaters,
        SystemId::Philly,
        SystemId::Helios,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Mira => "Mira",
            Self::Theta => "Theta",
            Self::BlueWaters => "Blue Waters",
            Self::Philly => "Philly",
            Self::Helios => "Helios",
            Self::Custom => "Custom",
        }
    }
}

/// The broad workload class a system hosts (paper §II.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Traditional CPU-based HPC cluster running numerical simulations.
    ClassicHpc,
    /// GPU cluster dedicated to deep-learning workloads.
    DlCluster,
    /// Mixed CPU+GPU cluster hosting both workload families.
    Hybrid,
}

/// The resource unit jobs are scheduled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU cores (Mira, Theta, Blue Waters CPU partition).
    CpuCores,
    /// GPUs (Philly, Helios, Blue Waters GPU partition).
    Gpus,
}

/// Static description of a cluster: capacity, scheduling unit, categorisation
/// thresholds, and queue-partitioning behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Which system this spec describes.
    pub id: SystemId,
    /// Human-readable name (matches `id.name()` for the paper systems).
    pub name: String,
    /// Workload class.
    pub kind: SystemKind,
    /// Scheduling resource unit.
    pub resource: ResourceKind,
    /// Total compute nodes.
    pub total_nodes: u32,
    /// Scheduling units per node (cores per node, or GPUs per node).
    pub units_per_node: u32,
    /// Total scheduling units (`total_nodes × units_per_node` unless the
    /// system is irregular).
    pub total_units: u64,
    /// Number of isolated virtual clusters the scheduler partitions the
    /// machine into (1 = one global pool; Philly uses 14).
    pub virtual_clusters: u16,
    /// Offset of the system's local clock from the trace clock, in seconds
    /// (used for hour-of-day analyses; Fig. 1b uses local time).
    pub tz_offset: Duration,
}

impl SystemSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidSystem`] when capacities are zero or
    /// inconsistent.
    pub fn validate(&self) -> Result<()> {
        if self.total_nodes == 0 {
            return Err(CoreError::InvalidSystem(format!(
                "{}: total_nodes is zero",
                self.name
            )));
        }
        if self.units_per_node == 0 {
            return Err(CoreError::InvalidSystem(format!(
                "{}: units_per_node is zero",
                self.name
            )));
        }
        if self.total_units == 0 {
            return Err(CoreError::InvalidSystem(format!(
                "{}: total_units is zero",
                self.name
            )));
        }
        if self.virtual_clusters == 0 {
            return Err(CoreError::InvalidSystem(format!(
                "{}: virtual_clusters must be ≥ 1",
                self.name
            )));
        }
        let derived = u64::from(self.total_nodes) * u64::from(self.units_per_node);
        if self.total_units > derived {
            return Err(CoreError::InvalidSystem(format!(
                "{}: total_units {} exceeds nodes × units_per_node = {}",
                self.name, self.total_units, derived
            )));
        }
        Ok(())
    }

    /// True for systems whose scheduling unit is the GPU.
    #[must_use]
    pub fn is_gpu_scheduled(&self) -> bool {
        self.resource == ResourceKind::Gpus
    }

    /// Fraction of the machine a request of `procs` units occupies.
    #[must_use]
    pub fn fraction_of_machine(&self, procs: u64) -> f64 {
        procs as f64 / self.total_units as f64
    }

    /// Units owned by one virtual cluster under an even split.
    #[must_use]
    pub fn units_per_virtual_cluster(&self) -> u64 {
        self.total_units / u64::from(self.virtual_clusters)
    }

    // ---- The five paper systems (capacities from paper Table I) ----------

    /// Mira: 49,152 nodes × 16 cores = 786,432 cores, Central Time.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            id: SystemId::Mira,
            name: "Mira".into(),
            kind: SystemKind::ClassicHpc,
            resource: ResourceKind::CpuCores,
            total_nodes: 49_152,
            units_per_node: 16,
            total_units: 786_432,
            virtual_clusters: 1,
            tz_offset: -6 * crate::time::HOUR,
        }
    }

    /// Theta: 4,392 nodes × 64 cores = 281,088 cores, Central Time.
    #[must_use]
    pub fn theta() -> Self {
        Self {
            id: SystemId::Theta,
            name: "Theta".into(),
            kind: SystemKind::ClassicHpc,
            resource: ResourceKind::CpuCores,
            total_nodes: 4_392,
            units_per_node: 64,
            total_units: 281_088,
            virtual_clusters: 1,
            tz_offset: -6 * crate::time::HOUR,
        }
    }

    /// Blue Waters: 26,864 nodes, 396,000 cores (22,636 CPU + 4,228 GPU
    /// nodes), Central Time. Scheduled in cores; jobs carry node counts.
    #[must_use]
    pub fn blue_waters() -> Self {
        Self {
            id: SystemId::BlueWaters,
            name: "Blue Waters".into(),
            kind: SystemKind::Hybrid,
            resource: ResourceKind::CpuCores,
            total_nodes: 26_864,
            units_per_node: 16,
            total_units: 396_000,
            virtual_clusters: 1,
            tz_offset: -6 * crate::time::HOUR,
        }
    }

    /// Philly: 552 nodes, 2,490 GPUs, 14 isolated virtual clusters,
    /// Pacific Time.
    #[must_use]
    pub fn philly() -> Self {
        Self {
            id: SystemId::Philly,
            name: "Philly".into(),
            kind: SystemKind::DlCluster,
            resource: ResourceKind::Gpus,
            total_nodes: 552,
            units_per_node: 8,
            total_units: 2_490,
            virtual_clusters: 14,
            tz_offset: -8 * crate::time::HOUR,
        }
    }

    /// Helios: 802 nodes, 6,416 GPUs, one pool, China Standard Time.
    #[must_use]
    pub fn helios() -> Self {
        Self {
            id: SystemId::Helios,
            name: "Helios".into(),
            kind: SystemKind::DlCluster,
            resource: ResourceKind::Gpus,
            total_nodes: 802,
            units_per_node: 8,
            total_units: 6_416,
            virtual_clusters: 1,
            tz_offset: 8 * crate::time::HOUR,
        }
    }

    /// Returns the spec for a paper system.
    ///
    /// # Panics
    /// Panics if called with [`SystemId::Custom`], which has no canonical spec.
    #[must_use]
    pub fn paper(id: SystemId) -> Self {
        match id {
            SystemId::Mira => Self::mira(),
            SystemId::Theta => Self::theta(),
            SystemId::BlueWaters => Self::blue_waters(),
            SystemId::Philly => Self::philly(),
            SystemId::Helios => Self::helios(),
            SystemId::Custom => panic!("SystemId::Custom has no canonical SystemSpec"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_validate() {
        for id in SystemId::PAPER_SYSTEMS {
            let spec = SystemSpec::paper(id);
            spec.validate().unwrap();
            assert_eq!(spec.id, id);
            assert_eq!(spec.name, id.name());
        }
    }

    #[test]
    fn paper_capacities_match_table1() {
        assert_eq!(SystemSpec::mira().total_units, 786_432);
        assert_eq!(SystemSpec::theta().total_units, 281_088);
        assert_eq!(SystemSpec::blue_waters().total_units, 396_000);
        assert_eq!(SystemSpec::philly().total_units, 2_490);
        assert_eq!(SystemSpec::helios().total_units, 6_416);
    }

    #[test]
    fn philly_is_partitioned_gpu_cluster() {
        let p = SystemSpec::philly();
        assert!(p.is_gpu_scheduled());
        assert_eq!(p.virtual_clusters, 14);
        assert!(p.units_per_virtual_cluster() >= 1);
    }

    #[test]
    fn fraction_of_machine() {
        let m = SystemSpec::mira();
        let f = m.fraction_of_machine(78_643);
        assert!(f > 0.099 && f < 0.101);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = SystemSpec::theta();
        s.total_nodes = 0;
        assert!(s.validate().is_err());

        let mut s = SystemSpec::theta();
        s.virtual_clusters = 0;
        assert!(s.validate().is_err());

        let mut s = SystemSpec::theta();
        s.total_units = u64::from(s.total_nodes) * u64::from(s.units_per_node) + 1;
        assert!(s.validate().is_err());
    }
}
