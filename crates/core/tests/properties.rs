//! Property-based tests for the core data model.

use lumos_core::{
    hour_of_day, Job, JobStatus, LengthClass, QueueClass, RequestClass, RuntimeClass, SizeClass,
    SystemSpec, Trace,
};
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = JobStatus> {
    prop_oneof![
        Just(JobStatus::Passed),
        Just(JobStatus::Failed),
        Just(JobStatus::Killed),
    ]
}

fn arb_job() -> impl Strategy<Value = Job> {
    (
        any::<u32>(),
        0i64..10_000_000,
        0i64..10_000_000,
        1u64..281_088,
        arb_status(),
        prop::option::of(0i64..20_000_000),
    )
        .prop_map(|(user, submit, runtime, procs, status, wait)| {
            let mut j = Job::basic(u64::from(user), user % 100, submit, runtime, procs);
            j.status = status;
            j.wait = wait;
            j
        })
}

proptest! {
    #[test]
    fn bounded_slowdown_is_at_least_one(job in arb_job(), bound in 1i64..100) {
        if let Some(b) = job.bounded_slowdown(bound) {
            prop_assert!(b >= 1.0);
        }
    }

    #[test]
    fn core_hours_are_nonnegative_and_scale(job in arb_job()) {
        let ch = job.core_hours();
        prop_assert!(ch >= 0.0);
        let mut doubled = job.clone();
        doubled.procs *= 2;
        prop_assert!((doubled.core_hours() - 2.0 * ch).abs() < 1e-6);
    }

    #[test]
    fn hour_of_day_is_always_valid(t in any::<i32>(), tz in -14i64..=14) {
        let h = hour_of_day(i64::from(t), tz * 3_600);
        prop_assert!(h < 24);
    }

    #[test]
    fn size_class_is_monotone_in_procs(a in 1u64..281_088, b in 1u64..281_088) {
        let spec = SystemSpec::theta();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(SizeClass::classify(lo, &spec) <= SizeClass::classify(hi, &spec));
        let dl = SystemSpec::philly();
        let (lo, hi) = (lo.min(2_490), hi.min(2_490));
        prop_assert!(SizeClass::classify(lo, &dl) <= SizeClass::classify(hi, &dl));
    }

    #[test]
    fn length_class_is_monotone_in_runtime(a in 0i64..10_000_000, b in 0i64..10_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(LengthClass::classify(lo) <= LengthClass::classify(hi));
        prop_assert!(RuntimeClass::classify(lo) <= RuntimeClass::classify(hi));
    }

    #[test]
    fn request_class_refines_size_class(procs in 1u64..281_088) {
        let spec = SystemSpec::theta();
        let rc = RequestClass::classify(procs, &spec);
        let sc = SizeClass::classify(procs, &spec);
        // Minimal only for 1 unit; otherwise consistent with SizeClass.
        match rc {
            RequestClass::Minimal => prop_assert_eq!(procs, 1),
            RequestClass::Small => prop_assert_eq!(sc, SizeClass::Small),
            RequestClass::Middle => prop_assert_eq!(sc, SizeClass::Middle),
            RequestClass::Large => prop_assert_eq!(sc, SizeClass::Large),
        }
    }

    #[test]
    fn queue_class_is_monotone(len_a in 0usize..10_000, len_b in 0usize..10_000, max in 1usize..10_000) {
        let (lo, hi) = if len_a <= len_b { (len_a, len_b) } else { (len_b, len_a) };
        prop_assert!(QueueClass::classify(lo, max) <= QueueClass::classify(hi, max));
    }

    #[test]
    fn trace_construction_sorts_and_preserves(jobs in prop::collection::vec(arb_job(), 1..100)) {
        let n = jobs.len();
        match Trace::new(SystemSpec::theta(), jobs) {
            Ok(trace) => {
                prop_assert_eq!(trace.len(), n);
                let mut prev = i64::MIN;
                for j in trace.jobs() {
                    prop_assert!(j.submit >= prev);
                    prev = j.submit;
                }
            }
            Err(e) => {
                // Only negative-time rejections are possible for this
                // generator (procs are within capacity).
                let is_time_error = matches!(e, lumos_core::CoreError::InvalidTime { .. });
                prop_assert!(is_time_error);
            }
        }
    }

    #[test]
    fn trace_window_is_a_subset(jobs in prop::collection::vec(arb_job(), 1..100),
                                from in 0i64..5_000_000, len in 1i64..5_000_000) {
        let jobs: Vec<Job> = jobs.into_iter().map(|mut j| { j.wait = None; j }).collect();
        let trace = Trace::new(SystemSpec::theta(), jobs).unwrap();
        if let Ok(w) = trace.window(from, from + len) {
            prop_assert!(w.len() <= trace.len());
            for j in w.jobs() {
                prop_assert!(j.submit >= from && j.submit < from + len);
            }
        }
    }

    #[test]
    fn top_users_counts_sum_correctly(jobs in prop::collection::vec(arb_job(), 1..100)) {
        let jobs: Vec<Job> = jobs.into_iter().map(|mut j| { j.wait = None; j }).collect();
        let trace = Trace::new(SystemSpec::theta(), jobs).unwrap();
        let all = trace.top_users(usize::MAX);
        let total: usize = all.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total, trace.len());
        // Descending by count.
        for w in all.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }
}
