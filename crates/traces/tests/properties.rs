//! Property-based tests for the workload substrate: generator invariants
//! and SWF round-trips over random jobs.

use lumos_core::{Job, JobStatus, SystemId, SystemSpec, Trace};
use lumos_traces::{swf, systems, Generator, GeneratorConfig};
use proptest::prelude::*;

fn arb_system() -> impl Strategy<Value = SystemId> {
    prop_oneof![
        Just(SystemId::Mira),
        Just(SystemId::Theta),
        Just(SystemId::BlueWaters),
        Just(SystemId::Philly),
        Just(SystemId::Helios),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_traces_satisfy_global_invariants(id in arb_system(), seed in any::<u64>()) {
        let trace = Generator::new(
            systems::profile_for(id),
            GeneratorConfig { seed, span_days: 1, ..GeneratorConfig::default() },
        )
        .generate();
        let capacity = trace.system.total_units;
        let mut prev = i64::MIN;
        for j in trace.jobs() {
            prop_assert!(j.submit >= prev, "sorted by submit");
            prev = j.submit;
            prop_assert!(j.submit >= 0 && j.submit < 86_400);
            prop_assert!(j.procs >= 1 && j.procs <= capacity);
            prop_assert!(j.runtime >= 1);
            prop_assert!(j.wait.is_none(), "generator leaves waits to the simulator");
            if let Some(wt) = j.walltime {
                prop_assert!(wt >= 60);
                prop_assert!(j.runtime <= wt, "no job outlives its walltime");
            }
            if j.status == JobStatus::Passed {
                if let Some(wt) = j.walltime {
                    prop_assert!(wt >= j.runtime);
                }
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_seed(id in arb_system(), seed in any::<u64>()) {
        let make = || Generator::new(
            systems::profile_for(id),
            GeneratorConfig { seed, span_days: 1, ..GeneratorConfig::default() },
        ).generate();
        let (a, b) = (make(), make());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn swf_roundtrip_random_jobs(
        raw in prop::collection::vec(
            (0i64..100_000, 0i64..100_000, 1u64..281_088, 0u32..50, 0u8..3),
            1..100,
        )
    ) {
        let jobs: Vec<Job> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (submit, runtime, procs, user, status))| {
                let mut j = Job::basic(i as u64, user, submit, runtime, procs);
                j.status = match status {
                    0 => JobStatus::Passed,
                    1 => JobStatus::Failed,
                    _ => JobStatus::Killed,
                };
                j
            })
            .collect();
        let trace = Trace::new(SystemSpec::theta(), jobs).unwrap();
        let text = swf::write(&trace);
        let back = swf::parse(&text, SystemSpec::theta()).unwrap();
        prop_assert_eq!(trace.len(), back.len());
        for (a, b) in trace.jobs().iter().zip(back.jobs()) {
            prop_assert_eq!(a.submit, b.submit);
            // SWF has no zero-runtime marker ambiguity: runtimes of 0 stay 0.
            prop_assert_eq!(a.runtime, b.runtime);
            prop_assert_eq!(a.procs, b.procs);
            prop_assert_eq!(a.status, b.status);
            prop_assert_eq!(a.user, b.user);
        }
    }

    #[test]
    fn load_scale_monotonically_adds_jobs(id in arb_system(), seed in any::<u64>()) {
        let gen = |scale: f64| Generator::new(
            systems::profile_for(id),
            GeneratorConfig { seed, span_days: 1, load_scale: scale, ..GeneratorConfig::default() },
        ).generate().len() as f64;
        let half = gen(0.5);
        let full = gen(1.0);
        // Poisson noise allows slack; the ordering must still be clear.
        prop_assert!(full > half * 1.2, "full={full} half={half}");
    }
}
