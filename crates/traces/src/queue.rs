//! A lightweight FCFS queue model that gives the generator a live backlog
//! signal.
//!
//! The paper's Figs. 9–10 show users reacting to the *current queue length*
//! when they submit. Reproducing that requires the generator to know, at
//! every arrival instant, how congested the system is — so generation and a
//! cheap FCFS simulation are co-routined: each submitted job is pushed into
//! this model, and each new arrival first advances it to "now" and reads the
//! backlog. (The *full* scheduler in `lumos-sim` replays the finished trace
//! later with real backfilling; this model only has to get congestion
//! roughly right, not scheduling exactly right.)

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use lumos_core::Timestamp;

/// FCFS backlog model over a fixed pool of resource units.
#[derive(Debug, Clone)]
pub struct FeedbackQueue {
    capacity: u64,
    free: u64,
    /// Running jobs as `(finish_time, procs)`, min-heap by finish time.
    running: BinaryHeap<Reverse<(Timestamp, u64)>>,
    /// Waiting jobs as `(procs, runtime)`, FIFO.
    waiting: VecDeque<(u64, i64)>,
    /// Largest backlog ever observed.
    peak: usize,
}

impl FeedbackQueue {
    /// Creates an empty model with `capacity` resource units.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "queue model needs capacity");
        Self {
            capacity,
            free: capacity,
            running: BinaryHeap::new(),
            waiting: VecDeque::new(),
            peak: 0,
        }
    }

    /// Advances the model to time `now`: completes finished jobs in event
    /// order and starts waiting jobs FCFS *at the completion instants that
    /// freed the space* (so finish times do not drift with the polling
    /// granularity).
    pub fn advance(&mut self, now: Timestamp) {
        while let Some(&Reverse((finish, procs))) = self.running.peek() {
            if finish > now {
                break;
            }
            self.running.pop();
            self.free += procs;
            // FCFS admission at the completion instant. A stuck head blocks
            // everything behind it (no backfilling in this model).
            while let Some(&(p, r)) = self.waiting.front() {
                if p <= self.free {
                    self.waiting.pop_front();
                    self.start(finish, p, r);
                } else {
                    break;
                }
            }
        }
        // Nothing left to complete by `now`; admit whatever still fits.
        while let Some(&(p, r)) = self.waiting.front() {
            if p <= self.free {
                self.waiting.pop_front();
                self.start(now, p, r);
            } else {
                break;
            }
        }
    }

    fn start(&mut self, at: Timestamp, procs: u64, runtime: i64) {
        debug_assert!(procs <= self.free);
        self.free -= procs;
        self.running.push(Reverse((at + runtime, procs)));
    }

    /// Submits a job at time `now` (the model must already be advanced to
    /// `now`). Jobs larger than capacity are clamped.
    pub fn submit(&mut self, now: Timestamp, procs: u64, runtime: i64) {
        let procs = procs.min(self.capacity);
        if self.waiting.is_empty() && procs <= self.free {
            self.start(now, procs, runtime);
        } else {
            self.waiting.push_back((procs, runtime));
            self.peak = self.peak.max(self.waiting.len());
        }
    }

    /// Current number of waiting jobs.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Largest backlog observed so far.
    #[must_use]
    pub fn peak_queue(&self) -> usize {
        self.peak
    }

    /// Congestion fraction in `[0, 1]` against an expected maximum backlog.
    #[must_use]
    pub fn congestion(&self, expected_max: usize) -> f64 {
        if expected_max == 0 {
            return 0.0;
        }
        (self.queue_len() as f64 / expected_max as f64).min(1.0)
    }

    /// Units currently in use.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.capacity - self.free
    }
}

/// A partitioned feedback model: one [`FeedbackQueue`] per virtual cluster,
/// with the same Zipf(½) capacity split `lumos-sim` uses, so the congestion
/// a user *sees at generation time* matches the congestion the replay will
/// produce. On unpartitioned systems this degenerates to one queue.
#[derive(Debug, Clone)]
pub struct FeedbackCluster {
    queues: Vec<FeedbackQueue>,
}

impl FeedbackCluster {
    /// Splits `capacity` across `partitions` with Zipf(½) weights (largest
    /// first), mirroring `lumos_sim::cluster::Cluster`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `partitions == 0`.
    #[must_use]
    pub fn new(capacity: u64, partitions: u16) -> Self {
        assert!(capacity > 0 && partitions > 0);
        let n = usize::from(partitions);
        if n == 1 {
            return Self {
                queues: vec![FeedbackQueue::new(capacity)],
            };
        }
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).sqrt()).collect();
        let total_w: f64 = weights.iter().sum();
        let mut caps: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total_w) * capacity as f64).floor().max(1.0) as u64)
            .collect();
        let assigned: u64 = caps.iter().sum();
        caps[0] += capacity.saturating_sub(assigned);
        Self {
            queues: caps.into_iter().map(FeedbackQueue::new).collect(),
        }
    }

    fn index(&self, vc: Option<u16>) -> usize {
        match vc {
            Some(v) if self.queues.len() > 1 => usize::from(v) % self.queues.len(),
            _ => 0,
        }
    }

    /// Advances every partition to `now`.
    pub fn advance(&mut self, now: Timestamp) {
        for q in &mut self.queues {
            q.advance(now);
        }
    }

    /// Submits a job into its partition.
    pub fn submit(&mut self, vc: Option<u16>, now: Timestamp, procs: u64, runtime: i64) {
        let idx = self.index(vc);
        self.queues[idx].submit(now, procs, runtime);
    }

    /// Congestion the submitting user perceives: their own partition's
    /// backlog against `expected_max` (interpreted per partition).
    #[must_use]
    pub fn congestion(&self, vc: Option<u16>, expected_max: usize) -> f64 {
        self.queues[self.index(vc)].congestion(expected_max)
    }

    /// Total waiting jobs across partitions.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queues.iter().map(FeedbackQueue::queue_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_immediately_when_idle() {
        let mut q = FeedbackQueue::new(100);
        q.advance(0);
        q.submit(0, 50, 10);
        assert_eq!(q.queue_len(), 0);
        assert_eq!(q.used(), 50);
    }

    #[test]
    fn queues_when_full_and_drains_fcfs() {
        let mut q = FeedbackQueue::new(100);
        q.advance(0);
        q.submit(0, 100, 10);
        q.advance(1);
        q.submit(1, 60, 10);
        q.submit(1, 60, 10);
        assert_eq!(q.queue_len(), 2);
        // First job finishes at t=10; only one waiting job fits at a time.
        q.advance(10);
        assert_eq!(q.queue_len(), 1);
        assert_eq!(q.used(), 60);
        q.advance(20);
        assert_eq!(q.queue_len(), 0);
        assert_eq!(q.used(), 60);
    }

    #[test]
    fn fcfs_head_blocks_smaller_followers() {
        let mut q = FeedbackQueue::new(100);
        q.advance(0);
        q.submit(0, 90, 100);
        q.submit(0, 50, 10); // must wait for the 90 to finish
        q.submit(0, 5, 10); // would fit now, but FCFS blocks it
        assert_eq!(q.queue_len(), 2);
        q.advance(50);
        assert_eq!(q.queue_len(), 2, "head still running, nothing starts");
        q.advance(100);
        assert_eq!(q.queue_len(), 0, "both fit after the head finishes");
    }

    #[test]
    fn cascading_completions_in_one_advance() {
        let mut q = FeedbackQueue::new(10);
        q.advance(0);
        q.submit(0, 10, 5); // finishes t=5
        q.submit(0, 10, 5); // starts t=5, finishes t=10
        q.submit(0, 10, 5); // starts t=10
        assert_eq!(q.queue_len(), 2);
        q.advance(12);
        assert_eq!(q.queue_len(), 0);
        assert_eq!(q.used(), 10);
        q.advance(15);
        assert_eq!(q.used(), 0);
    }

    #[test]
    fn congestion_fraction_saturates() {
        let mut q = FeedbackQueue::new(1);
        q.advance(0);
        for _ in 0..20 {
            q.submit(0, 1, 100);
        }
        assert_eq!(q.queue_len(), 19);
        assert!((q.congestion(10) - 1.0).abs() < 1e-12);
        assert!((q.congestion(100) - 0.19).abs() < 1e-12);
        assert_eq!(q.peak_queue(), 19);
    }

    #[test]
    fn oversized_jobs_are_clamped() {
        let mut q = FeedbackQueue::new(10);
        q.advance(0);
        q.submit(0, 1_000, 10);
        assert_eq!(q.used(), 10);
    }
}
