//! The five calibrated system profiles.
//!
//! Every number here traces back to a statement in the paper (§II Table I,
//! §III Figs. 1–2, §IV Fig. 6, §V Figs. 8–10) or to arithmetic needed to
//! make those statements mutually consistent:
//!
//! * **Mira / Theta** — sparse arrivals (minutes apart), large node-counts,
//!   stable log-normal runtimes with ~1.5 h / ~1 h medians, walltimes
//!   present, long jobs almost always killed (Mira ≈ 99 %).
//! * **Blue Waters** — hybrid: DL-like arrival density (seconds apart),
//!   small median request (~32 cores), heavy-tailed runtimes mixing
//!   sub-minute debug jobs and multi-day runs, highest congestion.
//! * **Philly** — 80 % single-GPU jobs, 12-minute median runtime with a
//!   rare multi-day training tail, 14 isolated virtual clusters, inverted
//!   diurnal pattern (fewer submissions during office hours), strongest
//!   queue-adaptive behaviour.
//! * **Helios** — 90-second median runtime, strong 10× diurnal peak, large
//!   GPU requests up to 2048, long-job-dominated core-hours.
//!
//! The mean arrival gap is **derived**, not hand-set: each profile declares
//! a `target_load` and `SystemProfile::calibrated_arrival_gap` solves for
//! the gap that offers that load to the machine.

use lumos_core::{SystemId, SystemSpec};
use lumos_stats::dist::{Discrete, LogNormal, Mixture, Pareto, Sampler};

use crate::profile::{StatusMix, SystemProfile, WalltimePolicy};

/// Uniform-ish diurnal curve with a multiplicative bump over `[from, to)`.
fn diurnal(base: f64, bump: f64, from: usize, to: usize) -> [f64; 24] {
    let mut d = [base; 24];
    for (h, slot) in d.iter_mut().enumerate() {
        if h >= from && h < to {
            *slot = bump;
        }
    }
    d
}

fn boxed<S: Sampler + Send + Sync + 'static>(s: S) -> Box<dyn Sampler + Send + Sync> {
    Box::new(s)
}

/// Mira: big rigid jobs on a 786k-core Blue Gene/Q.
#[must_use]
pub fn mira() -> SystemProfile {
    // Node-count menu (×16 cores/node). >50 % of jobs exceed 1,000 cores by
    // construction (the smallest allocation is 512 nodes = 8,192 cores);
    // small (<10 % of machine) jobs carry ~30 % of core-hours, middle the
    // plurality (Fig. 2).
    let nodes: [(f64, f64); 9] = [
        (512.0, 24.0),
        (1_024.0, 22.0),
        (2_048.0, 14.0),
        (4_096.0, 9.0),
        (8_192.0, 14.0),
        (12_288.0, 10.0),
        (16_384.0, 3.5),
        (24_576.0, 1.5),
        (49_152.0, 0.5),
    ];
    let cores: Vec<(f64, f64)> = nodes.iter().map(|&(n, w)| (n * 16.0, w)).collect();
    SystemProfile {
        spec: SystemSpec::mira(),
        n_users: 120,
        user_zipf: 0.9,
        target_load: 0.84,
        // Slightly busier afternoons, no strong peak (Fig. 1b).
        diurnal: diurnal(0.9, 1.1, 12, 24),
        templates_per_user: (2, 6),
        template_zipf: 1.8,
        off_template_prob: 0.04,
        size_dist: boxed(Discrete::new(&cores)),
        // Median 1.5 h, modest spread: "relatively stable" runtimes.
        runtime_dist: boxed(LogNormal::from_median(5_400.0, 1.1)),
        size_runtime_gamma: 0.0,
        runtime_jitter: 0.03,
        walltime: WalltimePolicy::Estimated {
            lo: 1.2,
            hi: 2.5,
            round_to: 900,
            kill_at_limit: 0.5,
        },
        status_mix: StatusMix::new(0.60, 0.12, 0.28),
        // Long Mira jobs are almost certainly killed (paper: ~99 %).
        kill_length_boost: [0.5, 1.0, 200.0],
        pass_size_boost: [1.0, 1.0, 1.0],
        queue_size_adapt: 0.3,
        queue_runtime_adapt: 0.02,
        expected_max_queue: 30,
        fail_early: (0.02, 0.4),
        kill_stretch: (0.7, 1.4),
    }
}

/// Theta: mid-size Cray XC40; large jobs dominate core-hours
/// (small < 16 %, Fig. 2).
#[must_use]
pub fn theta() -> SystemProfile {
    let nodes: [(f64, f64); 9] = [
        (8.0, 20.0),
        (32.0, 15.0),
        (64.0, 12.0),
        (128.0, 12.0),
        (256.0, 8.0),
        (512.0, 10.0),
        (1_024.0, 8.0),
        (2_048.0, 4.0),
        (4_096.0, 2.0),
    ];
    let cores: Vec<(f64, f64)> = nodes.iter().map(|&(n, w)| (n * 64.0, w)).collect();
    SystemProfile {
        spec: SystemSpec::theta(),
        n_users: 150,
        user_zipf: 0.9,
        target_load: 0.87,
        diurnal: diurnal(0.85, 1.15, 12, 24),
        templates_per_user: (2, 6),
        template_zipf: 1.8,
        off_template_prob: 0.05,
        size_dist: boxed(Discrete::new(&cores)),
        runtime_dist: boxed(LogNormal::from_median(3_600.0, 1.2)),
        size_runtime_gamma: 0.0,
        runtime_jitter: 0.03,
        walltime: WalltimePolicy::Estimated {
            lo: 1.2,
            hi: 2.5,
            round_to: 900,
            kill_at_limit: 0.5,
        },
        status_mix: StatusMix::new(0.58, 0.14, 0.28),
        kill_length_boost: [0.5, 1.0, 30.0],
        pass_size_boost: [1.0, 1.0, 1.0],
        queue_size_adapt: 0.4,
        queue_runtime_adapt: 0.02,
        expected_max_queue: 40,
        fail_early: (0.02, 0.4),
        kill_stretch: (0.7, 1.4),
    }
}

/// Blue Waters: the hybrid — DL-density arrivals, tiny median request,
/// extreme runtime spread, near-saturating load (longest waits, Fig. 4).
#[must_use]
pub fn blue_waters() -> SystemProfile {
    // 10 % single-core jobs; the rest log-normal around a 32-core median.
    // ~90 % of jobs request more than 10 cores; small jobs carry > 85 % of
    // core-hours because nothing comes close to 10 % of the machine.
    let size = Mixture::new(vec![
        (0.10, boxed(LogNormal::from_median(1.0, 0.0))),
        (0.90, boxed(LogNormal::from_median(32.0, 1.2))),
    ]);
    // Hybrid runtime: bulk HPC-like (median 1.5 h, wide), a debug-job mode
    // around a minute, and a multi-day tail.
    let runtime = Mixture::new(vec![
        (0.85, boxed(LogNormal::from_median(5_400.0, 1.6))),
        (0.10, boxed(LogNormal::from_median(60.0, 1.0))),
        (0.05, boxed(LogNormal::from_median(129_600.0, 0.8))),
    ]);
    SystemProfile {
        spec: SystemSpec::blue_waters(),
        n_users: 400,
        user_zipf: 0.9,
        target_load: 1.5,
        diurnal: diurnal(0.75, 1.5, 8, 17),
        templates_per_user: (3, 8),
        template_zipf: 1.5,
        off_template_prob: 0.05,
        size_dist: boxed(size),
        runtime_dist: boxed(runtime),
        size_runtime_gamma: 0.0,
        runtime_jitter: 0.035,
        walltime: WalltimePolicy::Estimated {
            lo: 1.2,
            hi: 2.5,
            round_to: 900,
            kill_at_limit: 0.5,
        },
        status_mix: StatusMix::new(0.655, 0.073, 0.272),
        kill_length_boost: [0.5, 1.0, 20.0],
        pass_size_boost: [1.0, 1.0, 1.0],
        queue_size_adapt: 0.5,
        queue_runtime_adapt: 0.02,
        expected_max_queue: 1_500,
        fail_early: (0.02, 0.4),
        kill_stretch: (0.7, 1.4),
    }
}

/// Philly: 80 % single-GPU jobs, 12-minute median runtime with a rare
/// multi-day training tail, 14 virtual clusters, strongest queue adaptation.
#[must_use]
pub fn philly() -> SystemProfile {
    let gpus: [(f64, f64); 9] = [
        (1.0, 80.0),
        (2.0, 6.0),
        (4.0, 5.0),
        (8.0, 4.0),
        (16.0, 2.0),
        (32.0, 1.0),
        (64.0, 0.4),
        (128.0, 0.15),
        (256.0, 0.05),
    ];
    let runtime = Mixture::new(vec![
        (0.996, boxed(LogNormal::from_median(720.0, 1.6))),
        (0.004, boxed(Pareto::new(86_400.0, 1.3))),
    ]);
    SystemProfile {
        spec: SystemSpec::philly(),
        n_users: 250,
        user_zipf: 0.9,
        target_load: 0.55,
        // Inverted pattern: fewer submissions during office hours,
        // max/min ratio ≈ 2.5 (Fig. 1b).
        diurnal: diurnal(1.5, 0.6, 8, 17),
        templates_per_user: (5, 14),
        template_zipf: 1.1,
        off_template_prob: 0.05,
        size_dist: boxed(Discrete::new(&gpus)),
        runtime_dist: boxed(runtime),
        size_runtime_gamma: 0.15,
        runtime_jitter: 0.04,
        walltime: WalltimePolicy::None,
        status_mix: StatusMix::new(0.60, 0.16, 0.24),
        kill_length_boost: [0.6, 1.5, 15.0],
        // Pass rate drops sharply with GPU count (Fig. 7a).
        pass_size_boost: [1.0, 0.6, 0.35],
        queue_size_adapt: 0.9,
        queue_runtime_adapt: 0.6,
        expected_max_queue: 400,
        fail_early: (0.02, 0.4),
        kill_stretch: (0.7, 1.4),
    }
}

/// Helios: 90-second median runtime, strong 10× diurnal peak, GPU requests
/// up to 2048, long jobs dominate core-hours.
#[must_use]
pub fn helios() -> SystemProfile {
    let gpus: [(f64, f64); 12] = [
        (1.0, 80.0),
        (2.0, 4.0),
        (4.0, 4.0),
        (8.0, 4.0),
        (16.0, 3.0),
        (32.0, 2.0),
        (64.0, 1.5),
        (128.0, 0.8),
        (256.0, 0.4),
        (512.0, 0.2),
        (1_024.0, 0.07),
        (2_048.0, 0.03),
    ];
    let runtime = Mixture::new(vec![
        (0.9963, boxed(LogNormal::from_median(90.0, 2.2))),
        (0.0037, boxed(Pareto::new(86_400.0, 1.3))),
    ]);
    SystemProfile {
        spec: SystemSpec::helios(),
        n_users: 400,
        user_zipf: 0.9,
        target_load: 0.55,
        // Pronounced office-hours peak, ~10× max/min (Fig. 1b).
        diurnal: {
            let mut d = [0.2; 24];
            for slot in d.iter_mut().take(10).skip(8) {
                *slot = 0.8;
            }
            for slot in d.iter_mut().take(20).skip(10) {
                *slot = 2.0;
            }
            for slot in d.iter_mut().take(24).skip(20) {
                *slot = 0.5;
            }
            d
        },
        templates_per_user: (5, 14),
        template_zipf: 1.1,
        off_template_prob: 0.05,
        size_dist: boxed(Discrete::new(&gpus)),
        runtime_dist: boxed(runtime),
        size_runtime_gamma: 0.15,
        runtime_jitter: 0.04,
        walltime: WalltimePolicy::None,
        status_mix: StatusMix::new(0.64, 0.13, 0.23),
        kill_length_boost: [0.6, 1.5, 12.0],
        pass_size_boost: [1.0, 0.65, 0.4],
        queue_size_adapt: 0.7,
        queue_runtime_adapt: 0.6,
        expected_max_queue: 250,
        fail_early: (0.02, 0.4),
        kill_stretch: (0.7, 1.4),
    }
}

/// Returns the calibrated profile for a paper system.
///
/// # Panics
/// Panics for [`SystemId::Custom`].
#[must_use]
pub fn profile_for(id: SystemId) -> SystemProfile {
    match id {
        SystemId::Mira => mira(),
        SystemId::Theta => theta(),
        SystemId::BlueWaters => blue_waters(),
        SystemId::Philly => philly(),
        SystemId::Helios => helios(),
        SystemId::Custom => panic!("no canonical profile for SystemId::Custom"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_stats::Rng;

    #[test]
    fn arrival_gaps_land_in_the_right_regime() {
        // HPC systems arrive minutes apart; BW/DL systems arrive seconds
        // apart — the paper's 10×+ density split (Fig. 1b).
        let gap = |p: &SystemProfile| p.calibrated_arrival_gap(1);
        let (m, t, b, ph, he) = (
            gap(&mira()),
            gap(&theta()),
            gap(&blue_waters()),
            gap(&philly()),
            gap(&helios()),
        );
        assert!(m > 200.0, "Mira gap {m}");
        assert!(t > 200.0, "Theta gap {t}");
        assert!(b < 30.0, "Blue Waters gap {b}");
        assert!(ph < 60.0, "Philly gap {ph}");
        assert!(he < 60.0, "Helios gap {he}");
        assert!(m > 10.0 * b, "HPC/hybrid density split");
    }

    #[test]
    fn dl_systems_are_mostly_single_gpu() {
        for p in [philly(), helios()] {
            let mut rng = Rng::new(2);
            let single = (0..20_000)
                .filter(|_| p.sample_procs(&mut rng) == 1)
                .count() as f64
                / 20_000.0;
            assert!(
                (0.75..=0.85).contains(&single),
                "{}: single-GPU fraction {single}",
                p.spec.name
            );
        }
    }

    #[test]
    fn mira_jobs_all_exceed_1000_cores() {
        let p = mira();
        let mut rng = Rng::new(3);
        for _ in 0..5_000 {
            assert!(p.sample_procs(&mut rng) > 1_000);
        }
    }

    #[test]
    fn runtime_medians_follow_the_paper_ordering() {
        // Mira/BW ≈ 1.5 h ≫ Philly ≈ 12 min ≫ Helios ≈ 90 s.
        let med = |p: &SystemProfile, seed| {
            let mut rng = Rng::new(seed);
            let mut xs: Vec<f64> = (0..40_001)
                .map(|_| p.sample_base_runtime(&mut rng, 1))
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        let m = med(&mira(), 4);
        let ph = med(&philly(), 5);
        let he = med(&helios(), 6);
        assert!((4_000.0..7_000.0).contains(&m), "Mira median {m}");
        assert!((400.0..1_100.0).contains(&ph), "Philly median {ph}");
        assert!((50.0..150.0).contains(&he), "Helios median {he}");
    }

    #[test]
    fn helios_diurnal_peak_is_strong() {
        let d = helios().normalized_diurnal();
        let max = d.iter().cloned().fold(f64::MIN, f64::max);
        let min = d.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min >= 8.0, "Helios peak ratio {}", max / min);
        let dp = philly().normalized_diurnal();
        let maxp = dp.iter().cloned().fold(f64::MIN, f64::max);
        let minp = dp.iter().cloned().fold(f64::MAX, f64::min);
        assert!(maxp / minp <= 3.0, "Philly ratio {}", maxp / minp);
    }

    #[test]
    fn philly_is_the_only_partitioned_system() {
        assert_eq!(philly().spec.virtual_clusters, 14);
        for p in [mira(), theta(), blue_waters(), helios()] {
            assert_eq!(p.spec.virtual_clusters, 1);
        }
    }

    #[test]
    fn hpc_systems_have_walltimes_dl_systems_do_not() {
        for p in [mira(), theta(), blue_waters()] {
            assert!(matches!(p.walltime, WalltimePolicy::Estimated { .. }));
        }
        for p in [philly(), helios()] {
            assert!(matches!(p.walltime, WalltimePolicy::None));
        }
    }

    #[test]
    fn every_profile_passes_under_70_percent() {
        for p in [mira(), theta(), blue_waters(), philly(), helios()] {
            let total = p.status_mix.pass + p.status_mix.fail + p.status_mix.kill;
            assert!(p.status_mix.pass / total < 0.71, "{}", p.spec.name);
        }
    }
}
