//! Behavioural user models.
//!
//! The paper's §V observations are *per-user* regularities: users resubmit a
//! small set of application configurations (Fig. 8), adapt request size and
//! runtime to queue pressure (Figs. 9–10), and show status-dependent runtime
//! signatures (Fig. 11). [`UserPool`] encodes those regularities explicitly.

use lumos_core::UserId;
use lumos_stats::Rng;
use rayon::prelude::*;

use crate::profile::SystemProfile;

/// One application configuration a user repeatedly submits:
/// a fixed resource request and a characteristic runtime.
///
/// Failure behaviour is also a property of the *application*, not the
/// submission: a buggy config crashes at the same point every time it is
/// rerun. `fail_factor` / `kill_factor` pin each template's characteristic
/// early-failure point and kill stretch, which keeps failed reruns inside
/// the same Fig. 8 resource-configuration group and gives the per-user
/// violins of Fig. 11 their separated modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Template {
    /// Resource units the application always requests.
    pub procs: u64,
    /// Characteristic runtime in seconds (per-submission jitter is applied
    /// on top, small enough to stay within the Fig. 8 10 % grouping rule).
    pub base_runtime: f64,
    /// Fraction of the base runtime at which this application fails when it
    /// fails (drawn once from the profile's `fail_early` range).
    pub fail_factor: f64,
    /// Runtime multiplier when this application gets killed mid-run (drawn
    /// once from the profile's `kill_stretch` range).
    pub kill_factor: f64,
    /// Walltime over-estimation factor this application is always submitted
    /// with (users copy job scripts, so the same app gets the same request).
    pub walltime_factor: f64,
}

/// A user: an activity weight, an optional virtual-cluster binding, and a
/// Zipf-popular menu of application templates.
#[derive(Debug, Clone, PartialEq)]
pub struct UserModel {
    /// Trace-unique id.
    pub id: UserId,
    /// Relative submission weight (Zipf over the pool).
    pub weight: f64,
    /// Virtual cluster the user's jobs run in (`None` on unpartitioned
    /// systems).
    pub virtual_cluster: Option<u16>,
    templates: Vec<Template>,
    /// Cumulative template weights for O(log n) selection.
    cum_weights: Vec<f64>,
    /// Index of the smallest-`procs` template (the congestion fallback).
    smallest: usize,
    /// Index of the shortest-runtime template (the DL congestion fallback).
    shortest: usize,
}

impl UserModel {
    /// Builds a user with `n` templates drawn from the profile's size and
    /// runtime distributions, popularity-ranked by `template_zipf`.
    fn build(
        id: UserId,
        weight: f64,
        vc: Option<u16>,
        profile: &SystemProfile,
        rng: &mut Rng,
    ) -> Self {
        let (lo, hi) = profile.templates_per_user;
        let n = lo + rng.index(hi - lo + 1);
        let mut templates = Vec::with_capacity(n);
        for _ in 0..n {
            let procs = profile.sample_procs(rng);
            let base_runtime = profile.sample_base_runtime(rng, procs);
            let (flo, fhi) = profile.fail_early;
            let (klo, khi) = profile.kill_stretch;
            let walltime_factor = match profile.walltime {
                crate::profile::WalltimePolicy::Estimated { lo, hi, .. } => {
                    lo + (hi - lo) * rng.next_f64()
                }
                crate::profile::WalltimePolicy::None => 1.5,
            };
            templates.push(Template {
                procs,
                base_runtime,
                fail_factor: flo + (fhi - flo) * rng.next_f64(),
                kill_factor: klo + (khi - klo) * rng.next_f64(),
                walltime_factor,
            });
        }
        let mut cum_weights = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(profile.template_zipf);
            cum_weights.push(acc);
        }
        // Smallest = fewest units, ties broken by shortest runtime: the
        // configuration a user reaches for when the queue is congested.
        let smallest = templates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (a.procs, a.base_runtime)
                    .partial_cmp(&(b.procs, b.base_runtime))
                    .expect("finite runtimes")
            })
            .map(|(i, _)| i)
            .expect("at least one template");
        let shortest = templates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.base_runtime
                    .partial_cmp(&b.base_runtime)
                    .expect("finite runtimes")
            })
            .map(|(i, _)| i)
            .expect("at least one template");
        Self {
            id,
            weight,
            virtual_cluster: vc,
            templates,
            cum_weights,
            smallest,
            shortest,
        }
    }

    /// Number of templates.
    #[must_use]
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Template list (popularity-ranked: index 0 is the favourite).
    #[must_use]
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Picks a template by Zipf popularity.
    #[must_use]
    pub fn pick_template(&self, rng: &mut Rng) -> &Template {
        let total = *self.cum_weights.last().expect("non-empty");
        let x = rng.next_f64() * total;
        let idx = match self
            .cum_weights
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.templates.len() - 1),
        };
        &self.templates[idx]
    }

    /// The user's smallest template — what they fall back to when the queue
    /// is congested (§V.B).
    #[must_use]
    pub fn smallest_template(&self) -> &Template {
        &self.templates[self.smallest]
    }

    /// The user's shortest template — the DL fallback under congestion
    /// (Fig. 10: DL users submit shorter jobs when the system is busy).
    /// Reusing a *real* template (rather than scaling runtimes) keeps the
    /// Fig. 8 resource-configuration groups intact.
    #[must_use]
    pub fn shortest_template(&self) -> &Template {
        &self.templates[self.shortest]
    }

    /// Expected per-job demand (core-seconds) under this user's template
    /// popularity: `Σ P(template) × weight(template)` where `weight` is the
    /// caller-supplied demand function.
    #[must_use]
    pub fn expected_demand(&self, demand: impl Fn(&Template) -> f64) -> f64 {
        let total = *self.cum_weights.last().expect("non-empty");
        let mut prev = 0.0;
        let mut acc = 0.0;
        for (t, &cw) in self.templates.iter().zip(&self.cum_weights) {
            acc += (cw - prev) / total * demand(t);
            prev = cw;
        }
        acc
    }
}

/// The full user population of one synthetic system.
#[derive(Debug, Clone, PartialEq)]
pub struct UserPool {
    users: Vec<UserModel>,
    cum_weights: Vec<f64>,
}

impl UserPool {
    /// Builds `profile.n_users` users. On partitioned systems users are
    /// assigned to virtual clusters in contiguous blocks, so the heaviest
    /// users (Zipf rank 0, 1, …) land together in the first cluster. That
    /// concentration is what produces Philly's pathology — jobs queueing in
    /// one overloaded virtual cluster while GPUs idle in others (§III.B).
    #[must_use]
    pub fn build(profile: &SystemProfile, rng: &mut Rng) -> Self {
        let n = profile.n_users.max(1);
        let vcs = profile.spec.virtual_clusters;
        let block = n.div_ceil(usize::from(vcs.max(1)));
        // Each user draws from an index-keyed fork of the pool rng, so users
        // can be built in parallel on the shared thread pool (the same pool
        // that runs the per-system sweep) while staying byte-identical to a
        // sequential build at any thread count.
        let rng = &*rng;
        let users: Vec<UserModel> = (0..n)
            .into_par_iter()
            .map(|i| {
                let weight = 1.0 / ((i + 1) as f64).powf(profile.user_zipf);
                let vc = (vcs > 1).then(|| ((i / block) as u16).min(vcs - 1));
                let mut child = rng.fork(i as u64);
                UserModel::build(i as UserId, weight, vc, profile, &mut child)
            })
            .collect();
        let mut cum_weights = Vec::with_capacity(n);
        let mut acc = 0.0;
        for u in &users {
            acc += u.weight;
            cum_weights.push(acc);
        }
        Self { users, cum_weights }
    }

    /// Number of users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the pool is empty (never, after `build`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// All users.
    #[must_use]
    pub fn users(&self) -> &[UserModel] {
        &self.users
    }

    /// Expected per-job demand (core-seconds) across the whole pool: the
    /// user-activity-weighted mean of each user's template-weighted demand.
    /// This is what the arrival-rate calibration must use — with
    /// heavy-tailed size/runtime distributions the realised pool mean is
    /// nowhere near the distribution mean, so calibrating against the
    /// distributions directly would miss the utilization target by an order
    /// of magnitude.
    #[must_use]
    pub fn expected_demand(&self, demand: impl Fn(&Template) -> f64 + Copy) -> f64 {
        let total = *self.cum_weights.last().expect("non-empty pool");
        let mut prev = 0.0;
        let mut acc = 0.0;
        for (u, &cw) in self.users.iter().zip(&self.cum_weights) {
            acc += (cw - prev) / total * u.expected_demand(demand);
            prev = cw;
        }
        acc
    }

    /// Picks a submitting user by Zipf activity weight.
    #[must_use]
    pub fn pick(&self, rng: &mut Rng) -> &UserModel {
        let total = *self.cum_weights.last().expect("non-empty pool");
        let x = rng.next_f64() * total;
        let idx = match self
            .cum_weights
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.users.len() - 1),
        };
        &self.users[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;
    use lumos_core::SystemId;

    fn pool(id: SystemId, seed: u64) -> UserPool {
        let profile = systems::profile_for(id);
        let mut rng = Rng::new(seed);
        UserPool::build(&profile, &mut rng)
    }

    #[test]
    fn pool_size_matches_profile() {
        let p = pool(SystemId::Theta, 1);
        assert_eq!(p.len(), systems::profile_for(SystemId::Theta).n_users);
    }

    #[test]
    fn heavy_users_are_picked_more_often() {
        let p = pool(SystemId::Mira, 2);
        let mut rng = Rng::new(3);
        let mut count0 = 0;
        let mut count_last = 0;
        for _ in 0..50_000 {
            let u = p.pick(&mut rng);
            if u.id == 0 {
                count0 += 1;
            }
            if u.id as usize == p.len() - 1 {
                count_last += 1;
            }
        }
        assert!(count0 > 5 * count_last.max(1), "{count0} vs {count_last}");
    }

    #[test]
    fn template_popularity_is_skewed() {
        let p = pool(SystemId::BlueWaters, 4);
        let user = &p.users()[0];
        let mut rng = Rng::new(5);
        let mut first = 0;
        let n = 20_000;
        for _ in 0..n {
            if std::ptr::eq(user.pick_template(&mut rng), &user.templates()[0]) {
                first += 1;
            }
        }
        // The favourite template must dominate.
        assert!(
            first as f64 / n as f64 > 1.5 / user.template_count() as f64,
            "favourite share {}",
            first as f64 / n as f64
        );
    }

    #[test]
    fn philly_users_span_all_virtual_clusters() {
        let p = pool(SystemId::Philly, 6);
        let mut vcs: Vec<u16> = p
            .users()
            .iter()
            .map(|u| u.virtual_cluster.expect("Philly users are VC-bound"))
            .collect();
        vcs.sort_unstable();
        vcs.dedup();
        assert_eq!(vcs.len(), 14);
    }

    #[test]
    fn unpartitioned_systems_have_no_vc() {
        let p = pool(SystemId::Helios, 7);
        assert!(p.users().iter().all(|u| u.virtual_cluster.is_none()));
    }

    #[test]
    fn smallest_template_is_minimal() {
        let p = pool(SystemId::Philly, 8);
        for u in p.users() {
            let min = u.templates().iter().map(|t| t.procs).min().unwrap();
            assert_eq!(u.smallest_template().procs, min);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = pool(SystemId::Helios, 42);
        let b = pool(SystemId::Helios, 42);
        assert_eq!(a, b);
    }
}
