//! [`SystemProfile`] — the complete behavioural parameterisation of one
//! system's workload.
//!
//! Every distributional fact the paper reports about a system maps to one
//! field here; `systems.rs` instantiates the five calibrated profiles.

use lumos_core::SystemSpec;
use lumos_stats::dist::Sampler;
use lumos_stats::Rng;

/// Base Passed / Failed / Killed weights before geometry conditioning
/// (paper §IV: every system passes < 70 % of jobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatusMix {
    /// Weight of Passed.
    pub pass: f64,
    /// Weight of Failed.
    pub fail: f64,
    /// Weight of Killed.
    pub kill: f64,
}

impl StatusMix {
    /// Creates a mix; weights need not sum to 1.
    ///
    /// # Panics
    /// Panics on negative or all-zero weights.
    #[must_use]
    pub fn new(pass: f64, fail: f64, kill: f64) -> Self {
        assert!(pass >= 0.0 && fail >= 0.0 && kill >= 0.0, "negative weight");
        assert!(pass + fail + kill > 0.0, "all-zero status mix");
        Self { pass, fail, kill }
    }
}

/// How user walltime estimates are produced (HPC systems only; the DL traces
/// carry no walltimes, which is why Table II is HPC-only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalltimePolicy {
    /// No walltimes in the trace (Philly, Helios).
    None,
    /// Walltime = runtime × U(lo, hi), rounded up to `round_to` seconds.
    /// Killed jobs hit their walltime with probability `kill_at_limit`.
    Estimated {
        /// Lower bound of the over-estimation factor.
        lo: f64,
        /// Upper bound of the over-estimation factor.
        hi: f64,
        /// Rounding granularity in seconds (e.g. 900 = 15 min).
        round_to: i64,
        /// Probability that a Killed job was killed *by* the walltime limit
        /// (runtime == walltime).
        kill_at_limit: f64,
    },
}

/// Multipliers applied to the Killed weight by intended length class
/// (short, middle, long). Mira's `long` multiplier is huge: the paper
/// observes ~99 % of its long jobs are eventually killed.
pub type LengthBoost = [f64; 3];

/// Multipliers applied to the Passed weight by size class (small, middle,
/// large). On Philly/Helios the pass rate drops sharply with size; on the
/// HPC systems size is irrelevant to status (paper Fig. 7a).
pub type SizeBoost = [f64; 3];

/// The full behavioural parameterisation of one system's workload.
pub struct SystemProfile {
    /// Static system description.
    pub spec: SystemSpec,
    /// Number of distinct users to simulate.
    pub n_users: usize,
    /// Zipf exponent for user activity (larger ⇒ heavier heavy-users).
    pub user_zipf: f64,
    /// Fraction of machine capacity the offered load targets (drives
    /// utilization, Fig. 3, and queue depth, Figs. 9/10).
    pub target_load: f64,
    /// Relative arrival intensity per local hour (24 entries, any positive
    /// scale; normalised internally). Encodes the diurnal shapes of Fig. 1b.
    pub diurnal: [f64; 24],
    /// Inclusive range of per-user application templates. Few templates ⇒
    /// highly repeated users (Fig. 8).
    pub templates_per_user: (usize, usize),
    /// Zipf exponent for within-user template popularity. Higher ⇒ the top
    /// 3 groups cover more of the user's jobs.
    pub template_zipf: f64,
    /// Probability a submission ignores the user's templates entirely
    /// (ad-hoc one-off job).
    pub off_template_prob: f64,
    /// Sampler over resource units (cores or GPUs) for template creation.
    pub size_dist: Box<dyn Sampler + Send + Sync>,
    /// Sampler over base runtimes (seconds) for template creation.
    pub runtime_dist: Box<dyn Sampler + Send + Sync>,
    /// Exponent coupling runtime to size (`runtime × procs^gamma`); positive
    /// on DL systems, where multi-GPU jobs are long training runs.
    pub size_runtime_gamma: f64,
    /// Log-normal σ of within-template runtime jitter. Must stay ≲ 0.05 so
    /// repeats land within 10 % of the group mean (the Fig. 8 grouping rule).
    pub runtime_jitter: f64,
    /// Walltime production rule.
    pub walltime: WalltimePolicy,
    /// Base status weights.
    pub status_mix: StatusMix,
    /// Killed-weight multiplier per intended length class.
    pub kill_length_boost: LengthBoost,
    /// Passed-weight multiplier per size class.
    pub pass_size_boost: SizeBoost,
    /// Strength of "submit smaller jobs when the queue is long"
    /// (probability scale, multiplied by queue fraction).
    pub queue_size_adapt: f64,
    /// Strength of "submit shorter jobs when the queue is long"
    /// (runtime shrink factor scale; ≈ 0 on HPC systems, Fig. 10).
    pub queue_runtime_adapt: f64,
    /// Queue length treated as "fully congested" when computing the queue
    /// fraction during generation.
    pub expected_max_queue: usize,
    /// Runtime multiplier range for Failed jobs (they die early, which is
    /// why Failed core-hours undershoot Failed job counts, Fig. 6).
    pub fail_early: (f64, f64),
    /// Runtime multiplier range for Killed jobs relative to intent.
    pub kill_stretch: (f64, f64),
}

impl SystemProfile {
    /// Estimates the mean per-job demand (`procs × runtime` in
    /// core-seconds) by Monte Carlo over the *unconditioned* template
    /// distributions, then derives the mean arrival gap that hits
    /// [`Self::target_load`] on this system.
    ///
    /// The estimate deliberately ignores status conditioning (failed jobs
    /// running short, kills stretching) — those effects roughly cancel and
    /// calibration tests in `systems.rs` pin the realised utilization.
    #[must_use]
    pub fn calibrated_arrival_gap(&self, seed: u64) -> f64 {
        let mut rng = Rng::new(seed ^ 0xCA11_B0A7);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let procs = self.sample_procs(&mut rng);
            let runtime = self.sample_base_runtime(&mut rng, procs);
            total += procs as f64 * runtime;
        }
        let mean_demand = total / n as f64;
        let capacity = self.spec.total_units as f64;
        mean_demand / (self.target_load * capacity)
    }

    /// Expected multiplier on a template's base runtime once the status
    /// model is applied: failed jobs die early, killed jobs stretch toward
    /// (or hit) their walltime. Used by the arrival-rate calibration so the
    /// offered load accounts for status-conditioned runtimes.
    #[must_use]
    pub fn expected_status_runtime_factor(&self, procs: u64, base_runtime: f64) -> f64 {
        use lumos_core::{LengthClass, SizeClass};
        let size = SizeClass::classify(procs, &self.spec);
        let length = LengthClass::classify(base_runtime as i64);
        let pass_w = self.status_mix.pass * self.pass_size_boost[size as usize];
        let fail_w = self.status_mix.fail;
        let kill_w = self.status_mix.kill * self.kill_length_boost[length as usize];
        let total = pass_w + fail_w + kill_w;
        let fail_factor = 0.5 * (self.fail_early.0 + self.fail_early.1);
        let kill_factor = match self.walltime {
            WalltimePolicy::Estimated {
                lo,
                hi,
                kill_at_limit,
                ..
            } => {
                let at_limit = 0.5 * (lo + hi);
                let stretched = 0.5 * (self.kill_stretch.0 + self.kill_stretch.1);
                kill_at_limit * at_limit + (1.0 - kill_at_limit) * stretched
            }
            WalltimePolicy::None => 0.5 * (self.kill_stretch.0 + self.kill_stretch.1),
        };
        (pass_w + fail_w * fail_factor + kill_w * kill_factor) / total
    }

    /// Draws a template size (resource units), clamped to the machine.
    #[must_use]
    pub fn sample_procs(&self, rng: &mut Rng) -> u64 {
        let raw = self.size_dist.sample(rng).round();
        (raw.max(1.0) as u64).min(self.spec.total_units)
    }

    /// Draws a template base runtime (seconds ≥ 1) for a job of `procs`
    /// units, applying the size-runtime coupling.
    #[must_use]
    pub fn sample_base_runtime(&self, rng: &mut Rng, procs: u64) -> f64 {
        let base = self.runtime_dist.sample(rng);
        let coupled = base * (procs as f64).powf(self.size_runtime_gamma);
        coupled.clamp(1.0, 60.0 * 86_400.0)
    }

    /// Normalised diurnal intensity: entries scaled so the mean is 1.
    #[must_use]
    pub fn normalized_diurnal(&self) -> [f64; 24] {
        let sum: f64 = self.diurnal.iter().sum();
        assert!(sum > 0.0, "diurnal weights must have positive sum");
        let mean = sum / 24.0;
        let mut out = [0.0; 24];
        for (o, &d) in out.iter_mut().zip(&self.diurnal) {
            assert!(d >= 0.0, "negative diurnal weight");
            *o = d / mean;
        }
        out
    }
}

impl std::fmt::Debug for SystemProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemProfile")
            .field("system", &self.spec.name)
            .field("n_users", &self.n_users)
            .field("target_load", &self.target_load)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;
    use lumos_core::SystemId;

    #[test]
    fn calibrated_gap_scales_inversely_with_load() {
        let mut hi = systems::profile_for(SystemId::Theta);
        let gap_base = hi.calibrated_arrival_gap(1);
        hi.target_load *= 2.0;
        let gap_double = hi.calibrated_arrival_gap(1);
        assert!((gap_base / gap_double - 2.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_diurnal_has_unit_mean() {
        let p = systems::profile_for(SystemId::Helios);
        let d = p.normalized_diurnal();
        let mean: f64 = d.iter().sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_procs_respect_capacity() {
        let p = systems::profile_for(SystemId::Philly);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let procs = p.sample_procs(&mut rng);
            assert!(procs >= 1 && procs <= p.spec.total_units);
        }
    }

    #[test]
    fn sampled_runtimes_are_clamped() {
        let p = systems::profile_for(SystemId::Helios);
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            let r = p.sample_base_runtime(&mut rng, 1);
            assert!((1.0..=60.0 * 86_400.0).contains(&r));
        }
    }

    #[test]
    fn status_mix_rejects_bad_weights() {
        let ok = StatusMix::new(0.6, 0.1, 0.3);
        assert!((ok.pass - 0.6).abs() < 1e-12);
        assert!(std::panic::catch_unwind(|| StatusMix::new(0.0, 0.0, 0.0)).is_err());
    }
}
