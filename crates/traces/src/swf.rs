//! Standard Workload Format (SWF) I/O.
//!
//! The Parallel Workloads Archive distributes traces (including ones for
//! systems studied by the paper) in SWF: one job per line, 18 whitespace-
//! separated integer fields, `;`-prefixed header comments. This module
//! reads SWF text into [`Trace`] and writes traces back out, so real traces
//! can replace the synthetic generators everywhere in the workspace.
//!
//! Field mapping (1-based SWF field → [`Job`]):
//!
//! | SWF | Meaning            | Job field |
//! |-----|--------------------|-----------|
//! | 1   | job number         | `id`      |
//! | 2   | submit time        | `submit`  |
//! | 3   | wait time          | `wait` (−1 ⇒ `None`) |
//! | 4   | run time           | `runtime` (−1 ⇒ 0) |
//! | 5   | allocated procs    | `procs` (falls back to field 8) |
//! | 8   | requested procs    | fallback for `procs` |
//! | 9   | requested time     | `walltime` (−1 ⇒ `None`) |
//! | 11  | status             | 1 ⇒ Passed, 5 ⇒ Killed, else Failed |
//! | 12  | user id            | `user` |
//! | 16  | partition          | `virtual_cluster` (−1 ⇒ `None`) |
//!
//! [`Trace`]: lumos_core::Trace
//! [`Job`]: lumos_core::Job

use lumos_core::{CoreError, Job, JobStatus, Result, SystemSpec, Trace};

/// Parses SWF text into a trace running on `system`.
///
/// A `MaxProcs:` header comment, when present, overrides
/// `system.total_units` so capacity checks match the archive's metadata.
///
/// # Errors
/// Returns [`CoreError::Parse`] for malformed lines, carrying the 1-based
/// physical line number and the offending field. Per-job validation
/// failures from [`Trace::new`] (oversized requests, negative times) are
/// wrapped into [`CoreError::Parse`] too, pointing at the line that
/// defined the job.
pub fn parse(text: &str, system: SystemSpec) -> Result<Trace> {
    let mut system = system;
    let mut jobs = Vec::new();
    let mut line_of = std::collections::HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            if let Some(v) = header_value(comment, "MaxProcs") {
                system.total_units = v;
            }
            if let Some(v) = header_value(comment, "MaxNodes") {
                system.total_nodes = v as u32;
            }
            continue;
        }
        let job = parse_line(line, lineno + 1, &system)?;
        line_of.entry(job.id).or_insert(lineno + 1);
        jobs.push(job);
    }
    // A header override can make total_units exceed the node count the spec
    // was built with; grow the node count to keep the spec self-consistent.
    let derived = u64::from(system.total_nodes) * u64::from(system.units_per_node);
    if system.total_units > derived {
        system.total_nodes = system
            .total_units
            .div_ceil(u64::from(system.units_per_node))
            .min(u64::from(u32::MAX)) as u32;
    }
    Trace::new(system, jobs).map_err(|e| {
        // Point job-validation failures back at the offending SWF line.
        let job = match &e {
            CoreError::OversizedJob { job, .. } | CoreError::InvalidTime { job, .. } => Some(*job),
            _ => None,
        };
        match job.and_then(|id| line_of.get(&id).copied()) {
            Some(line) => CoreError::Parse {
                line,
                message: e.to_string(),
            },
            None => e,
        }
    })
}

fn header_value(comment: &str, key: &str) -> Option<u64> {
    let rest = comment.trim().strip_prefix(key)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    rest.split_whitespace().next()?.parse().ok()
}

fn parse_line(line: &str, lineno: usize, system: &SystemSpec) -> Result<Job> {
    let fields: Vec<i64> = line
        .split_whitespace()
        .enumerate()
        .map(|(i, f)| {
            f.parse::<i64>().map_err(|_| CoreError::Parse {
                line: lineno,
                message: format!("field {}: non-integer value `{f}`", i + 1),
            })
        })
        .collect::<Result<_>>()?;
    if fields.len() < 12 {
        return Err(CoreError::Parse {
            line: lineno,
            message: format!("expected ≥12 fields, found {}", fields.len()),
        });
    }
    if fields.len() > 18 {
        return Err(CoreError::Parse {
            line: lineno,
            message: format!("expected ≤18 fields, found {}", fields.len()),
        });
    }
    if fields[0] < 0 {
        return Err(CoreError::Parse {
            line: lineno,
            message: format!("negative job number {}", fields[0]),
        });
    }
    if fields[1] < 0 {
        return Err(CoreError::Parse {
            line: lineno,
            message: format!("negative submit time {}", fields[1]),
        });
    }

    let alloc = fields[4];
    let requested = fields[7];
    let procs = if alloc > 0 {
        alloc
    } else if requested > 0 {
        requested
    } else {
        return Err(CoreError::Parse {
            line: lineno,
            message: "no positive processor count in fields 5 or 8".into(),
        });
    } as u64;

    let status = match fields[10] {
        1 => JobStatus::Passed,
        5 => JobStatus::Killed,
        _ => JobStatus::Failed,
    };

    let units_per_node = u64::from(system.units_per_node).max(1);
    let partition = fields.get(15).copied().unwrap_or(-1);

    Ok(Job {
        id: fields[0] as u64,
        user: fields[11].max(0) as u32,
        submit: fields[1],
        wait: (fields[2] >= 0).then_some(fields[2]),
        runtime: fields[3].max(0),
        walltime: (fields[8] > 0).then_some(fields[8]),
        procs,
        nodes: procs.div_ceil(units_per_node).max(1) as u32,
        status,
        virtual_cluster: (partition >= 0).then_some(partition as u16),
    })
}

/// Serialises a trace to SWF text, including a small header.
#[must_use]
pub fn write(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(trace.len() * 64 + 256);
    let _ = writeln!(out, "; Computer: {}", trace.system.name);
    let _ = writeln!(out, "; MaxNodes: {}", trace.system.total_nodes);
    let _ = writeln!(out, "; MaxProcs: {}", trace.system.total_units);
    let _ = writeln!(out, "; Note: written by lumos-traces");
    for j in trace.jobs() {
        let status = match j.status {
            JobStatus::Passed => 1,
            JobStatus::Failed => 0,
            JobStatus::Killed => 5,
        };
        let _ = writeln!(
            out,
            "{} {} {} {} {} -1 -1 {} {} -1 {} {} -1 -1 -1 {} -1 -1",
            j.id,
            j.submit,
            j.wait.unwrap_or(-1),
            j.runtime,
            j.procs,
            j.procs,
            j.walltime.unwrap_or(-1),
            status,
            j.user,
            j.virtual_cluster.map_or(-1, i64::from),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::SystemId;

    fn sys() -> SystemSpec {
        SystemSpec::theta()
    }

    #[test]
    fn parses_minimal_line() {
        let text = "1 100 5 3600 64 -1 -1 64 7200 -1 1 3 -1 -1 -1 -1 -1 -1\n";
        let t = parse(text, sys()).unwrap();
        assert_eq!(t.len(), 1);
        let j = &t.jobs()[0];
        assert_eq!(j.id, 1);
        assert_eq!(j.submit, 100);
        assert_eq!(j.wait, Some(5));
        assert_eq!(j.runtime, 3600);
        assert_eq!(j.procs, 64);
        assert_eq!(j.walltime, Some(7200));
        assert_eq!(j.status, JobStatus::Passed);
        assert_eq!(j.user, 3);
        assert_eq!(j.virtual_cluster, None);
    }

    #[test]
    fn status_codes_map_to_trichotomy() {
        let mk = |code: i64| {
            let text = format!("1 0 0 10 1 -1 -1 1 -1 -1 {code} 1 -1 -1 -1 -1 -1 -1");
            parse(&text, sys()).unwrap().jobs()[0].status
        };
        assert_eq!(mk(1), JobStatus::Passed);
        assert_eq!(mk(5), JobStatus::Killed);
        assert_eq!(mk(0), JobStatus::Failed);
        assert_eq!(mk(-1), JobStatus::Failed);
    }

    #[test]
    fn header_maxprocs_overrides_capacity() {
        let text = "; MaxProcs: 999999\n1 0 0 10 500000 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n";
        let t = parse(text, sys()).unwrap();
        assert_eq!(t.system.total_units, 999_999);
        assert_eq!(t.jobs()[0].procs, 500_000);
    }

    #[test]
    fn negative_wait_becomes_none() {
        let text = "1 0 -1 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1";
        let t = parse(text, sys()).unwrap();
        assert_eq!(t.jobs()[0].wait, None);
    }

    #[test]
    fn falls_back_to_requested_procs() {
        let text = "1 0 0 10 -1 -1 -1 128 -1 -1 1 1 -1 -1 -1 -1 -1 -1";
        let t = parse(text, sys()).unwrap();
        assert_eq!(t.jobs()[0].procs, 128);
    }

    #[test]
    fn rejects_short_lines() {
        let err = parse("1 2 3", sys()).unwrap_err();
        assert!(matches!(err, CoreError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_garbage_fields() {
        let err = parse("1 0 0 ten 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1", sys()).unwrap_err();
        assert!(matches!(err, CoreError::Parse { .. }));
    }

    #[test]
    fn garbage_fields_are_named_by_position() {
        // `ten` is the 4th whitespace-separated field (SWF run time).
        let err = parse("1 0 0 ten 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1", sys()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "no line context: {msg}");
        assert!(msg.contains("field 4"), "no field context: {msg}");
        assert!(msg.contains("`ten`"), "offending value not shown: {msg}");
    }

    #[test]
    fn job_validation_errors_point_at_the_offending_line() {
        // Line 3's job requests more than the MaxProcs capacity.
        let text = "; MaxProcs: 100\n\
                    1 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n\
                    2 5 0 10 500 -1 -1 500 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n";
        let err = parse(text, sys()).unwrap_err();
        match &err {
            CoreError::Parse { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("job 2"), "job not named: {message}");
                assert!(message.contains("500"), "request not shown: {message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_overlong_lines() {
        let err = parse(
            "1 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1 99 99",
            sys(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_negative_submit_and_id() {
        let neg_submit = "1 -5 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1";
        let err = parse(neg_submit, sys()).unwrap_err();
        assert!(err.to_string().contains("negative submit time"));
        let neg_id = "-2 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1";
        let err = parse(neg_id, sys()).unwrap_err();
        assert!(err.to_string().contains("negative job number"));
    }

    #[test]
    fn errors_carry_the_physical_line_number() {
        // Comments and blank lines still count toward line numbering.
        let text = "; Computer: X\n\n1 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\nbogus line\n";
        let err = parse(text, sys()).unwrap_err();
        match err {
            CoreError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handles_crlf_and_stray_whitespace() {
        let text = "; Computer: X\r\n  1 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1  \r\n";
        let t = parse(text, sys()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.jobs()[0].runtime, 10);
    }

    #[test]
    fn empty_input_is_an_empty_trace_error() {
        assert!(matches!(
            parse("; only comments\n", sys()).unwrap_err(),
            CoreError::EmptyTrace
        ));
    }

    #[test]
    fn roundtrip_preserves_jobs() {
        let profile = crate::systems::profile_for(SystemId::Theta);
        let trace = crate::Generator::new(
            profile,
            crate::GeneratorConfig {
                seed: 11,
                span_days: 1,
                ..Default::default()
            },
        )
        .generate();
        let text = write(&trace);
        let back = parse(&text, SystemSpec::theta()).unwrap();
        assert_eq!(trace.len(), back.len());
        for (a, b) in trace.jobs().iter().zip(back.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.procs, b.procs);
            assert_eq!(a.status, b.status);
            assert_eq!(a.user, b.user);
            assert_eq!(a.walltime, b.walltime);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            "; Computer: X\n\n; UnixStartTime: 0\n1 0 0 10 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1\n";
        assert_eq!(parse(text, sys()).unwrap().len(), 1);
    }
}
