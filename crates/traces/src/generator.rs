//! The behavioural trace generator.
//!
//! Couples four processes into one deterministic stream:
//!
//! 1. a **diurnally-modulated Poisson arrival process** (thinning),
//! 2. a **Zipf user population** with per-user application templates
//!    ([`crate::user::UserPool`]),
//! 3. a **live FCFS backlog model** ([`crate::queue::FeedbackQueue`]) whose
//!    congestion signal modulates what users submit (paper §V.B), and
//! 4. a **status model** conditioning Passed/Failed/Killed on the job's
//!    intended geometry (paper §IV) and then re-conditioning runtime on the
//!    drawn status (failed jobs die early; some killed jobs hit their
//!    walltime).

use lumos_core::{Job, JobStatus, LengthClass, SizeClass, SystemKind, Timestamp, Trace};
use lumos_stats::Rng;

use crate::profile::{SystemProfile, WalltimePolicy};
use crate::queue::FeedbackCluster;
use crate::user::UserPool;

/// Generation knobs independent of the system profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Master seed: fully determines the trace.
    pub seed: u64,
    /// Trace window length in days.
    pub span_days: u32,
    /// Multiplier on the profile's `target_load` (ablation knob).
    pub load_scale: f64,
    /// When false, the queue-feedback behaviours are disabled: users submit
    /// the same mix regardless of congestion (the `ablation_feedback` bench).
    pub queue_feedback: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            span_days: 7,
            load_scale: 1.0,
            queue_feedback: true,
        }
    }
}

/// A configured generator; `generate` is pure in `(profile, config)`.
pub struct Generator {
    profile: SystemProfile,
    config: GeneratorConfig,
}

impl Generator {
    /// Creates a generator.
    #[must_use]
    pub fn new(profile: SystemProfile, config: GeneratorConfig) -> Self {
        Self { profile, config }
    }

    /// Generates the trace.
    ///
    /// # Panics
    /// Panics if the configuration produces no jobs (zero-day span) or an
    /// invalid system spec — both programming errors, not data errors.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let p = &self.profile;
        let cfg = &self.config;
        assert!(cfg.span_days > 0, "span must be at least one day");
        assert!(cfg.load_scale > 0.0, "load_scale must be positive");

        let mut rng = Rng::new(cfg.seed);
        let mut pool_rng = rng.fork(0xF0F0);
        let pool = UserPool::build(p, &mut pool_rng);

        // Calibrate the arrival rate against the *realised* template pool
        // (status-adjusted), not the raw distributions: the heavy-tailed
        // size/runtime draws make the pool's expected demand differ from
        // the distribution mean by large factors. Runtimes are additionally
        // truncated to their expected overlap with the trace window — a
        // week-long job submitted into a two-day window only loads the
        // window with the part that falls inside it.
        let window = (i64::from(cfg.span_days) * 86_400) as f64;
        let expected_demand = pool.expected_demand(|t| {
            let r = t.base_runtime * p.expected_status_runtime_factor(t.procs, t.base_runtime);
            // Uniform arrival in [0, W): E[min(r, W − arrival)].
            let r_eff = if r >= window {
                window / 2.0
            } else {
                r * (1.0 - r / (2.0 * window))
            };
            t.procs as f64 * r_eff
        });
        let gap = expected_demand / (p.target_load * cfg.load_scale * p.spec.total_units as f64);
        let base_rate = 1.0 / gap;
        let diurnal = p.normalized_diurnal();
        let lambda_max = base_rate * diurnal.iter().cloned().fold(f64::MIN, f64::max);

        let span: Timestamp = i64::from(cfg.span_days) * 86_400;
        let partitions = match p.spec.kind {
            lumos_core::SystemKind::DlCluster => p.spec.virtual_clusters.max(1),
            _ => 1,
        };
        let mut queue = FeedbackCluster::new(p.spec.total_units, partitions);

        let mut jobs = Vec::with_capacity((span as f64 / gap * 1.1) as usize);
        let mut t = 0.0f64;
        let mut id = 0u64;

        loop {
            // Thinned non-homogeneous Poisson arrivals.
            t += -rng.next_f64_open().ln() / lambda_max;
            if t >= span as f64 {
                break;
            }
            let now = t as Timestamp;
            let hour = lumos_core::hour_of_day(now, p.spec.tz_offset) as usize;
            if !rng.chance(diurnal[hour] / (lambda_max / base_rate)) {
                continue;
            }

            queue.advance(now);
            let user = pool.pick(&mut rng);
            let congestion = if cfg.queue_feedback {
                queue.congestion(user.virtual_cluster, p.expected_max_queue)
            } else {
                0.0
            };

            let job = self.make_job(id, user, now, congestion, &mut rng);
            queue.submit(user.virtual_cluster, now, job.procs, job.runtime.max(1));
            jobs.push(job);
            id += 1;
        }

        Trace::new(p.spec.clone(), jobs).expect("generator produced a valid trace")
    }

    /// Builds one job for `user` at `now` under the given congestion signal.
    fn make_job(
        &self,
        id: u64,
        user: &crate::user::UserModel,
        now: Timestamp,
        congestion: f64,
        rng: &mut Rng,
    ) -> Job {
        let p = &self.profile;

        // --- Template choice, with congestion-driven downsizing (§V.B). ---
        let (flo, fhi) = p.fail_early;
        let (klo, khi) = p.kill_stretch;
        let fresh_template = |rng: &mut Rng| {
            let procs = p.sample_procs(rng);
            let walltime_factor = match p.walltime {
                WalltimePolicy::Estimated { lo, hi, .. } => lo + (hi - lo) * rng.next_f64(),
                WalltimePolicy::None => 1.5,
            };
            crate::user::Template {
                procs,
                base_runtime: p.sample_base_runtime(rng, procs),
                fail_factor: flo + (fhi - flo) * rng.next_f64(),
                kill_factor: klo + (khi - klo) * rng.next_f64(),
                walltime_factor,
            }
        };
        let mut template = if rng.chance(p.off_template_prob) {
            fresh_template(rng)
        } else {
            *user.pick_template(rng)
        };
        // Congestion adaptation reuses *real* templates rather than scaling
        // sizes/runtimes — users fall back to configurations they already
        // run, which keeps the Fig. 8 resource-configuration groups intact.
        if rng.chance(p.queue_size_adapt * congestion) {
            // Fall back to the smallest configuration; on GPU systems that
            // frequently collapses to a single device.
            template = *user.smallest_template();
            if rng.chance(0.7 * congestion) {
                template.procs = 1;
            }
        } else if rng.chance(p.queue_runtime_adapt * congestion) {
            // DL users also shorten jobs when the system is busy (Fig. 10);
            // the HPC profiles set `queue_runtime_adapt ≈ 0`.
            template = *user.shortest_template();
        }
        let procs = template.procs;
        let base_runtime = template.base_runtime;

        // Per-submission jitter, small enough to stay inside the 10 %
        // resource-configuration grouping window (Fig. 8).
        let intended = (base_runtime * (p.runtime_jitter * rng.next_gaussian()).exp())
            .clamp(1.0, 60.0 * 86_400.0);

        // --- Status, conditioned on intended geometry (§IV.B). ---
        let size_class = SizeClass::classify(procs, &p.spec);
        let length_class = LengthClass::classify(intended as i64);
        let pass_w = p.status_mix.pass * p.pass_size_boost[size_class as usize];
        let fail_w = p.status_mix.fail;
        let kill_w = p.status_mix.kill * p.kill_length_boost[length_class as usize];
        let total = pass_w + fail_w + kill_w;
        let x = rng.next_f64() * total;
        let status = if x < pass_w {
            JobStatus::Passed
        } else if x < pass_w + fail_w {
            JobStatus::Failed
        } else {
            JobStatus::Killed
        };

        // --- Walltime (HPC only), from the *intended* runtime, with the
        // template's habitual over-estimation factor. ---
        let walltime = match p.walltime {
            WalltimePolicy::None => None,
            WalltimePolicy::Estimated { round_to, .. } => {
                let raw = (intended * template.walltime_factor) as i64;
                let rounded = raw.div_euclid(round_to) * round_to + round_to;
                Some(rounded.max(intended as i64 + 60))
            }
        };

        // --- Final runtime, re-conditioned on status (Figs. 6, 11). ---
        // The fail/kill points come from the *template*: a buggy application
        // crashes at the same spot every rerun, so failed submissions still
        // cluster into their resource-configuration group (Fig. 8) and per-
        // user violins show separated status modes (Fig. 11).
        let runtime = match status {
            JobStatus::Passed => intended as i64,
            JobStatus::Failed => ((intended * template.fail_factor) as i64).max(1),
            JobStatus::Killed => {
                let at_limit = match p.walltime {
                    WalltimePolicy::Estimated { kill_at_limit, .. } => rng.chance(kill_at_limit),
                    WalltimePolicy::None => false,
                };
                if at_limit {
                    walltime.expect("at_limit implies walltime")
                } else {
                    let stretched = ((intended * template.kill_factor) as i64).max(1);
                    match walltime {
                        Some(wt) => stretched.min(wt),
                        None => stretched,
                    }
                }
            }
        };

        let units_per_node = u64::from(p.spec.units_per_node);
        let nodes = procs.div_ceil(units_per_node).max(1) as u32;

        Job {
            id,
            user: user.id,
            submit: now,
            wait: None,
            runtime,
            walltime,
            procs,
            nodes,
            status,
            virtual_cluster: match p.spec.kind {
                SystemKind::DlCluster if p.spec.virtual_clusters > 1 => user.virtual_cluster,
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;
    use lumos_core::SystemId;

    fn gen(id: SystemId, seed: u64, days: u32) -> Trace {
        Generator::new(
            systems::profile_for(id),
            GeneratorConfig {
                seed,
                span_days: days,
                ..GeneratorConfig::default()
            },
        )
        .generate()
    }

    #[test]
    fn deterministic() {
        let a = gen(SystemId::Philly, 1, 1);
        let b = gen(SystemId::Philly, 1, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen(SystemId::Philly, 1, 1);
        let b = gen(SystemId::Philly, 2, 1);
        assert_ne!(a.len(), 0);
        assert_ne!(
            a.jobs().first().map(|j| j.runtime),
            b.jobs().first().map(|j| j.runtime)
        );
    }

    #[test]
    fn jobs_are_sorted_and_in_window() {
        let t = gen(SystemId::Helios, 3, 2);
        let span = 2 * 86_400;
        let mut prev = i64::MIN;
        for j in t.jobs() {
            assert!(j.submit >= prev);
            assert!(j.submit < span);
            prev = j.submit;
        }
    }

    #[test]
    fn hpc_jobs_have_walltimes_covering_passed_runtimes() {
        let t = gen(SystemId::Theta, 4, 2);
        for j in t.jobs() {
            let wt = j.walltime.expect("Theta jobs carry walltimes");
            assert!(wt >= 60);
            if j.status == JobStatus::Passed {
                assert!(wt >= j.runtime, "walltime {wt} < runtime {}", j.runtime);
            } else {
                assert!(j.runtime <= wt, "killed/failed ran past walltime");
            }
        }
    }

    #[test]
    fn dl_jobs_have_no_walltime_and_carry_vc_only_on_philly() {
        let philly = gen(SystemId::Philly, 5, 1);
        assert!(philly.jobs().iter().all(|j| j.walltime.is_none()));
        assert!(philly.jobs().iter().all(|j| j.virtual_cluster.is_some()));
        let vcs: std::collections::HashSet<u16> = philly
            .jobs()
            .iter()
            .filter_map(|j| j.virtual_cluster)
            .collect();
        assert!(vcs.len() >= 10, "expected many VCs, got {}", vcs.len());

        let helios = gen(SystemId::Helios, 5, 1);
        assert!(helios.jobs().iter().all(|j| j.virtual_cluster.is_none()));
    }

    #[test]
    fn job_count_scales_with_span() {
        let one = gen(SystemId::Helios, 6, 1).len() as f64;
        let three = gen(SystemId::Helios, 6, 3).len() as f64;
        assert!((three / one - 3.0).abs() < 0.5, "1d={one} 3d={three}");
    }

    #[test]
    fn load_scale_scales_job_count() {
        let base = gen(SystemId::Theta, 7, 4).len() as f64;
        let double = Generator::new(
            systems::profile_for(SystemId::Theta),
            GeneratorConfig {
                seed: 7,
                span_days: 4,
                load_scale: 2.0,
                ..GeneratorConfig::default()
            },
        )
        .generate()
        .len() as f64;
        assert!(
            (double / base - 2.0).abs() < 0.4,
            "base={base} double={double}"
        );
    }

    #[test]
    fn failed_jobs_run_shorter_than_passed_on_average() {
        let t = gen(SystemId::BlueWaters, 8, 2);
        let mean = |s: JobStatus| {
            let xs: Vec<f64> = t
                .jobs()
                .iter()
                .filter(|j| j.status == s)
                .map(|j| j.runtime as f64)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        assert!(mean(JobStatus::Failed) < 0.6 * mean(JobStatus::Passed));
    }

    #[test]
    fn every_status_appears() {
        let t = gen(SystemId::Mira, 9, 3);
        for s in JobStatus::ALL {
            assert!(t.count_status(s) > 0, "missing {s:?}");
        }
    }
}
