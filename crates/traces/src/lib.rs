//! # lumos-traces
//!
//! Workload substrate for the `lumos-rs` workspace.
//!
//! The paper analyses five public job traces (Mira, Theta, Blue Waters,
//! Philly, Helios). Those traces cannot be redistributed here, so this crate
//! provides the closest synthetic equivalent: **behavioural trace
//! generators**, one per system, calibrated to the distributional facts the
//! paper itself reports (median runtimes, arrival densities, size CDFs,
//! failure mixes, per-user repetition, queue-adaptive submission). Each
//! generator exercises exactly the code paths the real traces would — the
//! analyses in `lumos-analysis`, the simulator in `lumos-sim`, and the
//! predictors in `lumos-predict` consume [`lumos_core::Trace`] values and
//! never care where the jobs came from.
//!
//! Real traces can be dropped in through the [`swf`] module, which reads and
//! writes the Standard Workload Format used by the Parallel Workloads
//! Archive.
//!
//! Entry points:
//!
//! * [`profile::SystemProfile`] — the full behavioural parameterisation,
//! * [`systems`] — the five calibrated paper profiles,
//! * [`generator::Generator`] — turns a profile + seed into a [`Trace`],
//! * [`generate_paper_suite`] — all five systems in parallel (rayon),
//! * [`swf`] — Standard Workload Format I/O.
//!
//! [`Trace`]: lumos_core::Trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod profile;
pub mod queue;
pub mod swf;
pub mod systems;
pub mod user;

use lumos_core::{SystemId, Trace};
use rayon::prelude::*;

pub use generator::{Generator, GeneratorConfig};
pub use profile::SystemProfile;

/// Generates all five paper systems in parallel with per-system derived
/// seeds. `span_days` controls the trace window (the paper aligns all
/// systems to four-month windows; tests and benches use shorter spans).
#[must_use]
pub fn generate_paper_suite(seed: u64, span_days: u32) -> Vec<Trace> {
    SystemId::PAPER_SYSTEMS
        .par_iter()
        .map(|&id| {
            let profile = systems::profile_for(id);
            let cfg = GeneratorConfig {
                seed: seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                span_days,
                ..GeneratorConfig::default()
            };
            Generator::new(profile, cfg).generate()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_generates_all_five_systems() {
        let suite = generate_paper_suite(1, 2);
        assert_eq!(suite.len(), 5);
        for t in &suite {
            // HPC arrivals are minutes apart, so a 2-day Mira/Theta window
            // only holds a couple hundred jobs; DL windows hold tens of
            // thousands.
            assert!(t.len() > 30, "{} has only {} jobs", t.system.name, t.len());
        }
        let names: Vec<&str> = suite.iter().map(|t| t.system.name.as_str()).collect();
        assert!(names.contains(&"Mira"));
        assert!(names.contains(&"Helios"));
    }

    #[test]
    fn suite_is_deterministic() {
        let a = generate_paper_suite(7, 1);
        let b = generate_paper_suite(7, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            assert_eq!(x.jobs().first(), y.jobs().first());
            assert_eq!(x.jobs().last(), y.jobs().last());
        }
    }
}
