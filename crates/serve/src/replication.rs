//! Primary-side journal shipping: hot-standby replication.
//!
//! A replicating primary (`--replicate-to ADDR`) runs one **sender
//! thread** that dials the follower's ordinary NDJSON listener and
//! speaks the replication subset of the wire protocol
//! ([`crate::protocol`]):
//!
//! 1. `"ReplHello"` → the follower answers with its journal position
//!    (`ReplPosition {seq, offset}`), which the sender validates against
//!    its own copy of that segment (the offset must land exactly on a
//!    record boundary — anything else means the follower's history
//!    diverged and replication stops rather than corrupt it).
//! 2. The sender tails the journal *files* from that position, shipping
//!    each complete framed line verbatim as `ReplRecord {frame}` and
//!    each segment transition as `ReplSegment {seq}`. Shipping raw
//!    frames (not re-encoded records) makes the follower's journal a
//!    byte-for-byte mirror and lets the follower re-verify every CRC.
//! 3. The follower acknowledges each message with its new durable
//!    position (`ReplAck`). At most [`REPL_WINDOW`] messages are in
//!    flight; a slow follower backpressures the sender, never the
//!    primary's clients (replication is asynchronous — the primary
//!    acknowledges clients after its *local* append, and `stats`
//!    exposes the acked position so lag is observable).
//!
//! A dropped connection reconnects with backoff and re-handshakes, so
//! the stream resumes from the last position the follower made durable.
//! A *protocol* failure — the follower refuses a frame, was promoted, or
//! reports a diverged position — is fatal: the sender stops permanently
//! and the primary keeps serving unreplicated (loudly, on stderr).
//!
//! Reading the journal files (rather than an in-process channel) keeps
//! the scheduler loop decoupled: the loop only bumps a notification
//! epoch after each append, and the sender catches up from disk —
//! which is also exactly what lets a late-joining follower receive
//! segments written before it ever connected.
//!
//! Group-commit journaling (`--group-commit`, [`crate::server`]) is
//! invisible here by construction: a batched append writes exactly the
//! concatenation of the per-record frames and bumps the epoch once, so
//! the tailer just finds several complete lines at its next read and
//! ships them one `ReplRecord` each. The follower's mirror stays
//! byte-for-byte identical whatever batch boundaries the primary used.

use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use serde::Deserialize;

use crate::journal::segment_path;
use crate::protocol::Request;

/// Messages (frames + segment markers) the sender keeps in flight before
/// waiting for the follower to acknowledge.
pub const REPL_WINDOW: u64 = 64;

/// How the replies a follower may send deserialize on the primary side
/// (a subset of [`crate::protocol::Response`]; anything else on the link
/// is a protocol violation).
#[derive(Debug, Deserialize)]
enum ReplReply {
    /// The follower's durable journal position.
    #[allow(missing_docs)]
    ReplPosition { seq: u64, offset: u64 },
    /// One message acknowledged; durable through `(seq, offset)`.
    #[allow(missing_docs)]
    ReplAck { seq: u64, offset: u64 },
    /// The follower refused: wrong role, bad frame, or local failure.
    #[allow(missing_docs)]
    Error { message: String },
}

/// Shared state between the scheduler loop and the sender thread.
#[derive(Debug)]
pub struct ReplLink {
    /// The follower's address (the `--replicate-to` value).
    pub target: String,
    /// Bumped by the scheduler loop after every journal append or
    /// rotation; the sender waits on it instead of polling hot.
    epoch: Mutex<u64>,
    cv: Condvar,
    stop: AtomicBool,
    connected: AtomicBool,
    fatal: AtomicBool,
    sent: AtomicU64,
    acked: AtomicU64,
    acked_seq: AtomicU64,
    acked_offset: AtomicU64,
}

impl ReplLink {
    /// A fresh, unconnected link towards `target`.
    #[must_use]
    pub fn new(target: String) -> Self {
        Self {
            target,
            epoch: Mutex::new(0),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            fatal: AtomicBool::new(false),
            sent: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            acked_seq: AtomicU64::new(0),
            acked_offset: AtomicU64::new(0),
        }
    }

    /// Wakes the sender: new journal bytes exist (or state changed).
    pub fn notify(&self) {
        let mut epoch = self.epoch.lock().expect("repl epoch lock");
        *epoch += 1;
        self.cv.notify_all();
    }

    /// Asks the sender thread to exit (server shutdown).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.notify();
    }

    /// Whether the link to the follower is currently established.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Segment of the follower's last acknowledged position.
    #[must_use]
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq.load(Ordering::SeqCst)
    }

    /// Byte offset of the follower's last acknowledged position.
    #[must_use]
    pub fn acked_offset(&self) -> u64 {
        self.acked_offset.load(Ordering::SeqCst)
    }

    /// Messages acknowledged over the current connection.
    #[must_use]
    pub fn acked_count(&self) -> u64 {
        self.acked.load(Ordering::SeqCst)
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn is_fatal(&self) -> bool {
        self.fatal.load(Ordering::SeqCst)
    }

    fn set_fatal(&self, why: &str) {
        self.fatal.store(true, Ordering::SeqCst);
        eprintln!(
            "lumos-serve: replication to {} stopped permanently: {why}",
            self.target
        );
        self.notify();
    }

    fn record_ack(&self, seq: u64, offset: u64) {
        self.acked_seq.store(seq, Ordering::SeqCst);
        self.acked_offset.store(offset, Ordering::SeqCst);
        self.acked.fetch_add(1, Ordering::SeqCst);
        self.notify();
    }

    fn in_flight(&self) -> u64 {
        self.sent
            .load(Ordering::SeqCst)
            .saturating_sub(self.acked.load(Ordering::SeqCst))
    }

    /// Blocks until [`ReplLink::notify`] fires or `timeout` passes.
    fn wait(&self, timeout: Duration) {
        let epoch = self.epoch.lock().expect("repl epoch lock");
        let before = *epoch;
        let _ = self.cv.wait_timeout_while(epoch, timeout, |e| *e == before);
    }
}

/// Spawns the sender thread for a primary journaling into `dir`.
pub fn spawn_sender(dir: PathBuf, link: Arc<ReplLink>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || sender_loop(&dir, &link))
}

fn sender_loop(dir: &Path, link: &ReplLink) {
    let mut announced_wait = false;
    while !link.stopped() && !link.is_fatal() {
        match TcpStream::connect(&link.target) {
            Ok(stream) => {
                announced_wait = false;
                eprintln!("lumos-serve: replicating to {}", link.target);
                if let Err(e) = ship(dir, link, stream) {
                    if !link.is_fatal() && !link.stopped() {
                        eprintln!(
                            "lumos-serve: replication link to {} lost: {e}; reconnecting",
                            link.target
                        );
                    }
                }
                link.connected.store(false, Ordering::SeqCst);
            }
            Err(_) if !announced_wait => {
                // Log once per outage, then retry quietly.
                announced_wait = true;
                eprintln!(
                    "lumos-serve: waiting for follower at {} to accept connections",
                    link.target
                );
            }
            Err(_) => {}
        }
        if !link.stopped() && !link.is_fatal() {
            std::thread::sleep(Duration::from_millis(300));
        }
    }
}

/// One connection's worth of streaming: handshake, then tail-and-ship
/// until the link drops, a fatal protocol error, or server shutdown.
fn ship(dir: &Path, link: &ReplLink, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = io::BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);

    // Handshake: where is the follower?
    writeln!(writer, "{}", Request::ReplHello.to_line())?;
    writer.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "follower closed during handshake",
        ));
    }
    let (seq, offset) = match serde_json::from_str::<ReplReply>(line.trim()) {
        Ok(ReplReply::ReplPosition { seq, offset }) => (seq, offset),
        Ok(ReplReply::Error { message }) => {
            link.set_fatal(&format!("follower refused the handshake: {message}"));
            return Ok(());
        }
        Ok(other) => {
            link.set_fatal(&format!("unexpected handshake reply: {other:?}"));
            return Ok(());
        }
        Err(e) => {
            link.set_fatal(&format!("unparseable handshake reply: {e}"));
            return Ok(());
        }
    };
    if let Err(why) = validate_position(dir, seq, offset) {
        link.set_fatal(&why);
        return Ok(());
    }

    // In-flight accounting restarts per connection (unacked messages of
    // a previous link were implicitly resent by resuming at the
    // follower's durable position).
    link.sent.store(0, Ordering::SeqCst);
    link.acked.store(0, Ordering::SeqCst);
    link.acked_seq.store(seq, Ordering::SeqCst);
    link.acked_offset.store(offset, Ordering::SeqCst);
    link.connected.store(true, Ordering::SeqCst);

    // Ack reader: drains the follower's replies concurrently so up to
    // REPL_WINDOW messages ride the wire at once. Scoped, so it may
    // borrow `link`; the socket shutdown below unblocks its final read
    // and the scope joins it before returning.
    let dead = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            ack_reader(&mut reader, link, &dead);
        });
        let result = stream_records(dir, link, &mut writer, &dead, seq, offset);
        let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
        result
    })
}

/// Reads follower replies until the link drops or a protocol error.
fn ack_reader<R: BufRead>(reader: &mut R, link: &ReplLink, dead: &AtomicBool) {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => match serde_json::from_str::<ReplReply>(line.trim()) {
                Ok(ReplReply::ReplAck { seq, offset }) => link.record_ack(seq, offset),
                Ok(ReplReply::Error { message }) => {
                    link.set_fatal(&format!("follower refused a frame: {message}"));
                    break;
                }
                Ok(other) => {
                    link.set_fatal(&format!("unexpected reply on the link: {other:?}"));
                    break;
                }
                Err(e) => {
                    link.set_fatal(&format!("unparseable reply on the link: {e}"));
                    break;
                }
            },
        }
    }
    dead.store(true, Ordering::SeqCst);
    link.notify();
}

/// Tails the journal from `(seq, offset)`, shipping complete frames and
/// segment transitions until the connection dies or the server stops.
fn stream_records(
    dir: &Path,
    link: &ReplLink,
    writer: &mut io::BufWriter<TcpStream>,
    dead: &AtomicBool,
    mut seq: u64,
    offset: u64,
) -> io::Result<()> {
    let done = || link.stopped() || link.is_fatal() || dead.load(Ordering::SeqCst);
    let mut file = std::fs::File::open(segment_path(dir, seq))?;
    file.seek(SeekFrom::Start(offset))?;
    // Bytes read from the file but not yet shipped: a read may end in the
    // middle of a line the primary is still writing — only complete,
    // newline-terminated frames go on the wire.
    let mut carry: Vec<u8> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    while !done() {
        // Window: bounded in-flight messages, so a stalled follower
        // pauses shipping instead of buffering the whole journal.
        if link.in_flight() >= REPL_WINDOW {
            link.wait(Duration::from_millis(100));
            continue;
        }
        // Sampling the next segment's existence *before* reading matters:
        // rotation creates segment N+1 only after the last append to N,
        // so "N+1 existed, then N hit EOF" proves N is complete.
        let next_exists = segment_path(dir, seq + 1).exists();
        let n = file.read(&mut buf)?;
        if n == 0 {
            if carry.is_empty() && next_exists {
                writeln!(
                    writer,
                    "{}",
                    Request::ReplSegment { seq: seq + 1 }.to_line()
                )?;
                writer.flush()?;
                link.sent.fetch_add(1, Ordering::SeqCst);
                seq += 1;
                file = std::fs::File::open(segment_path(dir, seq))?;
                continue;
            }
            // Caught up: sleep until the scheduler appends again.
            link.wait(Duration::from_millis(100));
            continue;
        }
        carry.extend_from_slice(&buf[..n]);
        let mut start = 0usize;
        while let Some(nl) = carry[start..].iter().position(|&b| b == b'\n') {
            while link.in_flight() >= REPL_WINDOW && !done() {
                link.wait(Duration::from_millis(100));
            }
            if done() {
                return Ok(());
            }
            let frame = String::from_utf8_lossy(&carry[start..start + nl]).into_owned();
            writeln!(writer, "{}", Request::ReplRecord { frame }.to_line())?;
            link.sent.fetch_add(1, Ordering::SeqCst);
            start += nl + 1;
        }
        carry.drain(..start);
        writer.flush()?;
    }
    Ok(())
}

/// Checks that `(seq, offset)` names a record boundary in this journal's
/// copy of segment `seq` — the resume contract: the follower's next byte
/// must be the first byte of a record the primary also has.
fn validate_position(dir: &Path, seq: u64, offset: u64) -> Result<(), String> {
    let path = segment_path(dir, seq);
    let data = std::fs::read(&path).map_err(|e| {
        format!(
            "follower is at segment {seq} which this primary cannot read ({e}); \
             refusing to replicate into diverged history"
        )
    })?;
    if offset > data.len() as u64 {
        return Err(format!(
            "follower is ahead of this primary (segment {seq}: {offset} > {} bytes); \
             refusing to replicate into diverged history",
            data.len()
        ));
    }
    let mut pos = 0u64;
    while pos < offset {
        match data[usize::try_from(pos).expect("offset fits usize")..]
            .iter()
            .position(|&b| b == b'\n')
        {
            Some(nl) => pos += nl as u64 + 1,
            None => break,
        }
    }
    if pos != offset {
        return Err(format!(
            "follower offset {offset} in segment {seq} is not a record boundary; \
             refusing to replicate into diverged history"
        ));
    }
    Ok(())
}
