//! The NDJSON wire protocol.
//!
//! One JSON document per line in both directions. Requests and responses
//! are externally tagged: struct-carrying commands are single-key objects
//! (`{"submit": {...}}`), argument-less commands are bare strings
//! (`"stats"`). Every request line produces exactly one response line, in
//! order.
//!
//! ```text
//! → {"Submit": {"job": {"id": 1, "procs": 4, "runtime": 120, "walltime": 300}}}
//! ← {"Submitted": {"id": 1, "state": "Waiting"}}
//! → {"Advance": {"to": 500}}
//! ← {"Advanced": {"now": 500}}
//! → "Stats"
//! ← {"Stats": {"stats": {...}}}
//! → "Shutdown"
//! ← {"Bye": {"metrics": {...}}}
//! ```

use lumos_core::{Duration, Timestamp};
use lumos_sim::{JobState, SessionSnapshot, SimMetrics, TenantUsage};
use serde::{Deserialize, Serialize};

/// A job submission over the wire. Only `id`, `procs`, and `runtime` are
/// required; the rest default like a trace job would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitSpec {
    /// Client-chosen job id; must be unique within the session.
    pub id: u64,
    /// Requested resource units.
    pub procs: u64,
    /// True runtime in seconds (this service schedules *simulated* work).
    pub runtime: Duration,
    /// Requested walltime estimate; defaults to the runtime-derived plan.
    pub walltime: Option<Duration>,
    /// Submitting user id.
    pub user: Option<u32>,
    /// Arrival time in simulation seconds; defaults to the current
    /// simulation time. Must not lie in the past.
    pub submit: Option<Timestamp>,
    /// Virtual-cluster binding (Philly-style systems).
    pub virtual_cluster: Option<u16>,
    /// Owning tenant name; requires the server to run with a tenant
    /// table (`--tenants`). Absent means the built-in `default` tenant.
    pub tenant: Option<String>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job.
    #[allow(missing_docs)]
    Submit { job: SubmitSpec },
    /// Cancel a pending or waiting job.
    #[allow(missing_docs)]
    Cancel { id: u64 },
    /// Query one job's lifecycle state.
    #[allow(missing_docs)]
    Query { id: u64 },
    /// Advance simulation time (virtual-time servers only).
    #[allow(missing_docs)]
    Advance { to: Timestamp },
    /// Live scheduler metrics.
    Stats,
    /// Raw session counters.
    Snapshot,
    /// Graceful shutdown: drain all queued and running jobs, then stop.
    /// On a follower this stops the process without draining (draining
    /// would journal state the primary never had).
    Shutdown,
    /// Replication handshake from a primary: the follower answers with
    /// its journal position ([`Response::ReplPosition`]) so the stream
    /// resumes from the last locally durable record.
    ReplHello,
    /// Replication stream marker: the primary finished shipping segment
    /// `seq - 1` and every following [`Request::ReplRecord`] belongs to
    /// segment `seq`. The follower rotates its own journal (writing its
    /// own snapshot — byte-identical, because its state is) before
    /// acknowledging.
    #[allow(missing_docs)]
    ReplSegment { seq: u64 },
    /// One raw journal frame (`<len> <crc32> <json>`, no trailing
    /// newline) shipped verbatim from the primary's segment file. The
    /// follower verifies the checksum, appends the identical bytes to
    /// its own journal, applies the record, and acknowledges with its
    /// new position.
    #[allow(missing_docs)]
    ReplRecord { frame: String },
    /// Promote a follower: seal its journal tail and start accepting
    /// writes. Refused by a server that is already the primary.
    Promote,
}

/// Live walltime-prediction accuracy over completed jobs: every finished
/// job is scored against the walltime the scheduler planned with (the
/// predictor's estimate when one is enabled, the client's otherwise).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PredictionStats {
    /// Completed jobs scored so far.
    pub jobs: u64,
    /// Fraction of scored jobs whose planned walltime was below the true
    /// runtime (the dangerous direction; paper §VI.A).
    pub underestimate_rate: f64,
    /// Mean `|planned walltime − true runtime|` in seconds.
    pub mean_abs_error: f64,
}

/// One tenant's row in the `stats` tenants block.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantServeStats {
    /// Static configuration plus live usage accounting from the session
    /// (job counts, outstanding/used units, delivered unit-seconds).
    pub usage: TenantUsage,
    /// Streaming wait-time quantile estimates `(p, seconds)` over this
    /// tenant's started jobs; `null` before any of them started.
    pub wait_quantiles: Vec<(f64, Option<f64>)>,
    /// Mean observed waiting time (s) over this tenant's started jobs.
    pub mean_wait: f64,
}

/// The `stats` tenants block (tenant-enabled servers only).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantsStats {
    /// Jain's fairness index over weight-normalized delivered service
    /// (`served_unit_seconds / weight`) across tenants with at least one
    /// accepted job; `1.0` when nothing has been delivered yet.
    pub fairness: f64,
    /// Per-tenant rows, in tenant-table order.
    pub tenants: Vec<TenantServeStats>,
}

/// The `stats` replication block.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplicationStats {
    /// `"primary"` (shipping the journal) or `"follower"` (applying it).
    pub role: String,
    /// The peer address: the `--replicate-to` target on a primary, the
    /// `--follow` primary on a follower.
    pub peer: String,
    /// Primary: the link to the follower is currently up. Follower: a
    /// primary has completed the replication handshake since startup.
    pub connected: bool,
    /// Primary: segment of the last acknowledged frame. Follower: the
    /// active journal segment.
    pub seq: u64,
    /// Primary: byte offset the follower last acknowledged within `seq`.
    /// Follower: byte length of the active segment.
    pub offset: u64,
    /// Primary: frames acknowledged over the current link. Follower:
    /// frames applied since startup.
    pub records: u64,
}

/// Live metrics reported by `stats`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeStats {
    /// Raw session counters.
    pub snapshot: SessionSnapshot,
    /// Streaming wait-time quantile estimates `(p, seconds)`; `null`
    /// before any job has started.
    pub wait_quantiles: Vec<(f64, Option<f64>)>,
    /// Mean observed waiting time (s) over started jobs.
    pub mean_wait: f64,
    /// Mean bounded slowdown over started jobs.
    pub mean_bsld: f64,
    /// Jobs whose submission was rejected (validation or backpressure).
    pub rejected: u64,
    /// Active walltime predictor (`"last2"` / `"user"`); `null` when off.
    pub predictor: Option<String>,
    /// Planned-walltime accuracy over completed jobs.
    pub prediction: PredictionStats,
    /// Per-tenant usage, waits, and fairness; `null` when the server
    /// runs without a tenant table.
    pub tenants: Option<TenantsStats>,
    /// Replication state: `Some` on a replicating primary and on a
    /// follower; `null` on servers that neither replicate nor follow
    /// (including a promoted follower, which serves exactly like a
    /// plain primary).
    pub replication: Option<ReplicationStats>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Response {
    /// The job was accepted.
    #[allow(missing_docs)]
    Submitted { id: u64, state: JobState },
    /// The submission was refused (validation failure or backpressure).
    #[allow(missing_docs)]
    Rejected { id: Option<u64>, reason: String },
    /// The submission was refused because it would push its tenant past
    /// its outstanding-units quota. A distinct reply (not a generic
    /// `Rejected`) so clients can back off instead of retrying.
    #[allow(missing_docs)]
    QuotaExceeded {
        id: u64,
        tenant: String,
        requested: u64,
        in_use: u64,
        quota: u64,
    },
    /// Outcome of a cancel request.
    #[allow(missing_docs)]
    Cancelled { id: u64, ok: bool },
    /// Answer to a query.
    #[allow(missing_docs)]
    Job {
        id: u64,
        state: JobState,
        wait: Option<Duration>,
    },
    /// Simulation time after an advance.
    #[allow(missing_docs)]
    Advanced { now: Timestamp },
    /// Live metrics.
    #[allow(missing_docs)]
    Stats { stats: ServeStats },
    /// Raw session counters.
    #[allow(missing_docs)]
    Snapshot { snapshot: SessionSnapshot },
    /// Final word before the server stops: metrics over the whole session
    /// (exactly what a batch replay of the same arrivals would report),
    /// when at least one job ran.
    #[allow(missing_docs)]
    Bye { metrics: Option<SimMetrics> },
    /// A follower's journal position, answering [`Request::ReplHello`]:
    /// the next shipped frame must land at byte `offset` of segment
    /// `seq`.
    #[allow(missing_docs)]
    ReplPosition { seq: u64, offset: u64 },
    /// A follower's acknowledgment of one replicated frame or segment
    /// marker: everything up to `(seq, offset)` is durable locally.
    #[allow(missing_docs)]
    ReplAck { seq: u64, offset: u64 },
    /// The follower accepted promotion and now serves writes.
    #[allow(missing_docs)]
    Promoted { now: Timestamp },
    /// The request could not be handled (parse error, unknown id, ...).
    #[allow(missing_docs)]
    Error { message: String },
}

impl Request {
    /// Parses one request line, including semantic validation of submit
    /// specs (zero resource units, empty tenant names) so nonsense is
    /// refused at the protocol edge with field context instead of
    /// reaching the scheduler.
    ///
    /// # Errors
    /// Returns a human-readable message for malformed JSON, an unknown
    /// command shape, or an invalid field value.
    pub fn parse(line: &str) -> Result<Self, String> {
        let req: Self =
            serde_json::from_str(line.trim()).map_err(|e| format!("bad request: {e}"))?;
        req.validate()?;
        Ok(req)
    }

    /// Semantic validation beyond what deserialization checks. Only wire
    /// parsing goes through this — journal replay applies records that
    /// were already validated when first accepted.
    fn validate(&self) -> Result<(), String> {
        let Request::Submit { job } = self else {
            return Ok(());
        };
        if job.procs == 0 {
            return Err(format!(
                "Submit.job.procs: job {} requests zero resource units",
                job.id
            ));
        }
        if let Some(tenant) = &job.tenant {
            if tenant.trim().is_empty() {
                return Err(format!(
                    "Submit.job.tenant: job {} names an empty tenant",
                    job.id
                ));
            }
        }
        Ok(())
    }

    /// Serializes the request as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.to_line_into(&mut out);
        out
    }

    /// [`Request::to_line`] appended onto a caller-provided buffer (no
    /// trailing newline), so pipelined clients can serialize a stream of
    /// requests without a fresh allocation per line.
    pub fn to_line_into(&self, out: &mut String) {
        serde_json::to_string_into(self, out);
    }
}

impl Response {
    /// Serializes the response as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.to_line_into(&mut out);
        out
    }

    /// [`Response::to_line`] appended onto a caller-provided buffer (no
    /// trailing newline). The connection writer reuses one buffer across
    /// every reply it coalesces into a single flush.
    pub fn to_line_into(&self, out: &mut String) {
        serde_json::to_string_into(self, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrips() {
        let req = Request::Submit {
            job: SubmitSpec {
                id: 7,
                procs: 4,
                runtime: 120,
                walltime: Some(300),
                user: None,
                submit: Some(50),
                virtual_cluster: None,
                tenant: Some("alice".into()),
            },
        };
        let line = req.to_line();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn optional_fields_default() {
        let req = Request::parse(r#"{"Submit":{"job":{"id":1,"procs":2,"runtime":60}}}"#).unwrap();
        match req {
            Request::Submit { job } => {
                assert_eq!(job.id, 1);
                assert_eq!(job.walltime, None);
                assert_eq!(job.submit, None);
                assert_eq!(job.tenant, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn semantic_validation_names_the_field() {
        // Zero resource units is nonsense the protocol layer refuses.
        let err =
            Request::parse(r#"{"Submit":{"job":{"id":9,"procs":0,"runtime":60}}}"#).unwrap_err();
        assert!(err.contains("Submit.job.procs"), "{err}");
        assert!(err.contains("job 9"), "{err}");
        // So is an explicitly empty (or all-whitespace) tenant name.
        for tenant in [r#""""#, r#""  ""#] {
            let line = format!(
                r#"{{"Submit":{{"job":{{"id":3,"procs":1,"runtime":60,"tenant":{tenant}}}}}}}"#
            );
            let err = Request::parse(&line).unwrap_err();
            assert!(err.contains("Submit.job.tenant"), "{err}");
            assert!(err.contains("job 3"), "{err}");
        }
        // A well-formed tenant passes.
        Request::parse(r#"{"Submit":{"job":{"id":3,"procs":1,"runtime":60,"tenant":"a"}}}"#)
            .unwrap();
    }

    #[test]
    fn unit_commands_are_bare_strings() {
        assert_eq!(Request::parse(r#""Stats""#).unwrap(), Request::Stats);
        assert_eq!(Request::parse(r#""Shutdown""#).unwrap(), Request::Shutdown);
        assert_eq!(Request::Stats.to_line(), r#""Stats""#);
    }

    #[test]
    fn replication_requests_round_trip() {
        assert_eq!(
            Request::parse(r#""ReplHello""#).unwrap(),
            Request::ReplHello
        );
        assert_eq!(Request::parse(r#""Promote""#).unwrap(), Request::Promote);
        let seg = Request::ReplSegment { seq: 3 };
        assert_eq!(Request::parse(&seg.to_line()).unwrap(), seg);
        // Frames carry quotes and backslashes; JSON string escaping must
        // round-trip them byte-for-byte.
        let frame = r#"21 0a1b2c3d {"Advance":{"to":42}}"#.to_string();
        let rec = Request::ReplRecord {
            frame: frame.clone(),
        };
        match Request::parse(&rec.to_line()).unwrap() {
            Request::ReplRecord { frame: f } => assert_eq!(f, frame),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_error_without_panicking() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("{").is_err());
        assert!(Request::parse(r#"{"Nope": 1}"#).is_err());
        assert!(Request::parse(r#"{"Submit":{"job":{"id":1}}}"#).is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_field() {
        // A submit without its required `procs` must say so, not just
        // "bad request" — the server relays this message verbatim (with a
        // line-number prefix) to the client.
        let err = Request::parse(r#"{"Submit":{"job":{"id":1,"runtime":60}}}"#).unwrap_err();
        assert!(err.contains("procs"), "field not named: {err}");
        // A wrong type names the field too.
        let err = Request::parse(r#"{"Cancel":{"id":"seven"}}"#).unwrap_err();
        assert!(
            err.contains("id") || err.contains("integer"),
            "no context: {err}"
        );
    }
}
