//! Write-ahead journaling: the durable command log behind `--journal`.
//!
//! Every state-mutating command the scheduler accepts (submit, cancel,
//! advance — and the implicit drain of a graceful shutdown) is appended to
//! the active journal segment *before* the client sees the acknowledgment.
//! Replaying the log through the deterministic [`lumos_sim::SimSession`]
//! therefore reconstructs the exact pre-crash state; see
//! [`crate::recovery`].
//!
//! # On-disk format
//!
//! A journal directory holds numbered segments and snapshots:
//!
//! ```text
//! journal-000000.log            records 0..  (first segment)
//! snapshot-000001.json          state *before* journal-000001.log
//! journal-000001.log            records appended after the snapshot
//! ```
//!
//! Each segment is a sequence of framed NDJSON records, one per line:
//!
//! ```text
//! <len> <crc32> <json>\n
//! ```
//!
//! where `len` is the byte length of `<json>`, `crc32` is the IEEE CRC-32
//! of `<json>` as eight lowercase hex digits, and `<json>` is one
//! [`JournalRecord`] document (JSON string escaping guarantees it contains
//! no raw newline). The frame makes torn writes detectable: a record whose
//! line is incomplete, whose length disagrees, whose checksum fails, or
//! whose JSON does not parse marks the **torn tail** — recovery keeps
//! every record before it, truncates the file at its byte offset with a
//! warning, and never crashes on a damaged journal.
//!
//! Each segment begins with a [`JournalRecord::Config`] header so it is
//! self-describing; replay validates the header against the server's
//! configuration and warns on drift.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

use lumos_core::{SystemSpec, Timestamp};
use lumos_predict::PredictorConfig;
use lumos_sim::{SimConfig, TenantTable};
use serde::{Deserialize, Serialize};

use crate::protocol::SubmitSpec;

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: no acknowledged command is ever lost.
    Always,
    /// `fsync` at most once per this many milliseconds: bounded loss
    /// window, near-`Never` throughput.
    Interval(u64),
    /// Never `fsync` explicitly; the OS flushes when it pleases. A machine
    /// crash may lose acknowledged commands (a process crash does not:
    /// writes still reach the page cache).
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI syntax: `always`, `never`, or `interval:MS`.
    ///
    /// # Errors
    /// Returns a usage message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(Self::Always),
            "never" => Ok(Self::Never),
            other => other
                .strip_prefix("interval:")
                .and_then(|ms| ms.parse().ok())
                .map(Self::Interval)
                .ok_or_else(|| {
                    format!(
                        "invalid fsync policy `{other}` (expected always, never, or interval:MS)"
                    )
                }),
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Always => write!(f, "always"),
            Self::Interval(ms) => write!(f, "interval:{ms}"),
            Self::Never => write!(f, "never"),
        }
    }
}

/// Journaling configuration carried inside
/// [`crate::server::ServeConfig`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding segments and snapshots (created on demand).
    pub dir: PathBuf,
    /// Durability policy for appended records.
    pub fsync: FsyncPolicy,
    /// Rotate (snapshot + new segment) after this many records per
    /// segment; `0` disables rotation.
    pub snapshot_every: u64,
}

impl JournalConfig {
    /// Defaults: fsync every record, rotate every 4096 records.
    #[must_use]
    pub fn new(dir: PathBuf) -> Self {
        Self {
            dir,
            fsync: FsyncPolicy::Always,
            snapshot_every: 4096,
        }
    }
}

/// One durable record: a state-mutating command, or a segment header.
///
/// Mutating records carry the simulation clock at the moment the live
/// server applied them (`now`), so replay advances to exactly that instant
/// first — which also reproduces the implicit wall-clock advances of
/// `--time-scale` servers. Rejected submissions are *not* journaled: they
/// never mutate the session (the rejection counters are process-local and
/// reset on recovery).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Segment header: the configuration the session runs under. The
    /// `predictor` field records the walltime-predictor mode (absent both
    /// for predictor-off servers and in pre-predictor journals, which
    /// deserialize with `None`); `tenants` records the tenant table the
    /// same way (absent for tenant-less servers and in pre-tenancy
    /// journals).
    #[allow(missing_docs)]
    Config {
        system: SystemSpec,
        sim: SimConfig,
        predictor: Option<PredictorConfig>,
        tenants: Option<TenantTable>,
    },
    /// An accepted submission, with `job.submit` resolved (never `None`).
    #[allow(missing_docs)]
    Submit { now: Timestamp, job: SubmitSpec },
    /// An accepted cancellation.
    #[allow(missing_docs)]
    Cancel { now: Timestamp, id: u64 },
    /// An explicit `Advance` (or the final drain of a graceful shutdown).
    #[allow(missing_docs)]
    Advance { to: Timestamp },
}

// ---- CRC-32 (IEEE 802.3, reflected) --------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (the zlib/Ethernet polynomial) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- record framing ------------------------------------------------------

/// Frames one record as a journal line (including the trailing newline).
#[must_use]
pub fn encode_record(record: &JournalRecord) -> String {
    let mut line = String::new();
    encode_record_into(record, &mut line);
    line
}

/// [`encode_record`] appending into a caller-provided buffer, so batch
/// encoding reuses one allocation across records. The frame bytes are
/// identical to `encode_record`'s — group commit concatenates exactly the
/// lines a per-record append would have written.
pub fn encode_record_into(record: &JournalRecord, out: &mut String) {
    use std::fmt::Write as _;
    let json = serde_json::to_string(record).expect("journal records serialize");
    writeln!(
        out,
        "{} {:08x} {}",
        json.len(),
        crc32(json.as_bytes()),
        json
    )
    .expect("writing to a String cannot fail");
}

/// Decodes one framed line (without its trailing newline).
///
/// # Errors
/// Describes the first framing, checksum, or JSON problem found.
pub fn decode_line(line: &[u8]) -> Result<JournalRecord, String> {
    let text = std::str::from_utf8(line).map_err(|e| format!("record is not UTF-8: {e}"))?;
    let (len_field, rest) = text
        .split_once(' ')
        .ok_or("missing length prefix".to_string())?;
    let (crc_field, json) = rest
        .split_once(' ')
        .ok_or("missing checksum field".to_string())?;
    let len: usize = len_field
        .parse()
        .map_err(|_| format!("bad length prefix `{len_field}`"))?;
    let crc = u32::from_str_radix(crc_field, 16)
        .map_err(|_| format!("bad checksum field `{crc_field}`"))?;
    if json.len() != len {
        return Err(format!(
            "length mismatch: prefix says {len} bytes, record has {}",
            json.len()
        ));
    }
    let actual = crc32(json.as_bytes());
    if actual != crc {
        return Err(format!(
            "checksum mismatch: recorded {crc:08x}, computed {actual:08x}"
        ));
    }
    serde_json::from_str(json).map_err(|e| format!("bad record JSON: {e}"))
}

/// Where and why a segment's readable prefix ended early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first damaged record.
    pub offset: u64,
    /// What was wrong with it.
    pub reason: String,
}

/// The readable content of one segment file.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRecords {
    /// Intact records, in order.
    pub records: Vec<JournalRecord>,
    /// Set when the file ends in a damaged record; everything at and past
    /// `offset` should be discarded.
    pub torn: Option<TornTail>,
}

/// Reads every intact record of a segment, stopping (without error) at the
/// first torn or corrupt one.
///
/// # Errors
/// Only I/O errors reading the file; damage is reported via
/// [`SegmentRecords::torn`].
pub fn read_segment(path: &Path) -> io::Result<SegmentRecords> {
    let data = std::fs::read(path)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    let torn = loop {
        if offset >= data.len() {
            break None;
        }
        let rest = &data[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            break Some(TornTail {
                offset: offset as u64,
                reason: "truncated record (no trailing newline)".into(),
            });
        };
        match decode_line(&rest[..nl]) {
            Ok(record) => {
                records.push(record);
                offset += nl + 1;
            }
            Err(reason) => {
                break Some(TornTail {
                    offset: offset as u64,
                    reason,
                });
            }
        }
    };
    Ok(SegmentRecords { records, torn })
}

// ---- directory layout ----------------------------------------------------

/// Fsyncs a directory so freshly created or renamed entries survive a
/// machine crash. File data reaching stable storage says nothing about
/// the *directory entry* pointing at the file — a crash right after
/// rotation could otherwise lose the new segment even under
/// `--fsync always`.
///
/// # Errors
/// Propagates open/sync errors.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Path of segment `seq` in `dir`.
#[must_use]
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:06}.log"))
}

/// Path of the snapshot taken before segment `seq` was opened.
#[must_use]
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:06}.json"))
}

/// Sorted sequence numbers of `(segments, snapshots)` present in `dir`.
///
/// # Errors
/// Propagates directory-read errors.
pub fn scan_dir(dir: &Path) -> io::Result<(Vec<u64>, Vec<u64>)> {
    let mut segments = Vec::new();
    let mut snapshots = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("journal-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|r| r.parse().ok())
        {
            segments.push(seq);
        } else if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|r| r.parse().ok())
        {
            snapshots.push(seq);
        }
    }
    segments.sort_unstable();
    snapshots.sort_unstable();
    Ok((segments, snapshots))
}

// ---- the active journal --------------------------------------------------

/// The open, append-side view of a journal directory: one active segment
/// plus the rotation machinery. Reading and repair live in
/// [`crate::recovery`].
#[derive(Debug)]
pub struct Journal {
    config: JournalConfig,
    file: File,
    seq: u64,
    records_in_segment: u64,
    segment_bytes: u64,
    last_sync: Instant,
    /// Reused frame-encoding buffer: batch appends encode every frame into
    /// it and issue one `write_all`, so the steady state allocates nothing
    /// beyond each record's JSON serialization.
    scratch: String,
}

impl Journal {
    /// Opens segment `seq` for appending (creating it if absent);
    /// `existing_records` is how many intact records it already holds.
    /// Unless the fsync policy is [`FsyncPolicy::Never`], the journal
    /// directory is fsynced so a just-created segment's directory entry
    /// is as durable as its records.
    ///
    /// # Errors
    /// Propagates file-open errors.
    pub fn open_segment(
        config: JournalConfig,
        seq: u64,
        existing_records: u64,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&config.dir, seq))?;
        let segment_bytes = file.metadata()?.len();
        if config.fsync != FsyncPolicy::Never {
            fsync_dir(&config.dir)?;
        }
        Ok(Self {
            config,
            file,
            seq,
            records_in_segment: existing_records,
            segment_bytes,
            last_sync: Instant::now(),
            scratch: String::new(),
        })
    }

    /// Sequence number of the active segment.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records in the active segment (including its `Config` header).
    #[must_use]
    pub fn records_in_segment(&self) -> u64 {
        self.records_in_segment
    }

    /// Byte length of the active segment — with [`Journal::seq`], the
    /// journal's replication position.
    #[must_use]
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// The journal's configuration.
    #[must_use]
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// Appends one record and applies the fsync policy. On success the
    /// record is in the OS page cache at minimum; under
    /// [`FsyncPolicy::Always`] it is on stable storage.
    ///
    /// # Errors
    /// Propagates write/sync errors — the caller must treat those as
    /// fatal (fail-stop), because an unjournaled mutation must never be
    /// acknowledged.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Group commit: appends every record in one buffered `write_all` and
    /// applies the fsync policy **once** for the whole batch. The frame
    /// bytes are exactly the concatenation of what per-record
    /// [`Journal::append`] calls would have written, so segment files,
    /// replication streams, and recovery see no difference — only the
    /// number of write and fsync syscalls changes.
    ///
    /// Callers must not acknowledge any record of the batch before this
    /// returns `Ok`: the shared fsync is what makes the whole batch
    /// durable, preserving append-before-ack for every member.
    ///
    /// # Errors
    /// Propagates write/sync errors — fail-stop for the entire batch; on
    /// error none of the batch's records may be acknowledged.
    pub fn append_batch(&mut self, records: &[JournalRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        for record in records {
            encode_record_into(record, &mut self.scratch);
        }
        self.file.write_all(self.scratch.as_bytes())?;
        self.records_in_segment += records.len() as u64;
        self.segment_bytes += self.scratch.len() as u64;
        self.apply_fsync_policy()
    }

    /// Appends one already-framed line shipped from a replication
    /// primary (`frame` carries no trailing newline), keeping this
    /// journal a byte-for-byte mirror of the primary's. The caller has
    /// verified the frame via [`decode_line`].
    ///
    /// # Errors
    /// Propagates write/sync errors — fail-stop, exactly like
    /// [`Journal::append`]: an unpersisted frame must never be
    /// acknowledged back to the primary.
    pub fn append_raw_line(&mut self, frame: &str) -> io::Result<()> {
        self.file.write_all(frame.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.records_in_segment += 1;
        self.segment_bytes += frame.len() as u64 + 1;
        self.apply_fsync_policy()
    }

    fn apply_fsync_policy(&mut self) -> io::Result<()> {
        match self.config.fsync {
            FsyncPolicy::Always => self.file.sync_data()?,
            FsyncPolicy::Interval(ms) => {
                if self.last_sync.elapsed().as_millis() >= u128::from(ms) {
                    self.file.sync_data()?;
                    self.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Whether the rotation threshold has been reached.
    #[must_use]
    pub fn wants_rotation(&self) -> bool {
        self.config.snapshot_every > 0 && self.records_in_segment >= self.config.snapshot_every
    }

    /// Rotates: durably writes `snapshot_json` as `snapshot-(seq+1).json`
    /// (via a temp file and atomic rename), syncs and closes the active
    /// segment, and opens `journal-(seq+1).log` starting with the `header`
    /// record. Older segments are kept — `journal inspect` can audit the
    /// full history — but recovery only reads from the newest valid
    /// snapshot on.
    ///
    /// # Errors
    /// Propagates I/O errors; on error the journal keeps appending to the
    /// current segment (rotation failure loses no data).
    pub fn rotate(&mut self, snapshot_json: &str, header: &JournalRecord) -> io::Result<()> {
        self.rotate_without_header(snapshot_json)?;
        self.append(header)
    }

    /// [`Journal::rotate`] for a replication follower: snapshot and open
    /// the next segment, but do **not** append a `Config` header — the
    /// primary's header arrives as the next shipped frame, and writing a
    /// local one would break the byte-for-byte mirror.
    ///
    /// # Errors
    /// Propagates I/O errors, like [`Journal::rotate`].
    pub fn rotate_without_header(&mut self, snapshot_json: &str) -> io::Result<()> {
        let next = self.seq + 1;
        let tmp = self.config.dir.join(format!("snapshot-{next:06}.json.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(snapshot_json.as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, snapshot_path(&self.config.dir, next))?;
        // The old segment must be durable before the snapshot supersedes it.
        self.file.sync_data()?;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.config.dir, next))?;
        // The new segment's directory entry (and the snapshot's rename)
        // must survive a crash too, or recovery would come up one
        // rotation behind what was acknowledged.
        if self.config.fsync != FsyncPolicy::Never {
            fsync_dir(&self.config.dir)?;
        }
        self.file = file;
        self.seq = next;
        self.records_in_segment = 0;
        self.segment_bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> JournalRecord {
        JournalRecord::Cancel { now: 42, id }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_round_trips_through_frame() {
        let rec = JournalRecord::Advance { to: 12_345 };
        let line = encode_record(&rec);
        assert!(line.ends_with('\n'));
        assert_eq!(decode_line(line.trim_end().as_bytes()).unwrap(), rec);
    }

    #[test]
    fn decode_rejects_tampering() {
        let line = encode_record(&record(7));
        let line = line.trim_end();
        // Flip one payload byte: checksum must catch it.
        let mut bytes = line.as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = decode_line(&bytes).unwrap_err();
        assert!(
            err.contains("checksum mismatch") || err.contains("length mismatch"),
            "unexpected error: {err}"
        );
        // Truncate the payload: length prefix must catch it.
        let err = decode_line(&line.as_bytes()[..line.len() - 3]).unwrap_err();
        assert!(err.contains("length mismatch"), "unexpected error: {err}");
        // Garbage framing.
        assert!(decode_line(b"not a record").is_err());
        assert!(decode_line(b"").is_err());
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(250)
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:").is_err());
        assert_eq!(FsyncPolicy::Interval(250).to_string(), "interval:250");
    }
}
