//! # lumos-serve
//!
//! An online scheduling service wrapped around the incremental simulation
//! core ([`lumos_sim::SimSession`]). Clients talk newline-delimited JSON
//! over TCP (and optionally stdin): submit jobs, cancel them, query their
//! lifecycle, read live metrics, advance virtual time, and shut the
//! service down with a graceful drain.
//!
//! Because the online path and batch replay ([`lumos_sim::simulate`])
//! share one event loop, a server fed an arrival sequence reports — in
//! its shutdown response — exactly the metrics a batch replay of that
//! sequence produces. The service is therefore also a testbed: point a
//! load generator at it (see `examples/serve_load.rs`) and the answers
//! are reproducible.
//!
//! With [`ServeConfig::journal`] set, the server is **durable**: every
//! accepted mutation is written ahead to a checksummed journal
//! ([`journal`]) and a restart replays it back to the exact pre-crash
//! state ([`recovery`]) — the determinism of the simulation core makes
//! replayed state and metrics byte-identical to an uninterrupted run.
//!
//! With [`ServeConfig::predictor`] set, the scheduler plans with a
//! streaming walltime predictor ([`lumos_predict::Predictor`]) instead of
//! the clients' requested walltimes; predictor state is checkpointed in
//! rotation snapshots and reconstructed by journal replay, so the
//! durability guarantee covers prediction too.
//!
//! ```no_run
//! use lumos_core::SystemSpec;
//! use lumos_serve::{ServeConfig, Server};
//!
//! let config = ServeConfig::new(SystemSpec::theta());
//! let server = Server::bind("127.0.0.1:7421", config).unwrap();
//! server.run(false).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod recovery;
pub mod replication;
pub mod server;

pub use journal::{FsyncPolicy, Journal, JournalConfig, JournalRecord};
pub use lumos_predict::{Predictor, PredictorConfig};
pub use metrics::{LiveMetrics, WAIT_PERCENTILES};
pub use protocol::{PredictionStats, ReplicationStats, Request, Response, ServeStats, SubmitSpec};
pub use recovery::{recover, recover_follower, Recovered, ServerSnapshot};
pub use replication::{ReplLink, REPL_WINDOW};
pub use server::{ServeConfig, Server};
