//! Live scheduler metrics, fed from drained session events.
//!
//! Wait-time percentiles use the P² streaming estimators from
//! `lumos-stats`, so the server reports p50/p90/p99 waits in O(1) memory
//! no matter how long it runs.

use lumos_core::Duration;
use lumos_sim::{SimEvent, SimSession};
use lumos_stats::{QuantileBank, Summary};

use crate::protocol::ServeStats;

/// The percentiles `stats` reports.
pub const WAIT_PERCENTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Streaming aggregates over everything the session has done so far.
pub struct LiveMetrics {
    bsld_bound: Duration,
    wait_quantiles: QuantileBank,
    wait_summary: Summary,
    bsld_summary: Summary,
    rejected: u64,
}

impl LiveMetrics {
    /// Empty metrics with the configured bounded-slowdown bound.
    #[must_use]
    pub fn new(bsld_bound: Duration) -> Self {
        Self {
            bsld_bound,
            wait_quantiles: QuantileBank::new(&WAIT_PERCENTILES),
            wait_summary: Summary::new(),
            bsld_summary: Summary::new(),
            rejected: 0,
        }
    }

    /// Records a refused submission (validation failure or backpressure).
    pub fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Absorbs drained session events; `session` resolves job lookups for
    /// slowdown computation.
    pub fn absorb(&mut self, events: &[SimEvent], session: &SimSession) {
        for event in events {
            if let SimEvent::Started { id, wait, .. } = event {
                self.wait_quantiles.observe(*wait as f64);
                self.wait_summary.add(*wait as f64);
                if let Some(bsld) = session
                    .job(*id)
                    .and_then(|j| j.bounded_slowdown(self.bsld_bound))
                {
                    self.bsld_summary.add(bsld);
                }
            }
        }
    }

    /// The `stats` payload for the current session state.
    /// `extra_rejected` counts rejections recorded outside the scheduler
    /// loop (connection-side backpressure).
    #[must_use]
    pub fn report(&self, session: &SimSession, extra_rejected: u64) -> ServeStats {
        ServeStats {
            snapshot: session.snapshot(),
            wait_quantiles: self.wait_quantiles.estimates(),
            mean_wait: self.wait_summary.mean(),
            mean_bsld: self.bsld_summary.mean(),
            rejected: self.rejected + extra_rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};
    use lumos_sim::SimConfig;

    #[test]
    fn absorb_tracks_started_jobs() {
        let mut spec = SystemSpec::theta();
        spec.total_nodes = 100;
        spec.units_per_node = 1;
        spec.total_units = 100;
        let mut session = SimSession::new(&spec, SimConfig::default());
        let mut metrics = LiveMetrics::new(10);

        session.submit(Job::basic(1, 1, 0, 50, 100)).unwrap();
        session.submit(Job::basic(2, 1, 0, 50, 100)).unwrap();
        session.advance_to(200);
        let events = session.drain_events();
        metrics.absorb(&events, &session);

        let stats = metrics.report(&session, 0);
        assert_eq!(stats.snapshot.finished, 2);
        // Job 1 waits 0, job 2 waits 50.
        assert!((stats.mean_wait - 25.0).abs() < 1e-9);
        assert!(stats.mean_bsld >= 1.0);
        assert_eq!(stats.rejected, 0);
        let (p, est) = stats.wait_quantiles[0];
        assert!((p - 0.5).abs() < 1e-12);
        assert!(est.is_some());
    }
}
