//! Live scheduler metrics, fed from drained session events.
//!
//! Wait-time percentiles use the P² streaming estimators from
//! `lumos-stats`, so the server reports p50/p90/p99 waits in O(1) memory
//! no matter how long it runs.
//!
//! # Accuracy of the streamed percentiles
//!
//! P² is an approximation: it keeps five markers per percentile instead of
//! the whole stream. The estimates are **exact for the first five
//! observations** and, on the deterministic sequences pinned by this
//! module's tests (uniform, exponential-like, and bimodal wait
//! distributions of 10 000 observations), stay within **5 % relative
//! error** of the exact type-7 sample quantile — typically well under
//! 2 % for p50/p90. Pathological adversarial orderings can do worse; for
//! publication-grade numbers, compute exact quantiles offline from the
//! journal instead. The estimator state serializes losslessly (f64 JSON
//! round-trips are exact), so recovered servers continue the same
//! estimate trajectory to the bit.
//!
//! This state is part of every rotation snapshot, which is why the
//! group-commit scheduler ([`crate::server`]) absorbs events *per
//! command* rather than per batch: a mid-batch `Stats` reader and a
//! snapshot taken at a batch boundary must both see exactly the metrics
//! a per-record server would have produced, and no batching counters
//! live here where they would leak into snapshot bytes.

use lumos_core::Duration;
use lumos_sim::{SimEvent, SimSession};
use lumos_stats::{QuantileBank, Summary};
use serde::{Deserialize, Serialize};

use crate::protocol::{
    PredictionStats, ReplicationStats, ServeStats, TenantServeStats, TenantsStats,
};

/// The percentiles `stats` reports.
pub const WAIT_PERCENTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Streaming wait-time aggregates for one tenant, parallel to the
/// server's tenant table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TenantWaits {
    wait_quantiles: QuantileBank,
    wait_summary: Summary,
}

impl TenantWaits {
    fn new() -> Self {
        Self {
            wait_quantiles: QuantileBank::new(&WAIT_PERCENTILES),
            wait_summary: Summary::new(),
        }
    }
}

/// Streaming aggregates over everything the session has done so far.
///
/// Serializable so a journaling server can checkpoint its metrics next to
/// the session state; the rejection counter is part of the state, but
/// connection-side backpressure rejections (counted outside the scheduler
/// loop) are process-local and reset on recovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiveMetrics {
    bsld_bound: Duration,
    wait_quantiles: QuantileBank,
    wait_summary: Summary,
    bsld_summary: Summary,
    rejected: u64,
    /// Completed jobs scored against their planned walltime.
    pred_scored: u64,
    /// Of those, jobs whose planned walltime undershot the true runtime.
    pred_under: u64,
    /// Absolute error |planned walltime − runtime| over scored jobs.
    pred_abs_err: Summary,
    /// Per-tenant wait aggregates in tenant-table order; `None` when the
    /// server runs without a tenant table — and in pre-tenancy
    /// checkpoints, which deserialize with `None`.
    tenant_waits: Option<Vec<TenantWaits>>,
}

impl LiveMetrics {
    /// Empty metrics with the configured bounded-slowdown bound.
    #[must_use]
    pub fn new(bsld_bound: Duration) -> Self {
        Self::new_with_tenants(bsld_bound, None)
    }

    /// [`LiveMetrics::new`] with per-tenant wait tracking for a tenant
    /// table of `tenants` entries.
    #[must_use]
    pub fn new_with_tenants(bsld_bound: Duration, tenants: Option<usize>) -> Self {
        Self {
            bsld_bound,
            wait_quantiles: QuantileBank::new(&WAIT_PERCENTILES),
            wait_summary: Summary::new(),
            bsld_summary: Summary::new(),
            rejected: 0,
            pred_scored: 0,
            pred_under: 0,
            pred_abs_err: Summary::new(),
            tenant_waits: tenants.map(|n| (0..n).map(|_| TenantWaits::new()).collect()),
        }
    }

    /// Records a refused submission (validation failure or backpressure).
    pub fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Absorbs drained session events; `session` resolves job lookups for
    /// slowdown computation.
    pub fn absorb(&mut self, events: &[SimEvent], session: &SimSession) {
        for event in events {
            match event {
                SimEvent::Started { id, wait, .. } => {
                    self.wait_quantiles.observe(*wait as f64);
                    self.wait_summary.add(*wait as f64);
                    if let (Some(banks), Some(tenant)) =
                        (self.tenant_waits.as_mut(), session.tenant_of(*id))
                    {
                        if let Some(tw) = banks.get_mut(usize::from(tenant)) {
                            tw.wait_quantiles.observe(*wait as f64);
                            tw.wait_summary.add(*wait as f64);
                        }
                    }
                    if let Some(bsld) = session
                        .job(*id)
                        .and_then(|j| j.bounded_slowdown(self.bsld_bound))
                    {
                        self.bsld_summary.add(bsld);
                    }
                }
                SimEvent::Finished { id, .. } => {
                    // Score the walltime the scheduler actually planned
                    // with against the observed runtime — with a predictor
                    // enabled this is live prediction accuracy.
                    if let (Some(job), Some(plan)) = (session.job(*id), session.plan_walltime(*id))
                    {
                        self.pred_scored += 1;
                        if plan < job.runtime {
                            self.pred_under += 1;
                        }
                        self.pred_abs_err.add((plan - job.runtime).abs() as f64);
                    }
                }
                _ => {}
            }
        }
    }

    /// The `stats` payload for the current session state.
    /// `extra_rejected` counts rejections recorded outside the scheduler
    /// loop (connection-side backpressure); `predictor` is the active
    /// walltime predictor's display name, if one is enabled;
    /// `replication` is the role/progress block on replicating servers.
    #[must_use]
    pub fn report(
        &self,
        session: &SimSession,
        extra_rejected: u64,
        predictor: Option<&str>,
        replication: Option<ReplicationStats>,
    ) -> ServeStats {
        ServeStats {
            snapshot: session.snapshot(),
            wait_quantiles: self.wait_quantiles.estimates(),
            mean_wait: self.wait_summary.mean(),
            mean_bsld: self.bsld_summary.mean(),
            rejected: self.rejected + extra_rejected,
            predictor: predictor.map(str::to_owned),
            prediction: PredictionStats {
                jobs: self.pred_scored,
                underestimate_rate: if self.pred_scored == 0 {
                    0.0
                } else {
                    self.pred_under as f64 / self.pred_scored as f64
                },
                mean_abs_error: self.pred_abs_err.mean(),
            },
            tenants: self.tenants_block(session),
            replication,
        }
    }

    /// The per-tenant rows plus Jain's fairness index, when tenancy is on.
    fn tenants_block(&self, session: &SimSession) -> Option<TenantsStats> {
        let usage = session.tenant_usage()?;
        // Fairness over weight-normalized delivered service, counting
        // only tenants that asked for anything: an idle tenant is not
        // being treated unfairly, it has no demand.
        let served: Vec<f64> = usage
            .iter()
            .filter(|u| u.counts.submitted > 0)
            .map(|u| u.served_unit_seconds as f64 / u.weight)
            .collect();
        let fairness = lumos_stats::jain_index(&served).unwrap_or(1.0);
        let empty: &[TenantWaits] = &[];
        let banks = self.tenant_waits.as_deref().unwrap_or(empty);
        let tenants = usage
            .into_iter()
            .enumerate()
            .map(|(i, u)| match banks.get(i) {
                Some(tw) => TenantServeStats {
                    usage: u,
                    wait_quantiles: tw.wait_quantiles.estimates(),
                    mean_wait: tw.wait_summary.mean(),
                },
                None => TenantServeStats {
                    usage: u,
                    wait_quantiles: WAIT_PERCENTILES.iter().map(|&p| (p, None)).collect(),
                    mean_wait: 0.0,
                },
            })
            .collect();
        Some(TenantsStats { fairness, tenants })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};
    use lumos_sim::SimConfig;

    #[test]
    fn absorb_tracks_started_jobs() {
        let mut spec = SystemSpec::theta();
        spec.total_nodes = 100;
        spec.units_per_node = 1;
        spec.total_units = 100;
        let mut session = SimSession::new(&spec, SimConfig::default());
        let mut metrics = LiveMetrics::new(10);

        session.submit(Job::basic(1, 1, 0, 50, 100)).unwrap();
        session.submit(Job::basic(2, 1, 0, 50, 100)).unwrap();
        session.advance_to(200);
        let events = session.drain_events();
        metrics.absorb(&events, &session);

        let stats = metrics.report(&session, 0, None, None);
        assert_eq!(stats.snapshot.finished, 2);
        // Job 1 waits 0, job 2 waits 50.
        assert!((stats.mean_wait - 25.0).abs() < 1e-9);
        assert!(stats.mean_bsld >= 1.0);
        assert_eq!(stats.rejected, 0);
        let (p, est) = stats.wait_quantiles[0];
        assert!((p - 0.5).abs() < 1e-12);
        assert!(est.is_some());
    }

    /// Feeds a deterministic wait sequence through the same `absorb` path
    /// the server uses (fabricated `Started` events against an empty
    /// session — unknown ids simply skip the slowdown lookup).
    fn absorb_waits(waits: &[f64]) -> LiveMetrics {
        let session = SimSession::new(&SystemSpec::theta(), SimConfig::default());
        let mut metrics = LiveMetrics::new(10);
        for (i, &w) in waits.iter().enumerate() {
            let events = [SimEvent::Started {
                id: i as u64,
                time: 0,
                wait: w as i64,
            }];
            metrics.absorb(&events, &session);
        }
        metrics
    }

    /// Asserts every reported percentile is within `bound` relative error
    /// of the exact type-7 quantile of `waits` (absolute error for
    /// near-zero quantiles).
    fn assert_quantiles_close(waits: &[f64], bound: f64) {
        let metrics = absorb_waits(waits);
        let session = SimSession::new(&SystemSpec::theta(), SimConfig::default());
        let stats = metrics.report(&session, 0, None, None);
        for &(p, est) in &stats.wait_quantiles {
            let est = est.expect("stream is non-empty");
            let exact = lumos_stats::quantile(waits, p);
            let err = if exact.abs() > 1.0 {
                (est - exact).abs() / exact.abs()
            } else {
                (est - exact).abs()
            };
            assert!(
                err <= bound,
                "p{}: estimate {est} vs exact {exact} (err {err:.4})",
                p * 100.0
            );
        }
    }

    // The deterministic sequences backing the documented 5% accuracy
    // bound (module docs). Waits are integer seconds on the wire, so the
    // generators round to integers before comparison.

    #[test]
    fn p2_tracks_uniform_waits_within_bound() {
        let mut rng = lumos_stats::Rng::new(1234);
        let waits: Vec<f64> = (0..10_000)
            .map(|_| (rng.next_f64() * 5_000.0).floor())
            .collect();
        assert_quantiles_close(&waits, 0.05);
    }

    #[test]
    fn p2_tracks_exponential_waits_within_bound() {
        // Skewed like real wait times: many short waits, a long tail.
        let mut rng = lumos_stats::Rng::new(99);
        let waits: Vec<f64> = (0..10_000)
            .map(|_| (-(1.0 - rng.next_f64()).ln() * 600.0).floor())
            .collect();
        assert_quantiles_close(&waits, 0.05);
    }

    #[test]
    fn p2_tracks_bimodal_waits_within_bound() {
        // Interactive jobs wait seconds; batch jobs wait hours.
        let mut rng = lumos_stats::Rng::new(7);
        let waits: Vec<f64> = (0..10_000)
            .map(|_| {
                if rng.next_f64() < 0.7 {
                    (rng.next_f64() * 30.0).floor()
                } else {
                    (3_600.0 + rng.next_f64() * 7_200.0).floor()
                }
            })
            .collect();
        assert_quantiles_close(&waits, 0.05);
    }

    #[test]
    fn metrics_round_trip_through_json() {
        let mut rng = lumos_stats::Rng::new(5);
        let waits: Vec<f64> = (0..500).map(|_| (rng.next_f64() * 100.0).floor()).collect();
        let mut metrics = absorb_waits(&waits);
        metrics.record_rejection();
        let json = serde_json::to_string(&metrics).unwrap();
        let restored: LiveMetrics = serde_json::from_str(&json).unwrap();
        let session = SimSession::new(&SystemSpec::theta(), SimConfig::default());
        let a = metrics.report(&session, 0, None, None);
        let b = restored.report(&session, 0, None, None);
        assert_eq!(a, b, "restored metrics report identically");
    }
}
