//! Crash recovery: rebuilding a server from its journal directory.
//!
//! Recovery is deterministic replay. The journal holds every
//! state-mutating command the crashed server acknowledged (see
//! [`crate::journal`]); [`lumos_sim::SimSession`] is a pure function of
//! its command sequence; therefore loading the newest valid snapshot and
//! replaying the segments after it reconstructs the pre-crash session —
//! and, because [`crate::metrics::LiveMetrics`] absorbs the replayed
//! events through the same code path the live server uses, the recovered
//! metrics are byte-identical too.
//!
//! Damage never aborts recovery, it only shrinks what is recovered:
//! a torn tail is truncated with a warning; an unreadable snapshot falls
//! back to the previous one (or to empty + full replay); segments after a
//! gap or a mid-history tear are quarantined (renamed `*.orphaned`) so
//! the journal stays linear.

use std::io;
use std::path::Path;

use lumos_core::SystemSpec;
use lumos_predict::{OnlinePredictor, Predictor};
use lumos_sim::{SimSession, TenantTable};
use serde::{Deserialize, Serialize};

use crate::journal::{self, Journal, JournalConfig, JournalRecord};
use crate::metrics::LiveMetrics;
use crate::server::{job_from_spec, new_session, ServeConfig};

/// What a rotation snapshot file (`snapshot-NNNNNN.json`) contains: the
/// machine, the full session state, the metrics accumulated so far, and
/// the walltime predictor's streaming state (absent when no predictor is
/// enabled — and in pre-predictor snapshots, which deserialize with
/// `None`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// The machine being scheduled (partition geometry derives from it).
    pub system: SystemSpec,
    /// Complete scheduling state.
    pub state: lumos_sim::SessionState,
    /// Streaming metrics at the moment of the snapshot.
    pub metrics: LiveMetrics,
    /// Walltime predictor state at the moment of the snapshot.
    pub predictor: Option<Predictor>,
}

/// Serializes a rotation snapshot.
#[must_use]
pub fn snapshot_json(
    system: &SystemSpec,
    session: &SimSession,
    metrics: &LiveMetrics,
    predictor: Option<&Predictor>,
) -> String {
    serde_json::to_string(&ServerSnapshot {
        system: system.clone(),
        state: session.save_state(),
        metrics: metrics.clone(),
        predictor: predictor.cloned(),
    })
    .expect("snapshots serialize")
}

/// Everything [`recover`] rebuilt.
#[derive(Debug)]
pub struct Recovered {
    /// The session, in its pre-crash state.
    pub session: SimSession,
    /// Metrics, byte-identical to the crashed server's.
    pub metrics: LiveMetrics,
    /// Walltime predictor, reconstructed to the crashed server's exact
    /// streaming state (snapshot + deterministic journal replay).
    pub predictor: Option<Predictor>,
    /// The system the recovered server schedules (the journal's view wins
    /// over the CLI's on mismatch).
    pub system: SystemSpec,
    /// The journal, open for appending where the crashed server stopped.
    pub journal: Journal,
    /// Human-readable warnings (torn tails, config drift, quarantined
    /// segments); empty for a clean recovery.
    pub warnings: Vec<String>,
    /// Mutating records replayed (excluding `Config` headers).
    pub replayed: u64,
    /// True when nothing was recovered (no snapshot loaded, no mutating
    /// record replayed): the session still runs the CLI-provided
    /// configuration and a journaled `Config` header may adopt a
    /// different one. A replication follower continues this flag across
    /// the frames it applies.
    pub virgin: bool,
}

/// Recovers server state from `jc.dir`, creating a fresh journal when the
/// directory is empty. Never fails on *damaged* journal content — only on
/// real I/O errors.
///
/// # Errors
/// Propagates filesystem errors (unreadable directory, failed truncate or
/// rename, failed segment open).
pub fn recover(serve: &ServeConfig, jc: &JournalConfig) -> io::Result<Recovered> {
    recover_impl(serve, jc, false)
}

/// [`recover`] for a replication follower: identical, except an empty
/// active segment is *not* given a `Config` header — the follower's
/// journal must stay a byte-for-byte mirror of the primary's, whose
/// header arrives over the replication stream.
///
/// # Errors
/// Propagates filesystem errors, like [`recover`].
pub fn recover_follower(serve: &ServeConfig, jc: &JournalConfig) -> io::Result<Recovered> {
    recover_impl(serve, jc, true)
}

fn recover_impl(serve: &ServeConfig, jc: &JournalConfig, follower: bool) -> io::Result<Recovered> {
    std::fs::create_dir_all(&jc.dir)?;
    let (segments, snapshots) = journal::scan_dir(&jc.dir)?;
    let mut warnings = Vec::new();

    // 1. Newest loadable snapshot, else empty state.
    let mut base = None;
    for &seq in snapshots.iter().rev() {
        if let Some(loaded) = load_snapshot(&jc.dir, seq, &mut warnings) {
            base = Some((seq, loaded));
            break;
        }
    }
    let mut virgin = base.is_none();
    let (start_seq, (mut system, mut session, mut metrics, mut predictor)) =
        base.unwrap_or_else(|| {
            (
                0,
                (
                    serve.system.clone(),
                    new_session(serve),
                    LiveMetrics::new_with_tenants(
                        serve.sim.bsld_bound,
                        serve.tenants.as_ref().map(TenantTable::len),
                    ),
                    serve.predictor.map(Predictor::new),
                ),
            )
        });
    if system != serve.system {
        warnings.push(
            "journaled system differs from the configured one; continuing the journaled system"
                .into(),
        );
    }

    // 2. The contiguous run of segments from the snapshot on; anything
    //    after a gap is unusable history.
    let mut contiguous = Vec::new();
    let mut expected = start_seq;
    for &seq in segments.iter().filter(|&&s| s >= start_seq) {
        if seq != expected {
            warnings.push(format!(
                "segment gap: expected journal-{expected:06}.log, found journal-{seq:06}.log; \
                 quarantining later segments"
            ));
            break;
        }
        contiguous.push(seq);
        expected = seq + 1;
    }

    // 3. Replay, truncating a torn tail and stopping at mid-history tears.
    let mut replayed = 0u64;
    let mut active_seq = start_seq;
    let mut active_records = 0u64;
    let mut stop_after = None;
    for (i, &seq) in contiguous.iter().enumerate() {
        let path = journal::segment_path(&jc.dir, seq);
        let seg = journal::read_segment(&path)?;
        if let Some(torn) = &seg.torn {
            warnings.push(format!(
                "journal-{seq:06}.log: torn record at byte {}: {}; truncating",
                torn.offset, torn.reason
            ));
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(torn.offset)?;
            file.sync_data()?;
            if i + 1 < contiguous.len() {
                warnings.push(format!(
                    "journal-{seq:06}.log was torn mid-history; quarantining later segments"
                ));
                stop_after = Some(i);
            }
        }
        active_seq = seq;
        active_records = seg.records.len() as u64;
        for record in seg.records {
            replayed += apply(
                record,
                &mut system,
                &mut session,
                &mut metrics,
                &mut predictor,
                serve,
                &mut virgin,
                &mut warnings,
            );
        }
        if stop_after.is_some() {
            break;
        }
    }

    // 4. Quarantine segments that can no longer be part of linear history.
    let mut quarantined = false;
    for &seq in segments.iter().filter(|&&s| s > active_seq) {
        let from = journal::segment_path(&jc.dir, seq);
        let to = from.with_extension("log.orphaned");
        std::fs::rename(&from, &to)?;
        quarantined = true;
        warnings.push(format!(
            "quarantined journal-{seq:06}.log as {}",
            to.display()
        ));
    }
    if quarantined {
        // The renames must be durable: a crash must not resurrect an
        // orphaned segment under its original name, where a second
        // recovery would replay it as linear history.
        journal::fsync_dir(&jc.dir)?;
    }

    // 5. Reopen the active segment for appending; a brand-new (or fully
    //    truncated) segment gets its Config header — except on a
    //    follower, whose journal mirrors the primary's bytes.
    let mut journal = Journal::open_segment(jc.clone(), active_seq, active_records)?;
    if journal.records_in_segment() == 0 && !follower {
        journal.append(&JournalRecord::Config {
            system: system.clone(),
            sim: *session.config(),
            predictor: predictor.as_ref().map(Predictor::config),
            tenants: session.tenant_table().cloned(),
        })?;
    }

    Ok(Recovered {
        session,
        metrics,
        predictor,
        system,
        journal,
        warnings,
        replayed,
        virgin,
    })
}

/// Loads and restores one snapshot file; on any failure, warns and
/// returns `None` so recovery falls back to an older snapshot.
fn load_snapshot(
    dir: &Path,
    seq: u64,
    warnings: &mut Vec<String>,
) -> Option<(SystemSpec, SimSession, LiveMetrics, Option<Predictor>)> {
    let path = journal::snapshot_path(dir, seq);
    let mut fail = |what: String| {
        warnings.push(format!(
            "snapshot-{seq:06}.json: {what}; falling back to an earlier snapshot"
        ));
        None
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return fail(format!("unreadable: {e}")),
    };
    let snap: ServerSnapshot = match serde_json::from_str(&text) {
        Ok(snap) => snap,
        Err(e) => return fail(format!("corrupt: {e}")),
    };
    match SimSession::restore(&snap.system, snap.state) {
        Ok(session) => Some((snap.system, session, snap.metrics, snap.predictor)),
        Err(e) => fail(format!("inconsistent: {e}")),
    }
}

/// Applies one journal record; returns 1 for a replayed mutation, 0 for a
/// header. Inconsistencies are warned about and skipped — a damaged
/// journal degrades recovery, it never aborts it. Also the follower-side
/// apply path: a replication follower feeds every shipped frame through
/// this function, so following *is* continuous recovery.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply(
    record: JournalRecord,
    system: &mut SystemSpec,
    session: &mut SimSession,
    metrics: &mut LiveMetrics,
    predictor: &mut Option<Predictor>,
    serve: &ServeConfig,
    virgin: &mut bool,
    warnings: &mut Vec<String>,
) -> u64 {
    match record {
        JournalRecord::Config {
            system: js,
            sim,
            predictor: jp,
            tenants: jt,
        } => {
            let differs = js != *system
                || sim != *session.config()
                || jp != predictor.as_ref().map(Predictor::config)
                || jt.as_ref() != session.tenant_table();
            if differs && *virgin {
                // The journal was written under a different configuration
                // than the CLI provided this time. Continuity wins: adopt
                // the journaled configuration before replaying.
                if js != serve.system
                    || sim != serve.sim
                    || jp != serve.predictor
                    || jt != serve.tenants
                {
                    warnings.push(
                        "journal header differs from the configured system/policy; \
                         continuing the journaled configuration"
                            .into(),
                    );
                }
                let mut s = match &jt {
                    Some(table) => SimSession::new_with_tenants(&js, sim, table.clone()),
                    None => SimSession::new(&js, sim),
                };
                s.advance_to(0);
                *session = s;
                *metrics = LiveMetrics::new_with_tenants(
                    sim.bsld_bound,
                    jt.as_ref().map(TenantTable::len),
                );
                *predictor = jp.map(Predictor::new);
                *system = js;
            } else if differs {
                warnings.push(
                    "mid-journal Config header disagrees with replayed state; ignoring it".into(),
                );
            }
            0
        }
        JournalRecord::Submit { now, job } => {
            *virgin = false;
            session.advance_to(now);
            let spec_id = job.id;
            // Mirror the live submit path exactly: resolve the tenant and
            // predict before the submission, observe only when it is
            // accepted — rejected submissions were never journaled, so
            // they never touched the live predictor either.
            let outcome = session
                .resolve_tenant(job.tenant.as_deref())
                .and_then(|tenant| {
                    let built = job_from_spec(&job, session.now().max(0));
                    let estimate = predictor
                        .as_ref()
                        .map(|p| p.predict(built.user, built.walltime));
                    let (user, runtime) = (built.user, built.runtime);
                    session.submit_with_tenant(built, tenant, estimate)?;
                    if let Some(p) = predictor.as_mut() {
                        p.observe(user, runtime);
                    }
                    session.advance_to(session.now());
                    Ok(())
                });
            if let Err(e) = outcome {
                warnings.push(format!(
                    "replay: journaled submission of job {spec_id} no longer applies ({e}); skipped"
                ));
            }
            let events = session.drain_events();
            metrics.absorb(&events, session);
            1
        }
        JournalRecord::Cancel { now, id } => {
            *virgin = false;
            session.advance_to(now);
            if !session.cancel(id) {
                warnings.push(format!(
                    "replay: journaled cancellation of job {id} no longer applies; skipped"
                ));
            }
            let events = session.drain_events();
            metrics.absorb(&events, session);
            1
        }
        JournalRecord::Advance { to } => {
            *virgin = false;
            session.advance_to(to);
            let events = session.drain_events();
            metrics.absorb(&events, session);
            1
        }
    }
}
