//! The scheduler service: one long-lived scheduling loop, many clients.
//!
//! Architecture: connection threads (one per TCP client, optionally one
//! for stdin) parse NDJSON request lines and push them onto a **bounded**
//! command queue; a single scheduler thread owns the [`SimSession`] and
//! processes commands in arrival order, so no locks guard the simulation
//! state. When the queue is full, submissions are rejected immediately
//! with a reason — backpressure is explicit, never blocking — while
//! cheap control commands (stats, query, ...) block for a slot.
//!
//! Time: with `time_scale > 0` the server maps wall-clock seconds onto
//! simulation seconds (1 wall second = `time_scale` sim seconds) and
//! advances the session before every command. With `time_scale == 0` the
//! server is *virtual-time*: the clock only moves on explicit `Advance`
//! commands, which makes runs deterministic and replayable.
//!
//! Shutdown: a `Shutdown` command stops command intake, drains every
//! pending and running job to completion, and answers with the same
//! [`lumos_sim::SimMetrics`] a batch replay of the identical arrival sequence would
//! produce.
//!
//! Durability: with [`ServeConfig::journal`] set, every state-mutating
//! command is appended to a write-ahead journal **before** its
//! acknowledgment is sent (see [`crate::journal`]), and startup replays
//! the journal to the pre-crash state (see [`crate::recovery`]). A failed
//! journal append is fail-stop: the command is answered with an error and
//! the server halts rather than acknowledge an unjournaled mutation.
//!
//! Throughput: the scheduler drains up to [`ServeConfig::group_commit`]
//! queued commands per round and group-commits their journal records —
//! one buffered write, one fsync, replies released only after the shared
//! fsync — while connection writers coalesce every response of a round
//! into a single flush. Neither batch changes any byte on disk or on the
//! wire, only the syscall count; see `docs/PERFORMANCE.md`.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use lumos_core::{CoreError, Job, JobStatus, SystemSpec, Timestamp};
use lumos_predict::{OnlinePredictor, Predictor, PredictorConfig};
use lumos_sim::{SimConfig, SimSession, TenantTable};

use crate::journal::{decode_line, Journal, JournalConfig, JournalRecord};
use crate::metrics::LiveMetrics;
use crate::protocol::{ReplicationStats, Request, Response, SubmitSpec};
use crate::recovery::{self, Recovered};
use crate::replication::{self, ReplLink};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The machine being scheduled.
    pub system: SystemSpec,
    /// Scheduling configuration (policy, backfill, ...).
    pub sim: SimConfig,
    /// Bounded command-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Simulation seconds per wall-clock second; `0` = virtual time
    /// (clock moves only on `Advance` commands).
    pub time_scale: f64,
    /// Write-ahead journaling; `None` runs without durability.
    pub journal: Option<JournalConfig>,
    /// Online walltime predictor; `None` schedules with client-requested
    /// walltimes only.
    pub predictor: Option<PredictorConfig>,
    /// Static tenant table (`--tenants FILE`); `None` serves one
    /// undifferentiated queue with no quotas or per-tenant accounting.
    pub tenants: Option<TenantTable>,
    /// Stream the journal to a hot-standby follower at this address
    /// (`--replicate-to`). Requires [`ServeConfig::journal`].
    pub replicate_to: Option<String>,
    /// Run as a read-only follower of the primary at this address
    /// (`--follow`): apply replicated frames, refuse writes until
    /// promoted. Requires [`ServeConfig::journal`].
    pub follow: Option<String>,
    /// Group-commit window (`--group-commit N`): the scheduler drains up
    /// to this many already-queued commands per round and journals their
    /// records with one buffered write and **one** fsync, releasing every
    /// reply only after that shared fsync. `0` or `1` disables batching
    /// (one append + one fsync per record, the pre-group-commit
    /// behaviour). Frame bytes are identical either way, so journals,
    /// replication mirrors, and recovery cannot tell the difference; see
    /// [`crate::journal::Journal::append_batch`].
    pub group_commit: usize,
}

impl ServeConfig {
    /// Defaults: virtual time, queue of 1024 commands, no journal, no
    /// predictor, group commit of 64 (harmless when clients run in
    /// lockstep — a batch is only as large as the queue backlog).
    #[must_use]
    pub fn new(system: SystemSpec) -> Self {
        Self {
            system,
            sim: SimConfig::default(),
            queue_capacity: 1024,
            time_scale: 0.0,
            journal: None,
            predictor: None,
            tenants: None,
            replicate_to: None,
            follow: None,
            group_commit: 64,
        }
    }
}

/// Builds a fresh session under `config`, with tenancy when configured.
pub(crate) fn new_session(config: &ServeConfig) -> SimSession {
    let mut session = match config.tenants.clone() {
        Some(table) => SimSession::new_with_tenants(&config.system, config.sim, table),
        None => SimSession::new(&config.system, config.sim),
    };
    // Sessions start at t = 0, not at the dawn of representable time.
    session.advance_to(0);
    session
}

/// One queued command and the channel its response travels back on.
struct Envelope {
    req: Request,
    reply: mpsc::Sender<Response>,
}

/// Shared connection-side state.
struct Shared {
    commands: SyncSender<Envelope>,
    shutting_down: AtomicBool,
    /// Submissions rejected by backpressure (queue full).
    backpressure_rejects: AtomicU64,
    queue_capacity: usize,
    /// Set once the reply that ended the scheduler loop (`Bye`, or the
    /// fail-stop error) has been flushed to its client — or provably never
    /// will be. `run` waits on it so the process cannot exit between the
    /// scheduler answering and the connection thread writing the answer.
    terminal_flushed: Mutex<bool>,
    terminal_cv: Condvar,
}

impl Shared {
    fn mark_terminal_flushed(&self) {
        *self.terminal_flushed.lock().expect("terminal flag lock") = true;
        self.terminal_cv.notify_all();
    }
}

/// Whether this request must not share a group-commit round with plain
/// commands: it either rewrites the loop's own state (promotion,
/// replication frames) or ends the loop (shutdown), so it is handled
/// alone, in arrival order.
fn is_barrier(req: &Request) -> bool {
    matches!(
        req,
        Request::Promote
            | Request::ReplHello
            | Request::ReplSegment { .. }
            | Request::ReplRecord { .. }
            | Request::Shutdown
    )
}

/// Whether this response is the one that ends the scheduler loop, so its
/// flush gates process exit.
fn is_terminal(response: &Response) -> bool {
    match response {
        Response::Bye { .. } => true,
        Response::Error { message } => message.ends_with("server stopping"),
        _ => false,
    }
}

/// A bound scheduling server. Create with [`Server::bind`], then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
}

impl Server {
    /// Binds the TCP listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener, config })
    }

    /// The bound address (useful with ephemeral ports).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the scheduler loop until a `Shutdown` command, accepting TCP
    /// clients (and stdin commands when `serve_stdin` is set, answering on
    /// stdout). Blocks the calling thread.
    ///
    /// # Errors
    /// Propagates socket errors from the initial setup.
    pub fn run(self, serve_stdin: bool) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        if (self.config.replicate_to.is_some() || self.config.follow.is_some())
            && self.config.journal.is_none()
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "replication requires a journal (--replicate-to / --follow need --journal DIR)",
            ));
        }
        // Recover (or initialize) journal state before accepting clients,
        // so the first command already sees the pre-crash session.
        let recovered = match &self.config.journal {
            Some(jc) => {
                let r = if self.config.follow.is_some() {
                    recovery::recover_follower(&self.config, jc)?
                } else {
                    recovery::recover(&self.config, jc)?
                };
                for w in &r.warnings {
                    eprintln!("lumos-serve: recovery: {w}");
                }
                if r.replayed > 0 {
                    eprintln!(
                        "lumos-serve: recovered {} journaled commands (t = {})",
                        r.replayed,
                        r.session.now()
                    );
                }
                Some(r)
            }
            None => None,
        };
        // A replicating primary ships its journal from a dedicated sender
        // thread; the scheduler loop only nudges the link after appends.
        let link = self.config.replicate_to.as_ref().map(|target| {
            let dir = self
                .config
                .journal
                .as_ref()
                .expect("checked above: replication requires a journal")
                .dir
                .clone();
            let link = Arc::new(ReplLink::new(target.clone()));
            replication::spawn_sender(dir, Arc::clone(&link));
            link
        });
        let (tx, rx) = mpsc::sync_channel::<Envelope>(self.config.queue_capacity);
        let shared = Arc::new(Shared {
            commands: tx,
            shutting_down: AtomicBool::new(false),
            backpressure_rejects: AtomicU64::new(0),
            queue_capacity: self.config.queue_capacity,
            terminal_flushed: Mutex::new(false),
            terminal_cv: Condvar::new(),
        });

        // Accept loop.
        {
            let shared = Arc::clone(&shared);
            let listener = self.listener.try_clone()?;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &shared);
                    });
                }
            });
        }

        // Stdin loop. (`Stdin`/`Stdout` handles rather than their locks:
        // the writer half of `serve_lines` runs on its own thread, and the
        // lock guards are not `Send`.)
        if serve_stdin {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let _ = serve_lines(BufReader::new(io::stdin()), io::stdout(), &shared);
            });
        }

        scheduler_loop(&self.config, &rx, &shared, recovered, link.as_ref());
        if let Some(link) = &link {
            link.stop();
        }

        // The final reply is written by a connection thread; wait for that
        // flush, or the process could exit with the answer still queued.
        let flushed = shared.terminal_flushed.lock().expect("terminal flag lock");
        let _ = shared.terminal_cv.wait_timeout_while(
            flushed,
            std::time::Duration::from_secs(5),
            |done| !*done,
        );

        // Wake the accept loop so its thread exits.
        shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        Ok(())
    }
}

/// Which side of a replication pair this server currently is. A plain
/// (non-replicating) server is a `Primary` with no link; a promoted
/// follower becomes one too.
enum Role {
    Primary,
    Follower {
        /// Carried across applied frames so a journaled `Config` header
        /// can adopt the primary's configuration (see
        /// [`crate::recovery`]).
        virgin: bool,
        /// Frames applied since startup.
        records: u64,
        /// A primary has completed the replication handshake.
        hello_seen: bool,
    },
}

/// The single thread that owns the simulation.
fn scheduler_loop(
    config: &ServeConfig,
    rx: &Receiver<Envelope>,
    shared: &Shared,
    recovered: Option<Recovered>,
    link: Option<&Arc<ReplLink>>,
) {
    let recovered_virgin = recovered.as_ref().is_none_or(|r| r.virgin);
    let (mut system, mut session, mut metrics, mut predictor, mut journal) = match recovered {
        Some(r) => (r.system, r.session, r.metrics, r.predictor, Some(r.journal)),
        None => {
            let session = new_session(config);
            (
                config.system.clone(),
                session,
                LiveMetrics::new_with_tenants(
                    config.sim.bsld_bound,
                    config.tenants.as_ref().map(TenantTable::len),
                ),
                config.predictor.map(Predictor::new),
                None,
            )
        }
    };
    let mut role = if config.follow.is_some() {
        Role::Follower {
            virgin: recovered_virgin,
            records: 0,
            hello_seen: false,
        }
    } else {
        Role::Primary
    };
    // Map wall-clock time onto simulation time *from where the session
    // already is*: a recovered session resumes at its pre-crash clock
    // instead of stalling until wall time catches up with it from zero.
    // (Mutable: promotion reseeds both, so the clock starts moving at
    // the moment of promotion, not retroactively from follower startup.)
    let mut sim_epoch = session.now().max(0);
    let mut epoch = Instant::now();

    // Group commit: drain up to `group` already-queued commands per
    // round, journal every record of the round with one buffered write
    // and one fsync, and release the round's replies only after that
    // shared fsync (append-before-ack holds for every member). Requests
    // that change the loop's own state (promotion, replication frames,
    // shutdown) are barriers: they end the drain and take the
    // single-command path, as does everything on a follower.
    let group = config.group_commit.max(1);
    let mut carry: Option<Envelope> = None;
    let mut batch: Vec<Envelope> = Vec::with_capacity(group);
    let mut records: Vec<JournalRecord> = Vec::with_capacity(group);
    let mut replies: Vec<(mpsc::Sender<Response>, Response, bool)> = Vec::with_capacity(group);

    'serve: loop {
        let Some(env) = carry.take().or_else(|| rx.recv().ok()) else {
            break;
        };
        if group > 1 && matches!(role, Role::Primary) && !is_barrier(&env.req) {
            batch.clear();
            batch.push(env);
            while batch.len() < group {
                match rx.try_recv() {
                    Ok(env) if is_barrier(&env.req) => {
                        carry = Some(env);
                        break;
                    }
                    Ok(env) => batch.push(env),
                    Err(_) => break,
                }
            }
            // One wall-clock advance covers the whole round: its commands
            // were all queued by now, so they share an arrival instant.
            if config.time_scale > 0.0 {
                let sim_now = sim_epoch
                    + (epoch.elapsed().as_secs_f64() * config.time_scale).floor() as Timestamp;
                session.advance_to(sim_now);
            }
            records.clear();
            replies.clear();
            for Envelope { req, reply } in batch.drain(..) {
                let repl_stats = matches!(req, Request::Stats)
                    .then(|| replication_stats(&role, link, config, journal.as_ref()))
                    .flatten();
                let (response, record) = handle(
                    req,
                    &mut session,
                    &mut metrics,
                    &mut predictor,
                    config,
                    shared,
                    repl_stats,
                );
                let journaled = record.is_some();
                if let Some(record) = record {
                    records.push(record);
                }
                let events = session.drain_events();
                metrics.absorb(&events, &session);
                replies.push((reply, response, journaled));
            }
            if !records.is_empty() {
                if let Some(journal) = journal.as_mut() {
                    if let Err(e) = journal.append_batch(&records) {
                        // Fail-stop for the whole round: none of its
                        // mutations is durable, so none may be
                        // acknowledged. Reads still get their answers.
                        eprintln!("lumos-serve: journal append failed: {e}; stopping");
                        let mut delivered = false;
                        for (reply, response, journaled) in replies.drain(..) {
                            if journaled {
                                let error = Response::Error {
                                    message: format!("journal write failed ({e}); server stopping"),
                                };
                                if reply.send(error).is_ok() {
                                    delivered = true;
                                }
                            } else {
                                let _ = reply.send(response);
                            }
                        }
                        if !delivered {
                            shared.mark_terminal_flushed();
                        }
                        break 'serve;
                    }
                    if let Some(link) = link {
                        link.notify();
                    }
                    // One rotation check per round: a segment may exceed
                    // `snapshot_every` by at most `group - 1` records,
                    // which recovery and replication are indifferent to.
                    if journal.wants_rotation() {
                        let snap = recovery::snapshot_json(
                            &system,
                            &session,
                            &metrics,
                            predictor.as_ref(),
                        );
                        let header = JournalRecord::Config {
                            system: system.clone(),
                            sim: *session.config(),
                            predictor: predictor.as_ref().map(Predictor::config),
                            tenants: session.tenant_table().cloned(),
                        };
                        if let Err(e) = journal.rotate(&snap, &header) {
                            eprintln!("lumos-serve: journal rotation failed: {e}; continuing");
                        } else if let Some(link) = link {
                            link.notify();
                        }
                    }
                }
            }
            for (reply, response, _) in replies.drain(..) {
                let _ = reply.send(response);
            }
            continue;
        }
        let Envelope { req, reply } = env;
        // A follower's clock is the primary's clock: only applied frames
        // move it, never local wall time.
        if config.time_scale > 0.0 && matches!(role, Role::Primary) {
            let sim_now = sim_epoch
                + (epoch.elapsed().as_secs_f64() * config.time_scale).floor() as Timestamp;
            session.advance_to(sim_now);
        }
        // Promotion: flip the role in place — same session, same journal,
        // same loop; only write admission and the wall clock change.
        if matches!(req, Request::Promote) {
            let response = match role {
                Role::Primary => Response::Error {
                    message: "already the primary; refusing promotion".into(),
                },
                Role::Follower { .. } => {
                    // Seal the tail: an empty segment (nothing was ever
                    // replicated) gets the Config header a primary's
                    // segment always starts with.
                    let sealed = journal.as_mut().map_or(Ok(()), |j| {
                        if j.records_in_segment() == 0 {
                            j.append(&JournalRecord::Config {
                                system: system.clone(),
                                sim: *session.config(),
                                predictor: predictor.as_ref().map(Predictor::config),
                                tenants: session.tenant_table().cloned(),
                            })
                        } else {
                            Ok(())
                        }
                    });
                    match sealed {
                        Err(e) => {
                            eprintln!("lumos-serve: promotion failed to seal the journal: {e}");
                            Response::Error {
                                message: format!("journal write failed ({e}); refusing promotion"),
                            }
                        }
                        Ok(()) => {
                            role = Role::Primary;
                            sim_epoch = session.now().max(0);
                            epoch = Instant::now();
                            eprintln!("lumos-serve: promoted to primary at t = {}", session.now());
                            Response::Promoted { now: session.now() }
                        }
                    }
                }
            };
            let _ = reply.send(response);
            continue;
        }
        // Replication frames from a primary.
        if matches!(
            req,
            Request::ReplHello | Request::ReplSegment { .. } | Request::ReplRecord { .. }
        ) {
            let (response, fail_stop) = handle_repl(
                req,
                &mut role,
                &mut system,
                &mut session,
                &mut metrics,
                &mut predictor,
                journal.as_mut(),
                config,
            );
            let undeliverable = reply.send(response).is_err();
            if fail_stop {
                if undeliverable {
                    shared.mark_terminal_flushed();
                }
                break;
            }
            continue;
        }
        // Everything else a follower may only read.
        if matches!(role, Role::Follower { .. }) {
            match req {
                Request::Submit { .. } | Request::Cancel { .. } | Request::Advance { .. } => {
                    let _ = reply.send(Response::Error {
                        message: "this server is a read-only follower; promote it first".into(),
                    });
                    continue;
                }
                Request::Shutdown => {
                    // Stop without draining: draining would journal an
                    // advance the primary never had, forking the mirror.
                    let undeliverable = reply.send(Response::Bye { metrics: None }).is_err();
                    if undeliverable {
                        shared.mark_terminal_flushed();
                    }
                    break;
                }
                _ => {}
            }
        }
        let shutdown = matches!(req, Request::Shutdown);
        let repl_stats = matches!(req, Request::Stats)
            .then(|| replication_stats(&role, link, config, journal.as_ref()))
            .flatten();
        let (response, record) = handle(
            req,
            &mut session,
            &mut metrics,
            &mut predictor,
            config,
            shared,
            repl_stats,
        );
        // Write-ahead: a mutation is durable before it is acknowledged.
        if let (Some(journal), Some(record)) = (journal.as_mut(), record.as_ref()) {
            if let Err(e) = journal.append(record) {
                // Fail-stop: never acknowledge an unjournaled mutation.
                eprintln!("lumos-serve: journal append failed: {e}; stopping");
                let undeliverable = reply
                    .send(Response::Error {
                        message: format!("journal write failed ({e}); server stopping"),
                    })
                    .is_err();
                if undeliverable {
                    shared.mark_terminal_flushed();
                }
                break;
            }
            if let Some(link) = link {
                link.notify();
            }
        }
        let events = session.drain_events();
        metrics.absorb(&events, &session);
        // Rotation happens after the absorb so the snapshot's metrics
        // include this record's events (the snapshot must equal the state
        // *before* the next segment's records).
        if !shutdown {
            if let Some(journal) = journal.as_mut() {
                if record.is_some() && journal.wants_rotation() {
                    let snap =
                        recovery::snapshot_json(&system, &session, &metrics, predictor.as_ref());
                    let header = JournalRecord::Config {
                        system: system.clone(),
                        sim: *session.config(),
                        predictor: predictor.as_ref().map(Predictor::config),
                        tenants: session.tenant_table().cloned(),
                    };
                    if let Err(e) = journal.rotate(&snap, &header) {
                        // Not fatal: the old segment is intact, recovery
                        // just replays more.
                        eprintln!("lumos-serve: journal rotation failed: {e}; continuing");
                    } else if let Some(link) = link {
                        link.notify();
                    }
                }
            }
        }
        let undeliverable = reply.send(response).is_err();
        if shutdown {
            if undeliverable {
                // The shutting-down client vanished before its `Bye`;
                // nothing is left to wait for.
                shared.mark_terminal_flushed();
            }
            break;
        }
    }
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Refuse anything that squeezed into the queue behind the shutdown.
    while let Ok(Envelope { reply, .. }) = rx.try_recv() {
        let _ = reply.send(Response::Error {
            message: "server is shutting down".into(),
        });
    }
}

/// Handles one replication-protocol request (`ReplHello`, `ReplSegment`,
/// `ReplRecord`). Returns the response plus whether the server must
/// fail-stop (a follower that cannot persist a frame must not continue).
#[allow(clippy::too_many_arguments)]
fn handle_repl(
    req: Request,
    role: &mut Role,
    system: &mut SystemSpec,
    session: &mut SimSession,
    metrics: &mut LiveMetrics,
    predictor: &mut Option<Predictor>,
    journal: Option<&mut Journal>,
    config: &ServeConfig,
) -> (Response, bool) {
    let Role::Follower {
        virgin,
        records,
        hello_seen,
    } = role
    else {
        return (
            Response::Error {
                message: "this server is not a follower (start it with --follow)".into(),
            },
            false,
        );
    };
    let Some(journal) = journal else {
        // Unreachable in practice: `--follow` requires a journal.
        return (
            Response::Error {
                message: "follower has no journal".into(),
            },
            false,
        );
    };
    match req {
        Request::ReplHello => {
            *hello_seen = true;
            (
                Response::ReplPosition {
                    seq: journal.seq(),
                    offset: journal.segment_bytes(),
                },
                false,
            )
        }
        Request::ReplSegment { seq } => {
            if seq != journal.seq() + 1 {
                return (
                    Response::Error {
                        message: format!(
                            "out-of-order segment marker {seq} (follower is at {})",
                            journal.seq()
                        ),
                    },
                    false,
                );
            }
            // Rotate with a locally synthesized snapshot: the follower's
            // state equals the primary's at this boundary, so the
            // snapshot JSON is byte-identical to the primary's too.
            let snap = recovery::snapshot_json(system, session, metrics, predictor.as_ref());
            match journal.rotate_without_header(&snap) {
                Ok(()) => (
                    Response::ReplAck {
                        seq: journal.seq(),
                        offset: 0,
                    },
                    false,
                ),
                Err(e) => {
                    eprintln!("lumos-serve: follower rotation failed: {e}; stopping");
                    (
                        Response::Error {
                            message: format!("journal write failed ({e}); server stopping"),
                        },
                        true,
                    )
                }
            }
        }
        Request::ReplRecord { frame } => {
            // Re-verify the frame end to end before trusting it: the
            // CRC travelled from the primary's disk over the wire.
            let record = match decode_line(frame.as_bytes()) {
                Ok(record) => record,
                Err(e) => {
                    return (
                        Response::Error {
                            message: format!("bad replicated frame: {e}"),
                        },
                        false,
                    )
                }
            };
            // Mirror first (append-before-ack, exactly like a primary),
            // then apply through the recovery path.
            if let Err(e) = journal.append_raw_line(&frame) {
                eprintln!("lumos-serve: follower journal append failed: {e}; stopping");
                return (
                    Response::Error {
                        message: format!("journal write failed ({e}); server stopping"),
                    },
                    true,
                );
            }
            let mut warnings = Vec::new();
            recovery::apply(
                record,
                system,
                session,
                metrics,
                predictor,
                config,
                virgin,
                &mut warnings,
            );
            for w in warnings {
                eprintln!("lumos-serve: follower apply: {w}");
            }
            *records += 1;
            (
                Response::ReplAck {
                    seq: journal.seq(),
                    offset: journal.segment_bytes(),
                },
                false,
            )
        }
        _ => unreachable!("scheduler_loop routes only replication requests here"),
    }
}

/// The `stats` replication block for the current role: ack progress on a
/// replicating primary, applied position on a follower, `None` on plain
/// servers (and promoted followers, which serve exactly like one).
fn replication_stats(
    role: &Role,
    link: Option<&Arc<ReplLink>>,
    config: &ServeConfig,
    journal: Option<&Journal>,
) -> Option<ReplicationStats> {
    match role {
        Role::Primary => link.map(|link| ReplicationStats {
            role: "primary".into(),
            peer: link.target.clone(),
            connected: link.is_connected(),
            seq: link.acked_seq(),
            offset: link.acked_offset(),
            records: link.acked_count(),
        }),
        Role::Follower {
            records,
            hello_seen,
            ..
        } => Some(ReplicationStats {
            role: "follower".into(),
            peer: config.follow.clone().unwrap_or_default(),
            connected: *hello_seen,
            seq: journal.map_or(0, Journal::seq),
            offset: journal.map_or(0, Journal::segment_bytes),
            records: *records,
        }),
    }
}

/// Builds the trace-shaped [`Job`] a [`SubmitSpec`] describes;
/// `now_floor` resolves a missing submit time. Shared by the live submit
/// path and journal replay so both construct bit-identical jobs.
pub(crate) fn job_from_spec(spec: &SubmitSpec, now_floor: Timestamp) -> Job {
    Job {
        id: spec.id,
        user: spec.user.unwrap_or(0),
        submit: spec.submit.unwrap_or(now_floor),
        wait: None,
        runtime: spec.runtime,
        walltime: spec.walltime,
        procs: spec.procs,
        nodes: u32::try_from(spec.procs).unwrap_or(u32::MAX),
        status: JobStatus::Passed,
        virtual_cluster: spec.virtual_cluster,
    }
}

/// Processes one command; returns the response plus the journal record to
/// persist when the command mutated the session (`None` for reads and
/// refused mutations).
fn handle(
    req: Request,
    session: &mut SimSession,
    metrics: &mut LiveMetrics,
    predictor: &mut Option<Predictor>,
    config: &ServeConfig,
    shared: &Shared,
    repl_stats: Option<ReplicationStats>,
) -> (Response, Option<JournalRecord>) {
    match req {
        Request::Submit { job } => submit(job, session, metrics, predictor),
        Request::Cancel { id } => {
            let ok = session.cancel(id);
            (
                Response::Cancelled { id, ok },
                ok.then(|| JournalRecord::Cancel {
                    now: session.now(),
                    id,
                }),
            )
        }
        Request::Query { id } => (
            match session.query(id) {
                Some(state) => Response::Job {
                    id,
                    state,
                    wait: session.job(id).and_then(|j| j.wait),
                },
                None => Response::Error {
                    message: format!("unknown job id {id}"),
                },
            },
            None,
        ),
        Request::Advance { to } => {
            if config.time_scale > 0.0 {
                (
                    Response::Error {
                        message: "Advance is only valid on virtual-time servers (--time-scale 0)"
                            .into(),
                    },
                    None,
                )
            } else {
                session.advance_to(to);
                let now = session.now();
                (
                    Response::Advanced { now },
                    Some(JournalRecord::Advance { to: now }),
                )
            }
        }
        Request::Stats => (
            Response::Stats {
                stats: metrics.report(
                    session,
                    shared.backpressure_rejects.load(Ordering::Relaxed),
                    predictor.as_ref().map(OnlinePredictor::name),
                    repl_stats,
                ),
            },
            None,
        ),
        Request::Snapshot => (
            Response::Snapshot {
                snapshot: session.snapshot(),
            },
            None,
        ),
        Request::Shutdown => {
            session.advance_to_completion();
            let events = session.drain_events();
            metrics.absorb(&events, session);
            // Journal the drain so a restart resumes the drained state.
            let record = JournalRecord::Advance { to: session.now() };
            let snap = session.snapshot();
            let ran_any = snap.submitted > snap.cancelled;
            // `into_result` consumes the session; replace it with an empty
            // one (nothing can reach it — the loop exits right after).
            let drained = std::mem::replace(session, SimSession::new(&config.system, config.sim));
            (
                Response::Bye {
                    metrics: ran_any.then(|| drained.into_result().metrics),
                },
                Some(record),
            )
        }
        // Routed by `scheduler_loop` before reaching here.
        Request::Promote
        | Request::ReplHello
        | Request::ReplSegment { .. }
        | Request::ReplRecord { .. } => (
            Response::Error {
                message: "replication requests are handled by the scheduler".into(),
            },
            None,
        ),
    }
}

fn submit(
    spec: SubmitSpec,
    session: &mut SimSession,
    metrics: &mut LiveMetrics,
    predictor: &mut Option<Predictor>,
) -> (Response, Option<JournalRecord>) {
    // The service rejects *any* reuse of a known id — stricter than the
    // session, which frees finished/cancelled ids — because queries and
    // cancels address jobs by id for the whole server lifetime.
    if session.query(spec.id).is_some() {
        metrics.record_rejection();
        return (
            Response::Rejected {
                id: Some(spec.id),
                reason: format!("duplicate job id {}", spec.id),
            },
            None,
        );
    }
    let id = spec.id;
    // Resolve tenant ownership up front; an unknown name is a plain
    // rejection (never journaled, like every refused submission).
    let tenant = match session.resolve_tenant(spec.tenant.as_deref()) {
        Ok(t) => t,
        Err(e) => {
            metrics.record_rejection();
            return (
                Response::Rejected {
                    id: Some(id),
                    reason: e.to_string(),
                },
                None,
            );
        }
    };
    let now = session.now();
    let job = job_from_spec(&spec, now.max(0));
    let resolved_submit = job.submit;
    // Predict before submitting, observe only on acceptance: rejected
    // submissions are never journaled, so touching the predictor here
    // would diverge from journal replay.
    let estimate = predictor
        .as_ref()
        .map(|p| p.predict(job.user, job.walltime));
    let (user, runtime) = (job.user, job.runtime);
    match session.submit_with_tenant(job, tenant, estimate) {
        Ok(()) => {
            if let Some(p) = predictor.as_mut() {
                p.observe(user, runtime);
            }
            // Process an arrival scheduled at or before the current
            // instant immediately, so the reply reflects its real state.
            session.advance_to(session.now());
            let record = JournalRecord::Submit {
                now,
                job: SubmitSpec {
                    // Resolve the defaulted arrival time so replay does not
                    // depend on the clock at replay time.
                    submit: Some(resolved_submit),
                    ..spec
                },
            };
            (
                Response::Submitted {
                    id,
                    state: session.query(id).expect("just submitted"),
                },
                Some(record),
            )
        }
        // Quota refusals get their own reply shape so clients can tell
        // "back off" from "fix your request".
        Err(CoreError::QuotaExceeded {
            tenant,
            requested,
            in_use,
            quota,
        }) => {
            metrics.record_rejection();
            (
                Response::QuotaExceeded {
                    id,
                    tenant,
                    requested,
                    in_use,
                    quota,
                },
                None,
            )
        }
        Err(e) => {
            metrics.record_rejection();
            (
                Response::Rejected {
                    id: Some(id),
                    reason: e.to_string(),
                },
                None,
            )
        }
    }
}

/// Serves one TCP client.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    serve_lines(reader, writer, shared)
}

/// One entry in a connection's in-order response stream: a locally
/// produced response (parse error, backpressure rejection, shutdown
/// refusal), or a marker that the scheduler owes the next response on the
/// connection's shared reply channel. Both channels are FIFO, so pairing
/// `Scheduled` slots with scheduler replies in order reproduces exactly
/// the one-response-per-line, in-order wire contract.
// The variants are deliberately lopsided: `Scheduled` (the hot path) is
// zero-sized, and boxing the rare locally-produced `Ready` response would
// put an allocation back on the error/rejection path for nothing.
#[allow(clippy::large_enum_variant)]
enum Slot {
    Ready(Response),
    Scheduled,
}

/// The request/response loop shared by TCP connections and stdin: a
/// reader half (this thread) that parses lines from one recycled buffer
/// and enqueues commands without waiting for their answers, and a writer
/// half (scoped thread) that writes responses in request order,
/// coalescing every response available in the same scheduler round into
/// a single buffered write + flush. Pipelined clients therefore keep the
/// scheduler's command queue full — which is what group commit batches —
/// while lockstep clients see one immediate flush per request, exactly
/// as before.
///
/// Physical lines (blank ones included) are counted so parse errors can
/// name the offending line of the stream.
fn serve_lines<R: BufRead, W: Write + Send>(
    mut reader: R,
    writer: W,
    shared: &Shared,
) -> io::Result<()> {
    let (slot_tx, slot_rx) = mpsc::channel::<Slot>();
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    std::thread::scope(|scope| {
        let writer_half = scope.spawn(move || write_replies(writer, &slot_rx, &reply_rx, shared));
        let read = (|| {
            let mut line = String::new();
            let mut lineno = 0usize;
            loop {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    break;
                }
                lineno += 1;
                if line.trim().is_empty() {
                    continue;
                }
                let slot = dispatch(&line, lineno, shared, &reply_tx);
                if slot_tx.send(slot).is_err() {
                    // The writer half died on a write error; responses
                    // have nowhere to go, so stop reading too.
                    break;
                }
            }
            Ok(())
        })();
        // Close the slot stream so the writer drains what is left and
        // exits; its result carries any write error.
        drop(slot_tx);
        drop(reply_tx);
        let wrote = writer_half.join().unwrap_or(Ok(()));
        read.and(wrote)
    })
}

/// The writer half of [`serve_lines`]: resolves slots to responses in
/// request order and batches flushes — everything already answered goes
/// out in one write, and the stream is flushed before blocking on a
/// response the scheduler has not produced yet (so a lockstep client is
/// never kept waiting behind an empty buffer).
fn write_replies<W: Write>(
    mut writer: W,
    slots: &Receiver<Slot>,
    replies: &Receiver<Response>,
    shared: &Shared,
) -> io::Result<()> {
    let closed = || Response::Error {
        message: "server is shutting down".into(),
    };
    let mut buf = String::new();
    while let Ok(first) = slots.recv() {
        let mut pending = 0usize;
        let mut next = Some(first);
        while let Some(slot) = next {
            let response = match slot {
                Slot::Ready(response) => response,
                Slot::Scheduled => match replies.try_recv() {
                    Ok(response) => response,
                    Err(_) => {
                        // The scheduler has not answered this one yet:
                        // release what is already buffered, then wait.
                        if pending > 0 {
                            writer.flush()?;
                            pending = 0;
                        }
                        replies.recv().unwrap_or_else(|_| closed())
                    }
                },
            };
            buf.clear();
            response.to_line_into(&mut buf);
            buf.push('\n');
            let terminal = is_terminal(&response);
            let wrote = writer.write_all(buf.as_bytes());
            if terminal {
                // Written (or failed definitively): `run` may exit now.
                let flushed = wrote.and_then(|()| writer.flush());
                shared.mark_terminal_flushed();
                flushed?;
                pending = 0;
            } else {
                wrote?;
                pending += 1;
            }
            next = slots.try_recv().ok();
        }
        if pending > 0 {
            writer.flush()?;
        }
    }
    Ok(())
}

/// Parses one line and routes it through the bounded queue, tagging the
/// command with the connection's shared reply channel. Returns the
/// response slot for the writer half: `Ready` when the answer is known
/// right here (parse error, backpressure rejection, shutdown), otherwise
/// `Scheduled`. `lineno` is the 1-based physical line number within this
/// client's stream, used to contextualize parse errors.
fn dispatch(line: &str, lineno: usize, shared: &Shared, reply: &mpsc::Sender<Response>) -> Slot {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(message) => {
            return Slot::Ready(Response::Error {
                message: format!("line {lineno}: {message}"),
            })
        }
    };
    let submit_id = match &req {
        Request::Submit { job } => Some(job.id),
        _ => None,
    };
    let envelope = Envelope {
        req,
        reply: reply.clone(),
    };
    let closed = "server is shutting down";
    if let Some(id) = submit_id {
        // Submissions never block: a full queue is an explicit rejection.
        match shared.commands.try_send(envelope) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                shared.backpressure_rejects.fetch_add(1, Ordering::Relaxed);
                return Slot::Ready(Response::Rejected {
                    id: Some(id),
                    reason: format!(
                        "submission queue full ({} commands queued); retry later",
                        shared.queue_capacity
                    ),
                });
            }
            Err(TrySendError::Disconnected(_)) => {
                return Slot::Ready(Response::Error {
                    message: closed.into(),
                })
            }
        }
    } else if shared.commands.send(envelope).is_err() {
        return Slot::Ready(Response::Error {
            message: closed.into(),
        });
    }
    Slot::Scheduled
}
