//! The scheduler service: one long-lived scheduling loop, many clients.
//!
//! Architecture: connection threads (one per TCP client, optionally one
//! for stdin) parse NDJSON request lines and push them onto a **bounded**
//! command queue; a single scheduler thread owns the [`SimSession`] and
//! processes commands in arrival order, so no locks guard the simulation
//! state. When the queue is full, submissions are rejected immediately
//! with a reason — backpressure is explicit, never blocking — while
//! cheap control commands (stats, query, ...) block for a slot.
//!
//! Time: with `time_scale > 0` the server maps wall-clock seconds onto
//! simulation seconds (1 wall second = `time_scale` sim seconds) and
//! advances the session before every command. With `time_scale == 0` the
//! server is *virtual-time*: the clock only moves on explicit `Advance`
//! commands, which makes runs deterministic and replayable.
//!
//! Shutdown: a `Shutdown` command stops command intake, drains every
//! pending and running job to completion, and answers with the same
//! [`SimMetrics`] a batch replay of the identical arrival sequence would
//! produce.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

use lumos_core::{Job, JobStatus, SystemSpec, Timestamp};
use lumos_sim::{SimConfig, SimSession};

use crate::metrics::LiveMetrics;
use crate::protocol::{Request, Response, SubmitSpec};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The machine being scheduled.
    pub system: SystemSpec,
    /// Scheduling configuration (policy, backfill, ...).
    pub sim: SimConfig,
    /// Bounded command-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Simulation seconds per wall-clock second; `0` = virtual time
    /// (clock moves only on `Advance` commands).
    pub time_scale: f64,
}

impl ServeConfig {
    /// Defaults: virtual time, queue of 1024 commands.
    #[must_use]
    pub fn new(system: SystemSpec) -> Self {
        Self {
            system,
            sim: SimConfig::default(),
            queue_capacity: 1024,
            time_scale: 0.0,
        }
    }
}

/// One queued command and the channel its response travels back on.
struct Envelope {
    req: Request,
    reply: mpsc::Sender<Response>,
}

/// Shared connection-side state.
struct Shared {
    commands: SyncSender<Envelope>,
    shutting_down: AtomicBool,
    /// Submissions rejected by backpressure (queue full).
    backpressure_rejects: AtomicU64,
    queue_capacity: usize,
}

/// A bound scheduling server. Create with [`Server::bind`], then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
}

impl Server {
    /// Binds the TCP listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener, config })
    }

    /// The bound address (useful with ephemeral ports).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the scheduler loop until a `Shutdown` command, accepting TCP
    /// clients (and stdin commands when `serve_stdin` is set, answering on
    /// stdout). Blocks the calling thread.
    ///
    /// # Errors
    /// Propagates socket errors from the initial setup.
    pub fn run(self, serve_stdin: bool) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel::<Envelope>(self.config.queue_capacity);
        let shared = Arc::new(Shared {
            commands: tx,
            shutting_down: AtomicBool::new(false),
            backpressure_rejects: AtomicU64::new(0),
            queue_capacity: self.config.queue_capacity,
        });

        // Accept loop.
        {
            let shared = Arc::clone(&shared);
            let listener = self.listener.try_clone()?;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &shared);
                    });
                }
            });
        }

        // Stdin loop.
        if serve_stdin {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let stdin = io::stdin();
                let stdout = io::stdout();
                let _ = serve_lines(stdin.lock(), stdout.lock(), &shared);
            });
        }

        scheduler_loop(&self.config, &rx, &shared);

        // Wake the accept loop so its thread exits.
        shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        Ok(())
    }
}

/// The single thread that owns the simulation.
fn scheduler_loop(config: &ServeConfig, rx: &Receiver<Envelope>, shared: &Shared) {
    let mut session = SimSession::new(&config.system, config.sim);
    let mut metrics = LiveMetrics::new(config.sim.bsld_bound);
    let epoch = Instant::now();
    // Sessions start at t = 0, not at the dawn of representable time.
    session.advance_to(0);

    while let Ok(Envelope { req, reply }) = rx.recv() {
        if config.time_scale > 0.0 {
            let sim_now = (epoch.elapsed().as_secs_f64() * config.time_scale).floor() as Timestamp;
            session.advance_to(sim_now);
        }
        let shutdown = matches!(req, Request::Shutdown);
        let response = handle(req, &mut session, &mut metrics, config, shared);
        let events = session.drain_events();
        metrics.absorb(&events, &session);
        let _ = reply.send(response);
        if shutdown {
            break;
        }
    }
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Refuse anything that squeezed into the queue behind the shutdown.
    while let Ok(Envelope { reply, .. }) = rx.try_recv() {
        let _ = reply.send(Response::Error {
            message: "server is shutting down".into(),
        });
    }
}

fn handle(
    req: Request,
    session: &mut SimSession,
    metrics: &mut LiveMetrics,
    config: &ServeConfig,
    shared: &Shared,
) -> Response {
    match req {
        Request::Submit { job } => submit(job, session, metrics),
        Request::Cancel { id } => Response::Cancelled {
            id,
            ok: session.cancel(id),
        },
        Request::Query { id } => match session.query(id) {
            Some(state) => Response::Job {
                id,
                state,
                wait: session.job(id).and_then(|j| j.wait),
            },
            None => Response::Error {
                message: format!("unknown job id {id}"),
            },
        },
        Request::Advance { to } => {
            if config.time_scale > 0.0 {
                Response::Error {
                    message: "Advance is only valid on virtual-time servers (--time-scale 0)"
                        .into(),
                }
            } else {
                session.advance_to(to);
                Response::Advanced { now: session.now() }
            }
        }
        Request::Stats => Response::Stats {
            stats: metrics.report(session, shared.backpressure_rejects.load(Ordering::Relaxed)),
        },
        Request::Snapshot => Response::Snapshot {
            snapshot: session.snapshot(),
        },
        Request::Shutdown => {
            session.advance_to_completion();
            let events = session.drain_events();
            metrics.absorb(&events, session);
            let snap = session.snapshot();
            let ran_any = snap.submitted > snap.cancelled;
            // `into_result` consumes the session; replace it with an empty
            // one (nothing can reach it — the loop exits right after).
            let drained = std::mem::replace(session, SimSession::new(&config.system, config.sim));
            Response::Bye {
                metrics: ran_any.then(|| drained.into_result().metrics),
            }
        }
    }
}

fn submit(spec: SubmitSpec, session: &mut SimSession, metrics: &mut LiveMetrics) -> Response {
    if session.query(spec.id).is_some() {
        metrics.record_rejection();
        return Response::Rejected {
            id: Some(spec.id),
            reason: format!("duplicate job id {}", spec.id),
        };
    }
    let now_floor = session.now().max(0);
    let job = Job {
        id: spec.id,
        user: spec.user.unwrap_or(0),
        submit: spec.submit.unwrap_or(now_floor),
        wait: None,
        runtime: spec.runtime,
        walltime: spec.walltime,
        procs: spec.procs,
        nodes: u32::try_from(spec.procs).unwrap_or(u32::MAX),
        status: JobStatus::Passed,
        virtual_cluster: spec.virtual_cluster,
    };
    match session.submit(job) {
        Ok(()) => {
            // Process an arrival scheduled at or before the current
            // instant immediately, so the reply reflects its real state.
            session.advance_to(session.now());
            Response::Submitted {
                id: spec.id,
                state: session.query(spec.id).expect("just submitted"),
            }
        }
        Err(e) => {
            metrics.record_rejection();
            Response::Rejected {
                id: Some(spec.id),
                reason: e.to_string(),
            }
        }
    }
}

/// Serves one TCP client.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    serve_lines(reader, writer, shared)
}

/// The request/response loop shared by TCP connections and stdin.
fn serve_lines<R: BufRead, W: Write>(reader: R, mut writer: W, shared: &Shared) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = dispatch(&line, shared);
        writeln!(writer, "{}", response.to_line())?;
        writer.flush()?;
    }
    Ok(())
}

/// Parses one line, routes it through the bounded queue, and waits for
/// the scheduler's answer.
fn dispatch(line: &str, shared: &Shared) -> Response {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(message) => return Response::Error { message },
    };
    let submit_id = match &req {
        Request::Submit { job } => Some(job.id),
        _ => None,
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let envelope = Envelope {
        req,
        reply: reply_tx,
    };
    let closed = "server is shutting down";
    if let Some(id) = submit_id {
        // Submissions never block: a full queue is an explicit rejection.
        match shared.commands.try_send(envelope) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                shared.backpressure_rejects.fetch_add(1, Ordering::Relaxed);
                return Response::Rejected {
                    id: Some(id),
                    reason: format!(
                        "submission queue full ({} commands queued); retry later",
                        shared.queue_capacity
                    ),
                };
            }
            Err(TrySendError::Disconnected(_)) => {
                return Response::Error {
                    message: closed.into(),
                }
            }
        }
    } else if shared.commands.send(envelope).is_err() {
        return Response::Error {
            message: closed.into(),
        };
    }
    reply_rx.recv().unwrap_or(Response::Error {
        message: closed.into(),
    })
}
