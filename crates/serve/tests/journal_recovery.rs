//! In-process recovery tests: `recover()` must rebuild byte-identical
//! state from a journal, rotation must bound what is replayed, and — the
//! property tests — *any* truncation point and *any* single-byte
//! corruption must be survived with the intact prefix recovered and a
//! warning raised, never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use lumos_core::{Job, JobStatus, SystemSpec, Timestamp};
use lumos_serve::journal::{encode_record, segment_path};
use lumos_serve::{
    recover, FsyncPolicy, Journal, JournalConfig, JournalRecord, LiveMetrics, ServeConfig,
    SubmitSpec,
};
use lumos_sim::{SimConfig, SimSession};
use proptest::prelude::*;

fn tiny_system(capacity: u64) -> SystemSpec {
    let mut s = SystemSpec::theta();
    s.name = "journal-test".into();
    s.total_nodes = capacity as u32;
    s.units_per_node = 1;
    s.total_units = capacity;
    s
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lumos-journal-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dir");
    dir
}

/// A deterministic record stream: a config header, then submissions that
/// fill and queue a 100-unit machine, periodic advances, and a cancel.
/// Every optional field is explicit, mirroring what the live server
/// journals.
fn fixture_records(system: &SystemSpec, sim: SimConfig) -> Vec<JournalRecord> {
    let mut records = vec![JournalRecord::Config {
        system: system.clone(),
        sim,
        predictor: None,
        tenants: None,
    }];
    for i in 0..20u64 {
        let t = i as i64 * 13;
        let (procs, runtime) = if i % 4 == 0 {
            (100, 300)
        } else {
            (1 + (i % 5), 120 + i as i64 * 9)
        };
        records.push(JournalRecord::Submit {
            now: t,
            job: SubmitSpec {
                id: i,
                procs,
                runtime,
                walltime: Some(runtime + 100),
                user: Some((i % 3) as u32),
                submit: Some(t),
                virtual_cluster: None,
                tenant: None,
            },
        });
        if i % 6 == 5 {
            records.push(JournalRecord::Advance { to: t });
        }
    }
    records.push(JournalRecord::Cancel { now: 250, id: 16 });
    records.push(JournalRecord::Advance { to: 400 });
    records
}

/// The job a journaled [`SubmitSpec`] describes (mirrors the server's
/// construction; the fixture always sets `submit`, so `now_floor` is 0).
fn job_of(spec: &SubmitSpec, now_floor: Timestamp) -> Job {
    Job {
        id: spec.id,
        user: spec.user.unwrap_or(0),
        submit: spec.submit.unwrap_or(now_floor),
        wait: None,
        runtime: spec.runtime,
        walltime: spec.walltime,
        procs: spec.procs,
        nodes: u32::try_from(spec.procs).unwrap_or(u32::MAX),
        status: JobStatus::Passed,
        virtual_cluster: spec.virtual_cluster,
    }
}

/// Replays records directly through a session — the ground truth recovery
/// must match.
fn replay_expected(
    records: &[JournalRecord],
    system: &SystemSpec,
    sim: SimConfig,
) -> (SimSession, LiveMetrics) {
    let mut session = SimSession::new(system, sim);
    session.advance_to(0);
    let mut metrics = LiveMetrics::new(sim.bsld_bound);
    for record in records {
        match record {
            JournalRecord::Config { .. } => continue,
            JournalRecord::Submit { now, job } => {
                session.advance_to(*now);
                session
                    .submit(job_of(job, session.now().max(0)))
                    .expect("fixture submissions are valid");
                session.advance_to(session.now());
            }
            JournalRecord::Cancel { now, id } => {
                session.advance_to(*now);
                let _ = session.cancel(*id);
            }
            JournalRecord::Advance { to } => session.advance_to(*to),
        }
        let events = session.drain_events();
        metrics.absorb(&events, &session);
    }
    (session, metrics)
}

fn serve_config(system: &SystemSpec, sim: SimConfig) -> ServeConfig {
    let mut config = ServeConfig::new(system.clone());
    config.sim = sim;
    config
}

/// Writes `records` as one journal segment and returns its path.
fn write_segment(dir: &Path, records: &[JournalRecord]) -> PathBuf {
    let mut jc = JournalConfig::new(dir.to_path_buf());
    jc.fsync = FsyncPolicy::Never;
    jc.snapshot_every = 0;
    let mut journal = Journal::open_segment(jc, 0, 0).expect("open segment");
    for record in records {
        journal.append(record).expect("append");
    }
    segment_path(dir, 0)
}

#[test]
fn recover_replays_a_full_log_byte_identically() {
    let system = tiny_system(100);
    let sim = SimConfig::default();
    let records = fixture_records(&system, sim);
    let dir = fresh_dir("full");
    write_segment(&dir, &records);

    let jc = JournalConfig::new(dir.clone());
    let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");
    assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
    assert_eq!(recovered.replayed, (records.len() - 1) as u64);

    let (expected_session, expected_metrics) = replay_expected(&records, &system, sim);
    assert_eq!(
        recovered.session.save_state(),
        expected_session.save_state()
    );
    assert_eq!(
        serde_json::to_string(&recovered.metrics).unwrap(),
        serde_json::to_string(&expected_metrics).unwrap(),
        "recovered metrics must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotation_bounds_replay_to_snapshot_plus_tail() {
    let system = tiny_system(100);
    let sim = SimConfig::default();
    let records = fixture_records(&system, sim);
    let dir = fresh_dir("rotate");

    // Live path: append with rotation every 5 records.
    let mut jc = JournalConfig::new(dir.clone());
    jc.fsync = FsyncPolicy::Never;
    jc.snapshot_every = 5;
    let mut journal = Journal::open_segment(jc.clone(), 0, 0).expect("open");
    let mut session = SimSession::new(&system, sim);
    session.advance_to(0);
    let mut metrics = LiveMetrics::new(sim.bsld_bound);
    for record in &records {
        journal.append(record).expect("append");
        // Apply, so each rotation snapshots the state *after* the record.
        match record {
            JournalRecord::Config { .. } => {}
            JournalRecord::Submit { now, job } => {
                session.advance_to(*now);
                session.submit(job_of(job, session.now().max(0))).unwrap();
                session.advance_to(session.now());
            }
            JournalRecord::Cancel { now, id } => {
                session.advance_to(*now);
                let _ = session.cancel(*id);
            }
            JournalRecord::Advance { to } => session.advance_to(*to),
        }
        let events = session.drain_events();
        metrics.absorb(&events, &session);
        if !matches!(record, JournalRecord::Config { .. }) && journal.wants_rotation() {
            let snap = lumos_serve::recovery::snapshot_json(&system, &session, &metrics, None);
            let header = JournalRecord::Config {
                system: system.clone(),
                sim,
                predictor: None,
                tenants: None,
            };
            journal.rotate(&snap, &header).expect("rotate");
        }
    }
    let final_seq = journal.seq();
    assert!(final_seq > 1, "rotation must have happened");
    drop(journal);

    let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");
    assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
    // Bounded: only the newest snapshot's tail is replayed, not all
    // records.
    assert!(
        recovered.replayed < (records.len() - 1) as u64,
        "replayed {} of {} — snapshot did not bound recovery",
        recovered.replayed,
        records.len() - 1
    );
    let (expected_session, expected_metrics) = replay_expected(&records, &system, sim);
    assert_eq!(
        recovered.session.save_state(),
        expected_session.save_state()
    );
    assert_eq!(
        serde_json::to_string(&recovered.metrics).unwrap(),
        serde_json::to_string(&expected_metrics).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Drops `,"key":null` pairs from serialized JSON — exactly what the
/// same document looked like before the key existed at all (the vendored
/// serde defaults missing `Option` fields to `None`).
fn strip_keys(json: &str, keys: &[&str]) -> String {
    let mut out = json.to_string();
    for key in keys {
        out = out.replace(&format!(",\"{key}\":null"), "");
    }
    assert!(
        !out.contains("tenant"),
        "a tenancy key survived stripping: {out}"
    );
    out
}

#[test]
fn pre_tenancy_journals_still_recover() {
    let system = tiny_system(100);
    let sim = SimConfig::default();
    let records = fixture_records(&system, sim);

    // Re-frame each record the way a pre-tenancy server wrote it: no
    // `tenants` key in Config headers, no `tenant` key in submissions.
    let old_format: String = records
        .iter()
        .map(|r| {
            let json = strip_keys(
                &serde_json::to_string(r).expect("records serialize"),
                &["tenants", "tenant"],
            );
            format!(
                "{} {:08x} {}\n",
                json.len(),
                lumos_serve::journal::crc32(json.as_bytes()),
                json
            )
        })
        .collect();
    let dir = fresh_dir("pretenancy");
    std::fs::write(segment_path(&dir, 0), old_format).expect("write old segment");

    let jc = JournalConfig::new(dir.clone());
    let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");
    assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
    let (expected_session, expected_metrics) = replay_expected(&records, &system, sim);
    assert_eq!(
        recovered.session.save_state(),
        expected_session.save_state()
    );
    assert_eq!(
        serde_json::to_string(&recovered.metrics).unwrap(),
        serde_json::to_string(&expected_metrics).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pre_tenancy_snapshots_still_restore() {
    let system = tiny_system(100);
    let sim = SimConfig::default();
    let records = fixture_records(&system, sim);
    let (session, metrics) = replay_expected(&records, &system, sim);

    // A rotation snapshot as an old server wrote it: no `tenants` /
    // `tenant_of` in the session state, no `tenant_waits` in metrics.
    let snap = strip_keys(
        &lumos_serve::recovery::snapshot_json(&system, &session, &metrics, None),
        &["tenants", "tenant_of", "tenant_waits"],
    );
    let dir = fresh_dir("presnap");
    std::fs::write(lumos_serve::journal::snapshot_path(&dir, 1), snap).expect("write snapshot");

    let jc = JournalConfig::new(dir.clone());
    let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");
    assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
    assert_eq!(recovered.replayed, 0, "snapshot-only recovery");
    assert_eq!(recovered.session.save_state(), session.save_state());
    assert_eq!(
        serde_json::to_string(&recovered.metrics).unwrap(),
        serde_json::to_string(&metrics).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The full durable path: append + rotate under `FsyncPolicy::Always`
/// (which also fsyncs the journal *directory* on segment creation and
/// rotation, so the files themselves survive a crash, not just their
/// contents) and recover byte-identically from what is on disk.
#[test]
fn rotation_under_fsync_always_recovers_byte_identically() {
    let system = tiny_system(100);
    let sim = SimConfig::default();
    let records = fixture_records(&system, sim);
    let dir = fresh_dir("fsync-always");

    let mut jc = JournalConfig::new(dir.clone());
    jc.fsync = FsyncPolicy::Always;
    jc.snapshot_every = 5;
    let mut journal = Journal::open_segment(jc.clone(), 0, 0).expect("open");
    let mut session = SimSession::new(&system, sim);
    session.advance_to(0);
    let mut metrics = LiveMetrics::new(sim.bsld_bound);
    for record in &records {
        journal.append(record).expect("append");
        match record {
            JournalRecord::Config { .. } => {}
            JournalRecord::Submit { now, job } => {
                session.advance_to(*now);
                session.submit(job_of(job, session.now().max(0))).unwrap();
                session.advance_to(session.now());
            }
            JournalRecord::Cancel { now, id } => {
                session.advance_to(*now);
                let _ = session.cancel(*id);
            }
            JournalRecord::Advance { to } => session.advance_to(*to),
        }
        let events = session.drain_events();
        metrics.absorb(&events, &session);
        if !matches!(record, JournalRecord::Config { .. }) && journal.wants_rotation() {
            let snap = lumos_serve::recovery::snapshot_json(&system, &session, &metrics, None);
            let header = JournalRecord::Config {
                system: system.clone(),
                sim,
                predictor: None,
                tenants: None,
            };
            journal.rotate(&snap, &header).expect("rotate");
        }
    }
    let final_seq = journal.seq();
    assert!(final_seq > 1, "rotation must have happened");
    drop(journal);

    // Every segment and snapshot the rotation chain created is on disk.
    for seq in 0..=final_seq {
        assert!(
            segment_path(&dir, seq).exists(),
            "segment {seq} of {final_seq} missing"
        );
        if seq > 0 {
            assert!(
                lumos_serve::journal::snapshot_path(&dir, seq).exists(),
                "snapshot {seq} of {final_seq} missing"
            );
        }
    }
    let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");
    assert!(recovered.warnings.is_empty(), "{:?}", recovered.warnings);
    assert_eq!(recovered.session.save_state(), session.save_state());
    assert_eq!(
        serde_json::to_string(&recovered.metrics).unwrap(),
        serde_json::to_string(&metrics).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A segment beyond a gap is quarantined (renamed `*.log.orphaned`, with
/// the rename fsynced into the directory) and stays quarantined: a second
/// recovery neither resurrects nor replays it.
#[test]
fn quarantined_segments_stay_orphaned_across_recoveries() {
    let system = tiny_system(100);
    let sim = SimConfig::default();
    let records = fixture_records(&system, sim);
    let dir = fresh_dir("quarantine");
    write_segment(&dir, &records);
    // A future segment with no predecessor: not linear history.
    let stray = records[..2].iter().map(encode_record).collect::<String>();
    std::fs::write(segment_path(&dir, 2), &stray).expect("write stray segment");

    let jc = JournalConfig::new(dir.clone());
    let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");
    assert!(
        recovered.warnings.iter().any(|w| w.contains("quarantined")),
        "{:?}",
        recovered.warnings
    );
    let orphan = segment_path(&dir, 2).with_extension("log.orphaned");
    assert!(orphan.exists(), "orphan file missing");
    assert!(!segment_path(&dir, 2).exists(), "original name survived");
    // The quarantined bytes still replay only the linear history.
    let (expected_session, _) = replay_expected(&records, &system, sim);
    assert_eq!(
        recovered.session.save_state(),
        expected_session.save_state()
    );
    drop(recovered);

    let again = recover(&serve_config(&system, sim), &jc).expect("recover again");
    assert!(
        again.warnings.iter().all(|w| !w.contains("quarantined")),
        "second recovery re-quarantined: {:?}",
        again.warnings
    );
    assert!(orphan.exists(), "orphan vanished on second recovery");
    assert_eq!(again.session.save_state(), expected_session.save_state());
    std::fs::remove_dir_all(&dir).ok();
}

/// Mutating (non-header) records among the first `n` fixture records.
fn mutations_in_prefix(records: &[JournalRecord], n: usize) -> u64 {
    records[..n]
        .iter()
        .filter(|r| !matches!(r, JournalRecord::Config { .. }))
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the segment at *any* byte offset recovers exactly the
    /// records wholly before the cut, warns unless the cut lies on a
    /// record boundary, and repairs the file so a second recovery is
    /// clean.
    #[test]
    fn any_truncation_point_recovers_the_intact_prefix(cut_fraction in 0.0f64..1.0) {
        let system = tiny_system(100);
        let sim = SimConfig::default();
        let records = fixture_records(&system, sim);
        let lines: Vec<String> = records.iter().map(encode_record).collect();
        let full: String = lines.concat();
        let cut = (full.len() as f64 * cut_fraction) as usize;

        let dir = fresh_dir("truncate");
        std::fs::write(segment_path(&dir, 0), &full.as_bytes()[..cut]).unwrap();

        let jc = JournalConfig::new(dir.clone());
        let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");

        // How many records end at or before the cut?
        let mut end = 0usize;
        let mut whole = 0usize;
        for line in &lines {
            if end + line.len() <= cut {
                end += line.len();
                whole += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(recovered.replayed, mutations_in_prefix(&records, whole));
        let on_boundary = end == cut;
        prop_assert_eq!(
            recovered.warnings.is_empty(),
            on_boundary,
            "cut {} (boundary: {}): warnings {:?}",
            cut,
            on_boundary,
            &recovered.warnings
        );
        let (expected_session, _) = replay_expected(&records[..whole], &system, sim);
        prop_assert_eq!(recovered.session.save_state(), expected_session.save_state());
        drop(recovered);

        // The tear was truncated away: recovery is now warning-free.
        let again = recover(&serve_config(&system, sim), &jc).expect("recover again");
        prop_assert!(again.warnings.is_empty(), "{:?}", &again.warnings);
        prop_assert_eq!(again.session.save_state(), expected_session.save_state());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Appending records in *batches* (group commit) writes byte-for-byte
    /// the same segment as appending them one at a time, for any partition
    /// of the stream into batches — recovery and replication cannot tell a
    /// batched journal from an unbatched one.
    #[test]
    fn group_commit_batches_are_byte_identical(
        sizes in proptest::collection::vec(1usize..8, 1..24),
    ) {
        let system = tiny_system(100);
        let sim = SimConfig::default();
        let records = fixture_records(&system, sim);

        let dir_single = fresh_dir("batch-single");
        write_segment(&dir_single, &records);
        let single = std::fs::read(segment_path(&dir_single, 0)).unwrap();

        let dir_batch = fresh_dir("batch-grouped");
        let mut jc = JournalConfig::new(dir_batch.clone());
        jc.fsync = FsyncPolicy::Never;
        jc.snapshot_every = 0;
        let mut journal = Journal::open_segment(jc, 0, 0).expect("open segment");
        let mut i = 0usize;
        for take in sizes.iter().cycle() {
            if i >= records.len() {
                break;
            }
            let take = (*take).min(records.len() - i);
            journal.append_batch(&records[i..i + take]).expect("append batch");
            i += take;
        }
        drop(journal);
        let batched = std::fs::read(segment_path(&dir_batch, 0)).unwrap();
        prop_assert_eq!(single, batched);
        std::fs::remove_dir_all(&dir_single).ok();
        std::fs::remove_dir_all(&dir_batch).ok();
    }

    /// Flipping any byte of any record is caught by the checksum (or the
    /// framing): recovery keeps every record before the damaged one and
    /// never panics.
    #[test]
    fn any_single_byte_corruption_is_detected(
        pos_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let system = tiny_system(100);
        let sim = SimConfig::default();
        let records = fixture_records(&system, sim);
        let lines: Vec<String> = records.iter().map(encode_record).collect();
        let mut bytes: Vec<u8> = lines.concat().into_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_fraction) as usize;
        bytes[pos] ^= flip;

        // Which record does the damaged byte live in?
        let mut start = 0usize;
        let mut damaged = 0usize;
        for (i, line) in lines.iter().enumerate() {
            if pos < start + line.len() {
                damaged = i;
                break;
            }
            start += line.len();
        }

        let dir = fresh_dir("corrupt");
        std::fs::write(segment_path(&dir, 0), &bytes).unwrap();
        let jc = JournalConfig::new(dir.clone());
        let recovered = recover(&serve_config(&system, sim), &jc).expect("recover");

        prop_assert!(!recovered.warnings.is_empty(), "corruption went unnoticed");
        // Everything before the damaged record survives; the damaged one
        // and anything after it is gone (the tear truncates the file).
        prop_assert_eq!(recovered.replayed, mutations_in_prefix(&records, damaged));
        let (expected_session, _) = replay_expected(&records[..damaged], &system, sim);
        prop_assert_eq!(recovered.session.save_state(), expected_session.save_state());
        std::fs::remove_dir_all(&dir).ok();
    }
}
