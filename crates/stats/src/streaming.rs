//! Streaming quantile estimation (the P² algorithm).
//!
//! [`P2Quantile`] estimates a single quantile of an unbounded stream in
//! O(1) memory — five markers whose heights track the quantile via
//! piecewise-parabolic interpolation (Jain & Chlamtac, CACM 1985). The
//! online scheduler uses it to report wait-time percentiles without
//! buffering every observed wait; exact type-7 quantiles on buffered
//! slices remain in [`fn@crate::quantile`].
//!
//! Both estimators serialize their full marker state, so a deserialized
//! estimator continues the stream exactly where the original left off —
//! the property the serving layer's crash recovery relies on.

use serde::{Deserialize, Serialize};

/// One streamed quantile, estimated with the P² algorithm.
///
/// Exact for the first five observations; afterwards the estimate tracks
/// the true quantile with error that shrinks as the stream grows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the 0, p/2, p, (1+p)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    inc: [f64; 5],
    /// Observations seen.
    count: u64,
}

impl P2Quantile {
    /// Estimator for the `p`-quantile, `0 < p < 1`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        Self {
            p,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            inc: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations absorbed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one observation. Non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
            }
            return;
        }
        self.count += 1;

        // Find the cell and clamp the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };

        for i in (k + 1)..5 {
            self.pos[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.inc[i];
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            let right = self.pos[i + 1] - self.pos[i];
            let left = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.pos[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height update for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.pos;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabolic prediction leaves the bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.pos;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate: `None` before the first observation; exact (via
    /// sorted interpolation) below five observations, P² beyond.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                let n = n as usize;
                let mut buf = [0.0; 4];
                buf[..n].copy_from_slice(&self.heights[..n]);
                let buf = &mut buf[..n];
                buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
                // Type-7 interpolation, matching `crate::quantile`.
                let h = self.p * (n as f64 - 1.0);
                let lo = h.floor() as usize;
                let hi = h.ceil() as usize;
                Some(buf[lo] + (h - lo as f64) * (buf[hi] - buf[lo]))
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// A fixed bank of streamed quantiles fed from one stream (e.g. the
/// p50/p90/p99 wait-time percentiles the serving layer reports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileBank {
    estimators: Vec<P2Quantile>,
}

impl QuantileBank {
    /// A bank tracking each `ps` entry.
    ///
    /// # Panics
    /// Panics if any probability is outside `(0, 1)`.
    #[must_use]
    pub fn new(ps: &[f64]) -> Self {
        Self {
            estimators: ps.iter().map(|&p| P2Quantile::new(p)).collect(),
        }
    }

    /// Absorbs one observation into every estimator.
    pub fn observe(&mut self, x: f64) {
        for e in &mut self.estimators {
            e.observe(x);
        }
    }

    /// `(p, estimate)` pairs, in construction order.
    #[must_use]
    pub fn estimates(&self) -> Vec<(f64, Option<f64>)> {
        self.estimators
            .iter()
            .map(|e| (e.p(), e.estimate()))
            .collect()
    }

    /// Observations absorbed (same for every estimator).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.estimators.first().map_or(0, P2Quantile::count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile;
    use crate::rng::Rng;

    #[test]
    fn empty_estimator_has_no_estimate() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
    }

    #[test]
    fn small_streams_are_exact() {
        let mut q = P2Quantile::new(0.5);
        q.observe(10.0);
        assert_eq!(q.estimate(), Some(10.0));
        q.observe(20.0);
        assert_eq!(q.estimate(), Some(15.0));
        q.observe(0.0);
        assert_eq!(q.estimate(), Some(10.0));
    }

    #[test]
    fn ignores_non_finite_observations() {
        let mut q = P2Quantile::new(0.5);
        q.observe(f64::NAN);
        q.observe(f64::INFINITY);
        assert_eq!(q.count(), 0);
        q.observe(7.0);
        assert_eq!(q.estimate(), Some(7.0));
    }

    #[test]
    fn median_of_uniform_stream_converges() {
        let mut rng = Rng::new(42);
        let mut q = P2Quantile::new(0.5);
        for _ in 0..20_000 {
            q.observe(rng.next_f64());
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn tail_quantile_tracks_exact_on_skewed_stream() {
        // Exponential-ish skew: the interesting case for wait times.
        let mut rng = Rng::new(7);
        let mut q = P2Quantile::new(0.9);
        let mut all = Vec::new();
        for _ in 0..20_000 {
            let x = -(1.0 - rng.next_f64()).ln() * 100.0;
            q.observe(x);
            all.push(x);
        }
        let exact = quantile(&all, 0.9);
        let est = q.estimate().unwrap();
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.05, "p90 estimate {est} vs exact {exact}");
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut q = P2Quantile::new(0.99);
        for _ in 0..1_000 {
            q.observe(5.0);
        }
        assert_eq!(q.estimate(), Some(5.0));
    }

    #[test]
    fn bank_tracks_multiple_quantiles_in_order() {
        let mut bank = QuantileBank::new(&[0.5, 0.9, 0.99]);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            bank.observe(rng.next_f64());
        }
        assert_eq!(bank.count(), 10_000);
        let ests: Vec<f64> = bank.estimates().iter().map(|&(_, e)| e.unwrap()).collect();
        assert!(ests[0] < ests[1] && ests[1] < ests[2]);
        assert!((ests[0] - 0.5).abs() < 0.03);
        assert!((ests[1] - 0.9).abs() < 0.03);
        assert!((ests[2] - 0.99).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_out_of_range_p() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn serialized_estimator_continues_the_stream_exactly() {
        // Split a stream at an arbitrary point; the restored estimator must
        // report identical estimates for the rest of the stream (f64 JSON
        // round-trips are exact: shortest-roundtrip formatting).
        let mut rng = Rng::new(11);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.next_f64() * 300.0).collect();
        let mut whole = P2Quantile::new(0.9);
        let mut first = P2Quantile::new(0.9);
        for &x in &xs[..1_237] {
            whole.observe(x);
            first.observe(x);
        }
        let json = serde_json::to_string(&first).unwrap();
        let mut restored: P2Quantile = serde_json::from_str(&json).unwrap();
        for &x in &xs[1_237..] {
            whole.observe(x);
            restored.observe(x);
        }
        assert_eq!(restored.count(), whole.count());
        assert_eq!(restored.estimate(), whole.estimate());
    }

    #[test]
    fn bank_round_trips_through_json() {
        let mut bank = QuantileBank::new(&[0.5, 0.99]);
        let mut rng = Rng::new(5);
        for _ in 0..500 {
            bank.observe(rng.next_f64());
        }
        let json = serde_json::to_string(&bank).unwrap();
        let restored: QuantileBank = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.count(), bank.count());
        assert_eq!(restored.estimates(), bank.estimates());
    }
}
