//! Gaussian kernel density estimation and violin summaries.
//!
//! The paper's violin panels (Fig. 1a bottom, Fig. 11) are KDEs of job
//! runtime, usually on a log axis. [`ViolinSummary`] packages the density
//! curve together with the quartiles — exactly the data a violin plot needs.

use serde::Serialize;

use crate::quantile::quantile_sorted;

/// Gaussian KDE over a 1-D sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth
    /// `0.9 · min(σ, IQR/1.34) · n^(−1/5)`.
    ///
    /// # Panics
    /// Panics if the NaN-filtered sample is empty.
    #[must_use]
    pub fn new(sample: Vec<f64>) -> Self {
        let mut s: Vec<f64> = sample.into_iter().filter(|x| !x.is_nan()).collect();
        assert!(!s.is_empty(), "KDE needs a non-empty sample");
        s.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        let n = s.len() as f64;
        let mean = s.iter().sum::<f64>() / n;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(2.0);
        let sd = var.sqrt();
        let iqr = quantile_sorted(&s, 0.75) - quantile_sorted(&s, 0.25);
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        // Degenerate (constant) samples get a tiny positive bandwidth so the
        // density is a sharp spike rather than a division by zero.
        let bandwidth = if spread > 0.0 {
            0.9 * spread * n.powf(-0.2)
        } else {
            (s[0].abs() * 1e-3).max(1e-9)
        };
        Self {
            sample: s,
            bandwidth,
        }
    }

    /// Builds with an explicit bandwidth.
    ///
    /// # Panics
    /// Panics on empty sample or non-positive bandwidth.
    #[must_use]
    pub fn with_bandwidth(sample: Vec<f64>, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let mut kde = Self::new(sample);
        kde.bandwidth = bandwidth;
        kde
    }

    /// Selected bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    #[must_use]
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.sample.len() as f64) * h * (std::f64::consts::TAU).sqrt());
        self.sample
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Density evaluated on a uniform grid of `n` points spanning the sample
    /// padded by three bandwidths.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    #[must_use]
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        let lo = self.sample[0] - 3.0 * self.bandwidth;
        let hi = self.sample[self.sample.len() - 1] + 3.0 * self.bandwidth;
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.density(x))
            })
            .collect()
    }

    /// Location of the highest-density grid point — the violin's
    /// "widest part" that §V.C reasons about.
    #[must_use]
    pub fn mode(&self, grid: usize) -> f64 {
        self.curve(grid.max(2))
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("densities are finite"))
            .map(|(x, _)| x)
            .expect("non-empty curve")
    }
}

/// Everything a violin plot needs: quartiles, extremes, and the density
/// curve, computed in log10 space when `log_scale` (runtimes span seconds
/// to weeks).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ViolinSummary {
    /// Whether the density was computed on log10-transformed values.
    pub log_scale: bool,
    /// Sample size.
    pub n: usize,
    /// Minimum (original scale).
    pub min: f64,
    /// First quartile (original scale).
    pub q1: f64,
    /// Median (original scale).
    pub median: f64,
    /// Third quartile (original scale).
    pub q3: f64,
    /// Maximum (original scale).
    pub max: f64,
    /// Mode of the density (original scale).
    pub mode: f64,
    /// Density curve `(x, density)`; `x` is in original scale even when
    /// the KDE ran in log space.
    pub curve: Vec<(f64, f64)>,
}

impl ViolinSummary {
    /// Builds a violin summary. With `log_scale`, non-positive values are
    /// floored to `floor` before the log transform.
    ///
    /// # Panics
    /// Panics on an empty sample or non-positive `floor` with `log_scale`.
    #[must_use]
    pub fn build(sample: &[f64], log_scale: bool, floor: f64, grid: usize) -> Self {
        assert!(!sample.is_empty(), "violin needs a sample");
        let mut vals: Vec<f64> = sample.iter().copied().filter(|x| !x.is_nan()).collect();
        assert!(!vals.is_empty(), "violin needs non-NaN values");
        vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));

        let (min, max) = (vals[0], vals[vals.len() - 1]);
        let q1 = quantile_sorted(&vals, 0.25);
        let median = quantile_sorted(&vals, 0.5);
        let q3 = quantile_sorted(&vals, 0.75);

        let transformed: Vec<f64> = if log_scale {
            assert!(floor > 0.0, "log-scale floor must be positive");
            vals.iter().map(|&x| x.max(floor).log10()).collect()
        } else {
            vals.clone()
        };
        let kde = Kde::new(transformed);
        let raw_curve = kde.curve(grid.max(2));
        let back = |x: f64| if log_scale { 10f64.powf(x) } else { x };
        let curve: Vec<(f64, f64)> = raw_curve.into_iter().map(|(x, d)| (back(x), d)).collect();
        let mode = back(kde.mode(grid.max(2)));

        Self {
            log_scale,
            n: vals.len(),
            min,
            q1,
            median,
            q3,
            max,
            mode,
            curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn density_integrates_to_one() {
        let mut rng = Rng::new(1);
        let sample: Vec<f64> = (0..2_000).map(|_| rng.next_gaussian()).collect();
        let kde = Kde::new(sample);
        // Trapezoid integration over the padded grid.
        let curve = kde.curve(400);
        let mut integral = 0.0;
        for w in curve.windows(2) {
            integral += 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0);
        }
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn mode_of_gaussian_is_near_zero() {
        let mut rng = Rng::new(2);
        let sample: Vec<f64> = (0..5_000).map(|_| rng.next_gaussian()).collect();
        let kde = Kde::new(sample);
        assert!(kde.mode(200).abs() < 0.2);
    }

    #[test]
    fn constant_sample_does_not_explode() {
        let kde = Kde::new(vec![5.0; 100]);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(5.0).is_finite());
    }

    #[test]
    fn bimodal_sample_mode_is_on_a_bump() {
        let mut rng = Rng::new(3);
        let mut sample: Vec<f64> = (0..1_000).map(|_| rng.next_gaussian() * 0.2).collect();
        sample.extend((0..3_000).map(|_| 10.0 + rng.next_gaussian() * 0.2));
        let kde = Kde::new(sample);
        let mode = kde.mode(500);
        assert!((mode - 10.0).abs() < 0.5, "mode {mode}");
    }

    #[test]
    fn violin_quartiles_in_original_scale() {
        let sample: Vec<f64> = (1..=1_000).map(f64::from).collect();
        let v = ViolinSummary::build(&sample, true, 1.0, 100);
        assert_eq!(v.n, 1_000);
        assert_eq!(v.min, 1.0);
        assert_eq!(v.max, 1_000.0);
        assert!((v.median - 500.5).abs() < 1.0);
        assert!(v.curve.iter().all(|&(x, d)| x > 0.0 && d >= 0.0));
    }

    #[test]
    fn violin_linear_scale() {
        let sample = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let v = ViolinSummary::build(&sample, false, 1.0, 50);
        assert!(!v.log_scale);
        assert_eq!(v.median, 3.0);
    }

    #[test]
    #[should_panic(expected = "violin needs a sample")]
    fn violin_rejects_empty() {
        let _ = ViolinSummary::build(&[], false, 1.0, 10);
    }
}
