//! Linear and logarithmic histograms.
//!
//! The hourly-arrival panel of Fig. 1b is a 24-bin linear histogram;
//! runtime/size panels use log-spaced bins.

use serde::Serialize;

/// Fixed-width linear histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "lo must be < hi");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Ratio of the largest to the smallest nonzero bin count — the paper's
    /// "max-min ratio" for diurnal peak intensity (§III.A). Returns `None`
    /// if fewer than two bins are populated.
    #[must_use]
    pub fn max_min_ratio(&self) -> Option<f64> {
        let nonzero: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        if nonzero.len() < 2 {
            return None;
        }
        let max = *nonzero.iter().max().expect("non-empty");
        let min = *nonzero.iter().min().expect("non-empty");
        Some(max as f64 / min as f64)
    }
}

/// Log-spaced histogram over `[lo, hi)` with `lo > 0`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LogHistogram {
    log_lo: f64,
    log_hi: f64,
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` log-equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo <= 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi");
        Self {
            log_lo: lo.ln(),
            log_hi: hi.ln(),
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.log_hi - self.log_lo) / self.counts.len() as f64;
            let idx = ((x.ln() - self.log_lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Geometric center of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let width = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        (self.log_lo + width * (i as f64 + 0.5)).exp()
    }

    /// Observations below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 9.9] {
            h.add(x);
        }
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(1.0);
        h.add(5.0);
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn max_min_ratio() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..10 {
            h.add(0.5);
        }
        h.add(1.5);
        assert_eq!(h.max_min_ratio(), Some(10.0));
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.max_min_ratio(), None);
    }

    #[test]
    fn log_binning_spans_decades() {
        let mut h = LogHistogram::new(1.0, 1_000.0, 3);
        h.add(2.0); // decade [1,10)
        h.add(50.0); // decade [10,100)
        h.add(500.0); // decade [100,1000)
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert!((h.bin_center(0) - 10f64.powf(0.5)).abs() < 1e-9);
    }

    #[test]
    fn log_under_overflow() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.add(0.5);
        h.add(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }
}
