//! Deterministic pseudo-random number generation.
//!
//! Implements xoshiro256++ seeded through SplitMix64, the standard
//! recommendation of Blackman & Vigna. A `u64` seed fully determines the
//! stream, giving byte-for-byte reproducible traces, simulations, and model
//! fits — a requirement the whole workspace leans on (DESIGN.md §6).

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator; `stream` selects the child.
    /// Used to give each simulated user / subsystem its own stream without
    /// coupling their consumption rates.
    #[must_use]
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm = self
            .s
            .iter()
            .fold(stream ^ 0xA076_1D64_78BD_642F, |acc, &x| {
                acc.rotate_left(17) ^ x
            });
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` (never exactly zero);
    /// safe for `ln()` in inverse-transform sampling.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's method without bias correction is fine for bound ≪ 2^64;
        // we use the widening-multiply trick with rejection for exactness.
        loop {
            let x = self.next_u64();
            let m = (u128::from(x) * u128::from(bound)) >> 64;
            let low = x.wrapping_mul(bound);
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return m as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (one value per call; the pair's
    /// second member is discarded to keep the API stateless).
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let base = Rng::new(7);
        let mut c1 = base.fork(0);
        let mut c2 = base.fork(1);
        let mut c1b = base.fork(0);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(13);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(1);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }
}
