//! # lumos-stats
//!
//! Statistics substrate for the `lumos-rs` workspace: everything the
//! characterization analyses, trace generators, simulator, and prediction
//! models need, implemented from scratch:
//!
//! * [`rng::Rng`] — deterministic xoshiro256++ PRNG seeded via SplitMix64,
//! * [`dist`] — inverse-transform / Box–Muller samplers (exponential,
//!   log-normal, Pareto, Weibull, uniform, discrete, mixtures),
//! * [`ecdf::Ecdf`] — empirical CDFs with interpolated quantiles,
//! * [`mod@quantile`] — type-7 quantiles on slices,
//! * [`histogram`] — linear and logarithmic histograms,
//! * [`kde`] — Gaussian kernel density estimates (violin plots, Figs. 1a & 11),
//! * [`summary::Summary`] — Welford streaming moments,
//! * [`streaming::P2Quantile`] — P² streaming quantiles (O(1) memory),
//! * [`correlation`] — Pearson and Spearman coefficients,
//! * [`fairness`] — Jain's fairness index over per-tenant allocations.
//!
//! All randomness in the workspace flows through [`rng::Rng`] so that a
//! `u64` seed fully determines every trace, simulation, and model fit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod dist;
pub mod ecdf;
pub mod fairness;
pub mod histogram;
pub mod kde;
pub mod quantile;
pub mod rng;
pub mod streaming;
pub mod summary;

pub use dist::{Discrete, Exponential, LogNormal, Mixture, Pareto, Sampler, Uniform, Weibull};
pub use ecdf::Ecdf;
pub use fairness::jain_index;
pub use histogram::{Histogram, LogHistogram};
pub use kde::{Kde, ViolinSummary};
pub use quantile::{median, quantile, quantiles};
pub use rng::Rng;
pub use streaming::{P2Quantile, QuantileBank};
pub use summary::Summary;
