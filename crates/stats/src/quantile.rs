//! Interpolated (type-7) quantiles on slices.

/// Type-7 quantile of an **unsorted** sample (the R / NumPy default).
/// Copies and sorts internally; use [`quantile_sorted`] in hot paths.
///
/// # Panics
/// Panics on an empty sample or `p` outside `[0, 1]`.
#[must_use]
pub fn quantile(sample: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = sample.iter().copied().filter(|x| !x.is_nan()).collect();
    assert!(!v.is_empty(), "quantile of empty sample");
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
    quantile_sorted(&v, p)
}

/// Type-7 quantile of an already **sorted** (ascending, NaN-free) sample.
///
/// # Panics
/// Panics on an empty sample or `p` outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience: several quantiles at once (single sort).
///
/// # Panics
/// Panics on empty sample or any `p` outside `[0, 1]`.
#[must_use]
pub fn quantiles(sample: &[f64], ps: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = sample.iter().copied().filter(|x| !x.is_nan()).collect();
    assert!(!v.is_empty(), "quantiles of empty sample");
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
    ps.iter().map(|&p| quantile_sorted(&v, p)).collect()
}

/// Median shorthand.
///
/// # Panics
/// Panics on an empty sample.
#[must_use]
pub fn median(sample: &[f64]) -> f64 {
    quantile(sample, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let s = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 3.0);
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.quantile([1,2,3,4], 0.25) == 1.75
        let s = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&s, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&s, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&s, 0.75) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.3), 42.0);
    }

    #[test]
    fn nan_filtered() {
        assert_eq!(median(&[f64::NAN, 1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let s = [5.0, 1.0, 9.0, 3.0, 7.0];
        let qs = quantiles(&s, &[0.1, 0.5, 0.9]);
        assert_eq!(qs[0], quantile(&s, 0.1));
        assert_eq!(qs[1], quantile(&s, 0.5));
        assert_eq!(qs[2], quantile(&s, 0.9));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = median(&[]);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn out_of_range_p_panics() {
        let _ = quantile(&[1.0], 1.5);
    }
}
