//! Distribution samplers.
//!
//! The trace generators model the paper's per-system workload facts with
//! heavy-tailed runtime distributions (log-normal, Pareto, Weibull),
//! exponential arrival gaps, and discrete mixtures. All samplers are
//! implemented from scratch on top of [`crate::rng::Rng`] via inverse
//! transform or Box–Muller.

use crate::rng::Rng;

/// A source of `f64` samples.
pub trait Sampler {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// Theoretical mean, if finite and known.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform sampler. Requires `lo <= hi` and finite bounds.
    ///
    /// # Panics
    /// Panics on invalid bounds.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds"
        );
        Self { lo, hi }
    }
}

impl Sampler for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Exponential distribution with the given rate λ (mean `1/λ`).
/// Used for job inter-arrival gaps (the paper treats arrivals as a
/// modulated Poisson process, §III.A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential sampler with rate `rate > 0`.
    ///
    /// # Panics
    /// Panics if `rate <= 0` or non-finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "bad exponential rate");
        Self { rate }
    }

    /// Creates an exponential sampler with the given mean.
    ///
    /// # Panics
    /// Panics if `mean <= 0` or non-finite.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }
}

/// Log-normal distribution: `exp(μ + σ·Z)`.
/// The canonical model for job runtimes in workload archives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal sampler with log-space mean `mu` and log-space
    /// standard deviation `sigma >= 0`.
    ///
    /// # Panics
    /// Panics on non-finite parameters or negative `sigma`.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad lognormal params"
        );
        Self { mu, sigma }
    }

    /// Parameterises by median (`exp(mu)`) and σ — convenient when
    /// calibrating to the paper's reported medians.
    ///
    /// # Panics
    /// Panics if `median <= 0`.
    #[must_use]
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma)
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.next_gaussian()).exp()
    }
    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
/// Models the extreme right tail of DL training jobs (weeks-long runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto sampler. Requires `x_min > 0` and `alpha > 0`.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    #[must_use]
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "bad pareto params");
        Self { x_min, alpha }
    }
}

impl Sampler for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.x_min / rng.next_f64_open().powf(1.0 / self.alpha)
    }
    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

/// Weibull distribution with scale λ and shape k.
/// `k < 1` gives the decreasing-hazard behaviour typical of failure times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull sampler. Requires positive scale and shape.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    #[must_use]
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0 && shape > 0.0, "bad weibull params");
        Self { scale, shape }
    }
}

impl Sampler for Weibull {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.scale * (-rng.next_f64_open().ln()).powf(1.0 / self.shape)
    }
}

/// Discrete distribution over arbitrary `f64` support points with
/// unnormalised weights. Sampling is O(log n) by binary search over the
/// cumulative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    values: Vec<f64>,
    cumulative: Vec<f64>,
    total: f64,
}

impl Discrete {
    /// Builds from `(value, weight)` pairs. Weights must be non-negative and
    /// sum to a positive total.
    ///
    /// # Panics
    /// Panics on empty input, negative weights, or zero total weight.
    #[must_use]
    pub fn new(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "discrete distribution needs support");
        let mut values = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for &(v, w) in pairs {
            assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
            acc += w;
            values.push(v);
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        Self {
            values,
            cumulative,
            total: acc,
        }
    }

    /// Samples an index into the support (useful when values carry meaning
    /// beyond their numeric value).
    #[must_use]
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        let x = rng.next_f64() * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("NaN in cumulative"))
        {
            Ok(i) | Err(i) => i.min(self.values.len() - 1),
        }
    }
}

impl Sampler for Discrete {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.values[self.sample_index(rng)]
    }
    fn mean(&self) -> Option<f64> {
        let mut prev = 0.0;
        let mut acc = 0.0;
        for (v, c) in self.values.iter().zip(&self.cumulative) {
            acc += v * (c - prev);
            prev = *c;
        }
        Some(acc / self.total)
    }
}

/// Mixture of samplers with unnormalised component weights.
/// Job runtime distributions in the paper's violins are multi-modal
/// (e.g. Philly's seconds-long debug jobs vs weeks-long training runs),
/// which mixtures capture directly.
pub struct Mixture {
    components: Vec<(f64, Box<dyn Sampler + Send + Sync>)>,
    total: f64,
}

impl Mixture {
    /// Builds from `(weight, sampler)` pairs.
    ///
    /// # Panics
    /// Panics on empty input or non-positive total weight.
    #[must_use]
    pub fn new(components: Vec<(f64, Box<dyn Sampler + Send + Sync>)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "mixture weights must sum to a positive value");
        Self { components, total }
    }
}

impl Sampler for Mixture {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let mut x = rng.next_f64() * self.total;
        for (w, s) in &self.components {
            if x < *w {
                return s.sample(rng);
            }
            x -= w;
        }
        self.components
            .last()
            .expect("non-empty mixture")
            .1
            .sample(rng)
    }
}

/// Clamps a sampler's output into `[lo, hi]` — used to keep synthetic
/// runtimes and sizes inside physically meaningful ranges.
pub struct Clamped<S> {
    inner: S,
    lo: f64,
    hi: f64,
}

impl<S: Sampler> Clamped<S> {
    /// Wraps `inner`, clamping samples into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(inner: S, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "bad clamp range");
        Self { inner, lo, hi }
    }
}

impl<S: Sampler> Sampler for Clamped<S> {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_n(s: &dyn Sampler, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| s.sample(&mut rng)).collect()
    }

    fn mean_of(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn exponential_mean() {
        let s = Exponential::with_mean(120.0);
        let xs = sample_n(&s, 1, 100_000);
        assert!((mean_of(&xs) - 120.0).abs() < 2.0);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_median() {
        let s = LogNormal::from_median(5_400.0, 1.0);
        let mut xs = sample_n(&s, 2, 100_001);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med / 5_400.0 - 1.0).abs() < 0.05, "median {med}");
    }

    #[test]
    fn lognormal_theoretical_mean() {
        let s = LogNormal::new(2.0, 0.5);
        let expected = (2.0f64 + 0.125).exp();
        assert!((s.mean().unwrap() - expected).abs() < 1e-12);
        let xs = sample_n(&s, 3, 200_000);
        assert!((mean_of(&xs) / expected - 1.0).abs() < 0.02);
    }

    #[test]
    fn pareto_support_and_tail() {
        let s = Pareto::new(10.0, 1.5);
        let xs = sample_n(&s, 4, 50_000);
        assert!(xs.iter().all(|&x| x >= 10.0));
        // P(X > 100) = (10/100)^1.5 ≈ 0.0316
        let tail = xs.iter().filter(|&&x| x > 100.0).count() as f64 / xs.len() as f64;
        assert!((tail - 0.0316).abs() < 0.01, "tail {tail}");
    }

    #[test]
    fn weibull_shape_below_one_is_heavy_near_zero() {
        let s = Weibull::new(100.0, 0.5);
        let xs = sample_n(&s, 5, 50_000);
        let below_scale = xs.iter().filter(|&&x| x < 100.0).count() as f64 / xs.len() as f64;
        // P(X < λ) = 1 - e^{-1} ≈ 0.632 for any shape.
        assert!((below_scale - 0.632).abs() < 0.01);
    }

    #[test]
    fn discrete_respects_weights() {
        let s = Discrete::new(&[(1.0, 8.0), (2.0, 1.0), (3.0, 1.0)]);
        let xs = sample_n(&s, 6, 100_000);
        let ones = xs.iter().filter(|&&x| x == 1.0).count() as f64 / xs.len() as f64;
        assert!((ones - 0.8).abs() < 0.01, "ones {ones}");
        assert!((s.mean().unwrap() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn discrete_single_point() {
        let s = Discrete::new(&[(7.0, 1.0)]);
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 7.0);
        }
    }

    #[test]
    fn mixture_blends_components() {
        let m = Mixture::new(vec![
            (
                0.5,
                Box::new(Uniform::new(0.0, 1.0)) as Box<dyn Sampler + Send + Sync>,
            ),
            (0.5, Box::new(Uniform::new(10.0, 11.0))),
        ]);
        let xs = sample_n(&m, 7, 50_000);
        let low = xs.iter().filter(|&&x| x < 5.0).count() as f64 / xs.len() as f64;
        assert!((low - 0.5).abs() < 0.02);
    }

    #[test]
    fn clamped_restricts_range() {
        let c = Clamped::new(Pareto::new(1.0, 0.5), 1.0, 100.0);
        let xs = sample_n(&c, 8, 10_000);
        assert!(xs.iter().all(|&x| (1.0..=100.0).contains(&x)));
        assert!(xs.contains(&100.0), "heavy tail should clamp");
    }

    #[test]
    #[should_panic(expected = "bad exponential rate")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn discrete_rejects_zero_weights() {
        let _ = Discrete::new(&[(1.0, 0.0)]);
    }
}
