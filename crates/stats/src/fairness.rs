//! Fairness metrics for multi-tenant allocations.
//!
//! The serving layer reports Jain's fairness index over per-tenant
//! delivered service so operators can see, in one number, how evenly a
//! policy splits the machine (Jain, Chiu & Hawe, 1984).

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// Ranges over `(0, 1]` for non-negative allocations with at least one
/// positive entry: `1.0` means perfectly even, `1/n` means one party
/// holds everything. Degenerate inputs — an empty slice or all-zero
/// allocations — report `1.0` (nobody is being treated unevenly when
/// nothing has been allocated). Negative or non-finite entries are
/// rejected as `None` rather than silently folded in.
#[must_use]
pub fn jain_index(allocations: &[f64]) -> Option<f64> {
    if allocations
        .iter()
        .any(|x| !x.is_finite() || x.is_sign_negative() && *x != 0.0)
    {
        return None;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return Some(1.0);
    }
    Some(sum * sum / (allocations.len() as f64 * sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_allocation_is_one() {
        let j = jain_index(&[5.0, 5.0, 5.0, 5.0]).unwrap();
        assert!((j - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_is_one_over_n() {
        let j = jain_index(&[12.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn skew_lands_between_extremes() {
        let j = jain_index(&[90.0, 10.0]).unwrap();
        // (100)^2 / (2 * (8100 + 100)) = 10000 / 16400
        assert!((j - 10_000.0 / 16_400.0).abs() < 1e-12);
        assert!(j > 0.5 && j < 1.0);
    }

    #[test]
    fn degenerate_inputs_report_one() {
        assert_eq!(jain_index(&[]), Some(1.0));
        assert_eq!(jain_index(&[0.0, 0.0]), Some(1.0));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert_eq!(jain_index(&[1.0, -2.0]), None);
        assert_eq!(jain_index(&[f64::NAN]), None);
        assert_eq!(jain_index(&[f64::INFINITY, 1.0]), None);
    }

    #[test]
    fn scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = jain_index(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
