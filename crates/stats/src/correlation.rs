//! Pearson and Spearman correlation coefficients.
//!
//! Used by the failure-vs-geometry analyses (§IV.B) and generator
//! calibration tests.

/// Pearson product-moment correlation. Returns `None` when either input has
/// zero variance or the slices differ in length / are shorter than 2.
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Mid-ranks (average ranks for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN in ranks"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on mid-ranks). Same `None` conditions
/// as [`pearson`].
#[must_use]
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|&v| f64::exp(v)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is not 1 for a convex transform.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn zero_variance_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
    }

    #[test]
    fn mismatched_lengths_none() {
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(spearman(&[1.0, 2.0, 3.0], &[1.0]), None);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
