//! Streaming moments via Welford's algorithm.

use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance / min / max accumulator.
/// Mergeable, so per-shard summaries from rayon workers combine exactly.
///
/// Serialization caveat: JSON has no `Infinity`, so the `min`/`max`
/// sentinels of an *empty* summary round-trip through `null` into NaN.
/// That is behaviorally transparent — `f64::min(NAN, x)` is `x`, and the
/// accessors gate on `n > 0` — but an empty summary is not `==` to its
/// round-tripped self. Non-empty summaries round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds from a slice.
    #[must_use]
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// Adds one observation (NaNs are ignored).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1_000).map(|i| (i as f64).sin() * 100.0).collect();
        let whole = Summary::of(&xs);
        let mut a = Summary::of(&xs[..300]);
        let b = Summary::of(&xs[300..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn nan_ignored() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_empty_summary_round_trips_exactly() {
        let s = Summary::of(&[1.5, -2.25, 300.0, 0.125]);
        let json = serde_json::to_string(&s).unwrap();
        let r: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(r, s);
    }

    #[test]
    fn empty_summary_round_trip_is_behaviorally_transparent() {
        // JSON null → NaN for the infinite sentinels; adding afterwards
        // still works because f64::min(NAN, x) == x.
        let json = serde_json::to_string(&Summary::new()).unwrap();
        let mut r: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(r.count(), 0);
        assert_eq!(r.min(), None);
        r.add(4.0);
        r.add(2.0);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(4.0));
    }
}
