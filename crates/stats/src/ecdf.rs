//! Empirical cumulative distribution functions.
//!
//! Every "CDF of X" figure in the paper (runtime, arrival interval,
//! requested cores, waiting time, turnaround) is an [`Ecdf`] evaluated on a
//! per-system sample.

use serde::Serialize;

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF, dropping NaNs and sorting the sample.
    ///
    /// # Panics
    /// Panics if the filtered sample is empty.
    #[must_use]
    pub fn new(mut sample: Vec<f64>) -> Self {
        sample.retain(|x| !x.is_nan());
        assert!(!sample.is_empty(), "ECDF needs a non-empty sample");
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        Self { sorted: sample }
    }

    /// Builds from an iterator.
    ///
    /// # Panics
    /// Panics if the iterator yields no non-NaN values.
    #[allow(clippy::should_implement_trait)] // keeps callers trait-import-free
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }

    /// Sample size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — fraction of the sample ≤ `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Interpolated quantile (type 7), `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        crate::quantile::quantile_sorted(&self.sorted, p)
    }

    /// Median (`quantile(0.5)`).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum of the sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum of the sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The sorted sample.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the ECDF on a grid of `n` points log-spaced between
    /// `max(min, floor)` and `max` — the shape the paper's log-x CDF plots
    /// use. Returns `(x, F(x))` pairs. `floor` guards against zero values
    /// on a log axis.
    ///
    /// # Panics
    /// Panics if `n < 2` or `floor <= 0`.
    #[must_use]
    pub fn log_curve(&self, n: usize, floor: f64) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two curve points");
        assert!(floor > 0.0, "log axis floor must be positive");
        let lo = self.min().max(floor);
        let hi = self.max().max(lo * (1.0 + 1e-12));
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..n)
            .map(|i| {
                // Pin the endpoints exactly: exp(ln(x)) can round below x,
                // which would leave the final point short of F(max) = 1.
                let x = if i == 0 {
                    lo
                } else if i == n - 1 {
                    hi
                } else {
                    (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp()
                };
                (x, self.eval(x))
            })
            .collect()
    }

    /// Evaluates on a linear grid of `n` points between min and max.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    #[must_use]
    pub fn linear_curve(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two curve points");
        let (lo, hi) = (self.min(), self.max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Two-sample Kolmogorov–Smirnov statistic `sup |F1 - F2|` — used by
    /// generator-calibration tests to compare synthetic samples against
    /// reference shapes.
    #[must_use]
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        for &x in &other.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_right_continuous_step() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn median_interpolates() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((e.median() - 2.5).abs() < 1e-12);
        let odd = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(odd.median(), 2.0);
    }

    #[test]
    fn drops_nans() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = Ecdf::new(vec![f64::NAN]);
    }

    #[test]
    fn log_curve_is_monotone() {
        let e = Ecdf::new((1..=1000).map(f64::from).collect());
        let curve = e.log_curve(50, 1.0);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.ks_statistic(&b), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert!((a.ks_statistic(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_mean() {
        let e = Ecdf::new(vec![2.0, 4.0, 6.0]);
        assert_eq!(e.min(), 2.0);
        assert_eq!(e.max(), 6.0);
        assert!((e.mean() - 4.0).abs() < 1e-12);
    }
}
