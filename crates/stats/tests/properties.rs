//! Property-based tests for the statistics substrate.

use lumos_stats::{quantile, quantiles, Ecdf, Rng, Summary};
use proptest::prelude::*;

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9f64..1e9, 1..200)
}

proptest! {
    #[test]
    fn quantile_is_within_sample_bounds(xs in finite_vec(), p in 0.0f64..=1.0) {
        let q = quantile(&xs, p);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(q >= min - 1e-9 && q <= max + 1e-9, "q={q} not in [{min},{max}]");
    }

    #[test]
    fn quantiles_are_monotone_in_p(xs in finite_vec(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let qs = quantiles(&xs, &[lo, hi]);
        prop_assert!(qs[0] <= qs[1] + 1e-9);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(xs in finite_vec(), probe in -1e9f64..1e9) {
        let e = Ecdf::new(xs);
        let f = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(e.eval(probe + 1.0) >= f);
        prop_assert_eq!(e.eval(e.max()), 1.0);
    }

    #[test]
    fn ecdf_quantile_roundtrip(xs in finite_vec(), p in 0.01f64..=0.99) {
        // F(quantile(p)) >= p (up to the step granularity of 1/n).
        let e = Ecdf::new(xs);
        let q = e.quantile(p);
        prop_assert!(e.eval(q) + 1.0 / e.len() as f64 >= p - 1e-9);
    }

    #[test]
    fn summary_merge_matches_sequential(xs in finite_vec(), split in 0usize..200) {
        let cut = split.min(xs.len());
        let whole = Summary::of(&xs);
        let mut left = Summary::of(&xs[..cut]);
        left.merge(&Summary::of(&xs[cut..]));
        prop_assert_eq!(whole.count(), left.count());
        let scale = whole.mean().abs().max(1.0);
        prop_assert!((whole.mean() - left.mean()).abs() / scale < 1e-9);
        let vscale = whole.variance().abs().max(1.0);
        prop_assert!((whole.variance() - left.variance()).abs() / vscale < 1e-6);
    }

    #[test]
    fn summary_bounds_hold(xs in finite_vec()) {
        let s = Summary::of(&xs);
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        prop_assert!(min <= s.mean() + 1e-9 && s.mean() <= max + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn rng_next_below_is_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn rng_forks_are_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let base = Rng::new(seed);
        let mut a = base.fork(stream);
        let mut b = base.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ks_statistic_is_a_metricish_bound(xs in finite_vec(), ys in finite_vec()) {
        let a = Ecdf::new(xs);
        let b = Ecdf::new(ys);
        let d = a.ks_statistic(&b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((a.ks_statistic(&a)).abs() < 1e-12);
        prop_assert!((d - b.ks_statistic(&a)).abs() < 1e-12, "symmetric");
    }
}
