//! Replay synthetic paper traces through the simulator and check the
//! system-level behaviours the paper reports (§III.B).

use lumos_core::SystemId;
use lumos_sim::{simulate, SimConfig};
use lumos_traces::{systems, Generator, GeneratorConfig};

fn replay(id: SystemId, seed: u64, days: u32) -> lumos_sim::SimResult {
    let trace = Generator::new(
        systems::profile_for(id),
        GeneratorConfig {
            seed,
            span_days: days,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    simulate(&trace, &SimConfig::default())
}

#[test]
fn all_systems_replay_to_completion() {
    for id in SystemId::PAPER_SYSTEMS {
        let r = replay(id, 11, 1);
        assert!(r.jobs.iter().all(|j| j.wait.is_some()), "{id:?}");
        assert!(r.metrics.util > 0.0, "{id:?} util {}", r.metrics.util);
        assert!(
            r.metrics.util <= 1.0 + 1e-9,
            "{id:?} util {}",
            r.metrics.util
        );
    }
}

#[test]
fn replay_is_deterministic() {
    let a = replay(SystemId::Theta, 3, 2);
    let b = replay(SystemId::Theta, 3, 2);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn helios_waits_are_short_and_blue_waters_waits_are_long() {
    let helios = replay(SystemId::Helios, 5, 2);
    let bw = replay(SystemId::BlueWaters, 5, 2);
    // Paper Fig. 4: ~80 % of Helios jobs wait < 10 s; BW median wait ≳ 1 h.
    let helios_short = helios.jobs.iter().filter(|j| j.wait.unwrap() <= 10).count() as f64
        / helios.jobs.len() as f64;
    assert!(helios_short > 0.6, "Helios short-wait share {helios_short}");
    assert!(
        bw.metrics.median_wait > helios.metrics.median_wait,
        "BW median {} vs Helios {}",
        bw.metrics.median_wait,
        helios.metrics.median_wait
    );
}

#[test]
fn philly_utilization_is_lowest_among_dl_systems() {
    let philly = replay(SystemId::Philly, 7, 2);
    // Paper Fig. 3: Philly's virtual-cluster isolation keeps utilization
    // low even with jobs waiting.
    assert!(
        philly.metrics.util < 0.8,
        "Philly util {}",
        philly.metrics.util
    );
}
