//! Integration tests for the tenancy subsystem: fair-share policies
//! actually equalize delivered service, quotas refuse without side
//! effects, and tenant accounting survives checkpoint/restore.

use lumos_core::{CoreError, Job, SystemSpec};
use lumos_sim::{Policy, SimConfig, SimSession, TenantTable};

fn tiny_system(capacity: u64) -> SystemSpec {
    let mut s = SystemSpec::theta();
    s.name = "tenant-test".into();
    s.total_nodes = capacity as u32;
    s.units_per_node = 1;
    s.total_units = capacity;
    s
}

/// A skewed backlog on an 8-unit machine: 16 `heavy` jobs and 4 `light`
/// jobs, all submitted at t = 0, each 2 units × 400 s — so exactly four
/// run at a time and the policy alone decides whose.
fn skewed_session(policy: Policy, table: &str) -> SimSession {
    let sim = SimConfig {
        policy,
        ..SimConfig::default()
    };
    let table = TenantTable::parse(table).expect("valid table");
    let mut session = SimSession::new_with_tenants(&tiny_system(8), sim, table);
    session.advance_to(0);
    let heavy = session.resolve_tenant(Some("heavy")).unwrap();
    let light = session.resolve_tenant(Some("light")).unwrap();
    for i in 0..16u64 {
        session
            .submit_with_tenant(Job::basic(i, 0, 0, 400, 2), heavy, Some(450))
            .unwrap();
    }
    for i in 100..104u64 {
        session
            .submit_with_tenant(Job::basic(i, 1, 0, 400, 2), light, Some(450))
            .unwrap();
    }
    session
}

/// Weight-normalized delivered service per tenant with at least one
/// accepted job, at the session's current instant.
fn delivered(session: &SimSession) -> Vec<(String, f64)> {
    session
        .tenant_usage()
        .expect("tenancy enabled")
        .into_iter()
        .filter(|u| u.counts.submitted > 0)
        .map(|u| (u.name, u.served_unit_seconds as f64 / u.weight))
        .collect()
}

#[test]
fn maxmin_interleaves_tenants_where_fcfs_starves() {
    // FCFS: all sixteen heavy jobs (lower ids) start first; at t = 500
    // the light tenant has been delivered nothing.
    let mut fcfs = skewed_session(Policy::Fcfs, "heavy 1\nlight 1\n");
    fcfs.advance_to(500);
    let served = delivered(&fcfs);
    assert_eq!(served[0], ("heavy".into(), 6400.0));
    assert_eq!(served[1], ("light".into(), 0.0));

    // Max-min: each wave alternates tenants until the light backlog is
    // exhausted, so at t = 500 delivered service is exactly equal.
    let mut maxmin = skewed_session(Policy::MaxMinFair, "heavy 1\nlight 1\n");
    maxmin.advance_to(500);
    let served = delivered(&maxmin);
    assert_eq!(served[0], ("heavy".into(), 3200.0));
    assert_eq!(served[1], ("light".into(), 3200.0));

    // Jain's index over the same vectors pins the acceptance criterion:
    // max-min is strictly fairer than FCFS on this trace.
    let jain = |s: &[(String, f64)]| {
        lumos_stats::jain_index(&s.iter().map(|(_, x)| *x).collect::<Vec<_>>()).unwrap()
    };
    let (jf, jm) = (jain(&delivered(&fcfs)), jain(&delivered(&maxmin)));
    assert!(jm > jf, "max-min ({jm}) must beat FCFS ({jf})");
    assert!((jf - 0.5).abs() < 1e-12, "FCFS starves light: {jf}");
    assert!((jm - 1.0).abs() < 1e-12, "max-min equalizes: {jm}");
}

#[test]
fn weighted_fair_delivers_in_weight_ratio() {
    // heavy carries weight 3: out of every four slots it is entitled to
    // three. After the first wave (t = 500), delivered raw service is
    // 3:1 — i.e. equal once normalized by weight.
    let mut session = skewed_session(Policy::WeightedFair, "heavy 3\nlight 1\n");
    session.advance_to(500);
    let usage = session.tenant_usage().unwrap();
    assert_eq!(usage[0].name, "heavy");
    assert_eq!(usage[0].served_unit_seconds, 2 * 2400);
    assert_eq!(usage[1].name, "light");
    assert_eq!(usage[1].served_unit_seconds, 2 * 800);
}

#[test]
fn fair_share_without_tenants_degrades_to_fcfs() {
    // The same arrival sequence through an untenanted max-min session
    // and an untenanted FCFS session must schedule identically.
    let run = |policy: Policy| {
        let sim = SimConfig {
            policy,
            ..SimConfig::default()
        };
        let mut session = SimSession::new(&tiny_system(8), sim);
        session.advance_to(0);
        for i in 0..12u64 {
            let procs = 1 + i % 3;
            session
                .submit_with_walltime(
                    Job::basic(i, 0, (i as i64) * 7, 100 + (i as i64) * 31, procs),
                    Some(600),
                )
                .unwrap();
        }
        session.advance_to(10_000);
        session.drain_events()
    };
    assert_eq!(run(Policy::MaxMinFair), run(Policy::Fcfs));
    assert_eq!(run(Policy::WeightedFair), run(Policy::Fcfs));
}

#[test]
fn quota_rejection_is_stateless() {
    let table = TenantTable::parse("capped 1 4\n").unwrap();
    let mut session = SimSession::new_with_tenants(&tiny_system(8), SimConfig::default(), table);
    session.advance_to(0);
    let capped = session.resolve_tenant(Some("capped")).unwrap();
    session
        .submit_with_tenant(Job::basic(1, 0, 0, 100, 3), capped, None)
        .unwrap();
    let before = session.save_state();

    // 3 outstanding + 2 requested > 4: refused with full context...
    let err = session
        .submit_with_tenant(Job::basic(2, 0, 0, 100, 2), capped, None)
        .unwrap_err();
    assert_eq!(
        err,
        CoreError::QuotaExceeded {
            tenant: "capped".into(),
            requested: 2,
            in_use: 3,
            quota: 4,
        }
    );
    // ...and without any trace: the refused job never existed.
    assert_eq!(session.save_state(), before);

    // Within quota still works; releasing via completion frees it again.
    session
        .submit_with_tenant(Job::basic(3, 0, 0, 100, 1), capped, None)
        .unwrap();
    session.advance_to(200); // both jobs finished
    session
        .submit_with_tenant(Job::basic(4, 0, 200, 100, 4), capped, None)
        .unwrap();
}

#[test]
fn unknown_tenants_are_refused() {
    let table = TenantTable::parse("alice 1\n").unwrap();
    let mut with = SimSession::new_with_tenants(&tiny_system(8), SimConfig::default(), table);
    with.advance_to(0);
    assert!(matches!(
        with.resolve_tenant(Some("mallory")),
        Err(CoreError::UnknownTenant { .. })
    ));
    // Untenanted submissions land on the built-in default tenant.
    assert_eq!(with.resolve_tenant(None).unwrap(), None);
    with.submit_with_tenant(Job::basic(1, 0, 0, 10, 1), None, None)
        .unwrap();
    let usage = with.tenant_usage().unwrap();
    let default = usage.iter().find(|u| u.name == "default").unwrap();
    assert_eq!(default.counts.submitted, 1);

    // Naming any tenant on a tenant-less session is an error too.
    let without = SimSession::new(&tiny_system(8), SimConfig::default());
    assert!(matches!(
        without.resolve_tenant(Some("alice")),
        Err(CoreError::UnknownTenant { .. })
    ));
}

#[test]
fn checkpoint_restore_preserves_tenant_accounting() {
    let system = tiny_system(8);
    let mut live = skewed_session(Policy::MaxMinFair, "heavy 1\nlight 1\n");
    live.advance_to(450); // mid-backlog: running, waiting, finished mix
    live.drain_events();

    let state = live.save_state();
    let mut restored = SimSession::restore(&system, state.clone()).expect("restore");
    assert_eq!(restored.save_state(), state, "save/restore round-trips");
    assert_eq!(restored.tenant_usage(), live.tenant_usage());

    // Both sessions must continue identically — accounting included.
    live.advance_to(2_000);
    restored.advance_to(2_000);
    assert_eq!(restored.drain_events(), live.drain_events());
    assert_eq!(restored.tenant_usage(), live.tenant_usage());
    assert_eq!(restored.save_state(), live.save_state());
}

#[test]
fn restore_rejects_inconsistent_tenancy() {
    let system = tiny_system(8);
    let mut session = skewed_session(Policy::MaxMinFair, "heavy 1\nlight 1\n");
    session.advance_to(100);

    // tenant_of must cover every job...
    let mut state = session.save_state();
    state.tenant_of.as_mut().unwrap().pop();
    assert!(SimSession::restore(&system, state).is_err());

    // ...name only in-table tenants...
    let mut state = session.save_state();
    state.tenant_of.as_mut().unwrap()[0] = 999;
    assert!(SimSession::restore(&system, state).is_err());

    // ...and travel together with the table.
    let mut state = session.save_state();
    state.tenants = None;
    assert!(SimSession::restore(&system, state).is_err());
}
