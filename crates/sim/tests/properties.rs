//! Property-based tests for the scheduling simulator: conservation,
//! capacity, and determinism invariants over random workloads.

use lumos_core::{Job, SystemSpec, Trace};
use lumos_sim::profile::CapacityProfile;
use lumos_sim::{
    simulate, Backfill, Policy, Relax, SessionState, SimConfig, SimSession, TenantTable,
};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

fn tiny_system(capacity: u64) -> SystemSpec {
    let mut s = SystemSpec::theta();
    s.name = "prop".into();
    s.total_nodes = capacity as u32;
    s.units_per_node = 1;
    s.total_units = capacity;
    s
}

fn arb_jobs(capacity: u64) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec((0i64..5_000, 1i64..2_000, 1..=capacity, 1i64..4_000), 1..60).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (submit, runtime, procs, wall))| {
                    let mut j = Job::basic(i as u64, (i % 5) as u32, submit, runtime, procs);
                    j.walltime = Some(runtime + wall);
                    j
                })
                .collect()
        },
    )
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        prop_oneof![
            Just(Policy::Fcfs),
            Just(Policy::Sjf),
            Just(Policy::Ljf),
            Just(Policy::Saf),
            Just(Policy::Sqf)
        ],
        prop_oneof![
            Just(Backfill::None),
            Just(Backfill::Easy),
            Just(Backfill::Conservative)
        ],
        prop_oneof![
            Just(Relax::Strict),
            Just(Relax::Fixed { factor: 0.1 }),
            Just(Relax::Adaptive { base: 0.1 })
        ],
    )
        .prop_map(|(policy, backfill, relax)| SimConfig {
            policy,
            backfill,
            relax,
            ..SimConfig::default()
        })
}

/// Verifies the fundamental schedule invariants: every job runs exactly
/// once, never before submission, and total occupancy never exceeds
/// capacity at any start instant.
fn check_schedule(trace: &Trace, config: &SimConfig) -> Result<(), TestCaseError> {
    let result = simulate(trace, config);
    prop_assert_eq!(result.jobs.len(), trace.len());

    let mut intervals: Vec<(i64, i64, u64)> = Vec::new();
    for j in &result.jobs {
        let wait = j.wait.expect("every job scheduled");
        prop_assert!(wait >= 0, "job {} started before submission", j.id);
        let start = j.submit + wait;
        intervals.push((start, start + j.runtime, j.procs));
    }
    // Capacity check at every start instant (occupancy only changes there).
    let capacity = trace.system.total_units;
    for &(t, _, _) in &intervals {
        let used: u64 = intervals
            .iter()
            .filter(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, p)| p)
            .sum();
        prop_assert!(
            used <= capacity,
            "capacity exceeded at t={t}: {used} > {capacity}"
        );
    }
    Ok(())
}

/// Replays the trace through a [`SimSession`] with a seed-derived
/// interleaving of `submit` / `advance_to` / read-only calls and checks
/// the outcome is identical to one batch [`simulate`] run.
fn check_incremental_matches_batch(
    trace: &Trace,
    config: &SimConfig,
    seed: u64,
) -> Result<(), TestCaseError> {
    let batch = simulate(trace, config);
    let mut rng = TestRng::new(seed);
    let mut session = SimSession::new(&trace.system, *config);
    for job in trace.jobs() {
        // Sometimes advance part of the way (any target ≤ the next submit
        // keeps the submission valid; past targets are no-ops).
        if rng.next_u64() % 3 == 0 {
            let target = rng.next_u64() as i64 % (job.submit + 1);
            session.advance_to(target.max(0));
        }
        // Read-only observers must never perturb the schedule.
        if rng.next_u64() % 4 == 0 {
            let _ = session.snapshot();
            let _ = session.drain_events();
        }
        session
            .submit(job.clone())
            .map_err(|e| TestCaseError::fail(format!("submit: {e}")))?;
    }
    let online = session.into_result();
    prop_assert_eq!(&online.jobs, &batch.jobs);
    prop_assert_eq!(&online.metrics, &batch.metrics);
    prop_assert_eq!(&online.timeline, &batch.timeline);
    prop_assert_eq!(online.max_queue_len, batch.max_queue_len);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_session_matches_batch_replay(
        jobs in arb_jobs(50),
        config in arb_config(),
        seed in any::<u64>(),
    ) {
        let trace = Trace::new(tiny_system(50), jobs).unwrap();
        check_incremental_matches_batch(&trace, &config, seed)?;
    }

    /// A session checkpointed (through JSON) and restored at an arbitrary
    /// point mid-stream must finish with exactly the batch outcome — the
    /// invariant crash recovery in `lumos-serve` is built on.
    #[test]
    fn checkpoint_restore_matches_batch(
        jobs in arb_jobs(50),
        config in arb_config(),
        cut_seed in any::<u64>(),
    ) {
        let trace = Trace::new(tiny_system(50), jobs).unwrap();
        let batch = simulate(&trace, &config);
        let all: Vec<Job> = trace.jobs().to_vec();
        let cut = (cut_seed as usize) % (all.len() + 1);
        let mut session = SimSession::new(&trace.system, config);
        for j in &all[..cut] {
            session.submit(j.clone()).map_err(|e| TestCaseError::fail(format!("submit: {e}")))?;
        }
        if cut > 0 {
            session.advance_to(all[cut - 1].submit);
        }
        let json = serde_json::to_string(&session.save_state()).unwrap();
        let state: SessionState = serde_json::from_str(&json).unwrap();
        let mut session = SimSession::restore(&trace.system, state)
            .map_err(|e| TestCaseError::fail(format!("restore: {e}")))?;
        for j in &all[cut..] {
            session.submit(j.clone()).map_err(|e| TestCaseError::fail(format!("submit: {e}")))?;
        }
        let online = session.into_result();
        prop_assert_eq!(&online.jobs, &batch.jobs);
        prop_assert_eq!(&online.metrics, &batch.metrics);
        prop_assert_eq!(&online.timeline, &batch.timeline);
        prop_assert_eq!(online.max_queue_len, batch.max_queue_len);
    }

    #[test]
    fn schedules_are_feasible(jobs in arb_jobs(50), config in arb_config()) {
        let trace = Trace::new(tiny_system(50), jobs).unwrap();
        check_schedule(&trace, &config)?;
    }

    #[test]
    fn simulation_is_deterministic(jobs in arb_jobs(50), config in arb_config()) {
        let trace = Trace::new(tiny_system(50), jobs).unwrap();
        let a = simulate(&trace, &config);
        let b = simulate(&trace, &config);
        prop_assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn strict_easy_never_violates(jobs in arb_jobs(50)) {
        let trace = Trace::new(tiny_system(50), jobs).unwrap();
        let r = simulate(&trace, &SimConfig::default());
        prop_assert_eq!(r.metrics.violated_jobs, 0);
    }

    #[test]
    fn utilization_is_a_fraction(jobs in arb_jobs(50), config in arb_config()) {
        let trace = Trace::new(tiny_system(50), jobs).unwrap();
        let r = simulate(&trace, &config);
        prop_assert!(r.metrics.util >= 0.0);
        prop_assert!(r.metrics.util <= 1.0 + 1e-9, "util {}", r.metrics.util);
        prop_assert!(r.metrics.mean_bsld >= 1.0);
    }

    #[test]
    fn capacity_profile_reserve_fits_coherence(
        capacity in 1u64..1_000,
        from in 0i64..1_000,
        len in 1i64..1_000,
        procs in 1u64..1_000,
    ) {
        let mut p = CapacityProfile::new(0, capacity);
        if procs <= capacity {
            prop_assert!(p.fits(from, from + len, procs));
            p.reserve(from, from + len, procs);
            // Remaining capacity inside the window is reduced exactly.
            prop_assert_eq!(p.free_at(from), capacity - procs);
            prop_assert_eq!(p.free_at(from + len), capacity);
            prop_assert!(!p.fits(from, from + len, capacity - procs + 1));
        } else {
            prop_assert!(!p.fits(from, from + len, procs));
        }
    }

    /// The tentpole invariant of the incremental-skyline refactor: after
    /// an *arbitrary* interleaving of submits, time advances, and cancels,
    /// every partition's incrementally maintained profile is
    /// point-for-point identical to one rebuilt from scratch from the
    /// running set — under every policy/backfill/relaxation combination.
    #[test]
    fn incremental_profile_matches_rebuild_over_random_op_sequences(
        jobs in arb_jobs(50),
        config in arb_config(),
        seed in any::<u64>(),
    ) {
        let trace = Trace::new(tiny_system(50), jobs).unwrap();
        let mut rng = TestRng::new(seed);
        let mut session = SimSession::new(&trace.system, config);
        session.assert_profiles_match_rebuild();
        let mut submitted: Vec<u64> = Vec::new();
        for job in trace.jobs() {
            if rng.next_u64() % 3 == 0 {
                let target = rng.next_u64() as i64 % (job.submit + 1);
                session.advance_to(target.max(0));
                session.assert_profiles_match_rebuild();
            }
            // Cancels exercise the mid-timeline reschedule path.
            if rng.next_u64() % 5 == 0 {
                if let Some(&victim) = submitted.get(rng.next_u64() as usize % submitted.len().max(1)) {
                    session.cancel(victim);
                    session.assert_profiles_match_rebuild();
                }
            }
            let id = job.id;
            session
                .submit(job.clone())
                .map_err(|e| TestCaseError::fail(format!("submit: {e}")))?;
            submitted.push(id);
            session.assert_profiles_match_rebuild();
        }
        session.advance_to_completion();
        session.assert_profiles_match_rebuild();
    }

    /// The profile's incremental operations against a naive dense-array
    /// model: any sequence of reserve/unreserve pairs leaves `free_at`,
    /// `fits`, and `earliest_fit` agreeing with brute force everywhere.
    #[test]
    fn profile_ops_match_dense_model(
        ops in prop::collection::vec((0i64..200, 1i64..60, 1u64..40), 1..20),
        queries in prop::collection::vec((0i64..300, 1u64..120, 0i64..80), 1..20),
    ) {
        let capacity = 100u64;
        let horizon = 400usize;
        let mut p = CapacityProfile::new(0, capacity);
        let mut dense = vec![capacity; horizon];
        for (from, len, procs) in ops {
            let to = from + len;
            // Only apply reservations the dense model says fit (mirrors
            // the scheduler, which checks before reserving).
            let fits = dense[from as usize..to as usize].iter().all(|&f| f >= procs);
            prop_assert_eq!(p.fits(from, to, procs), fits);
            if fits {
                p.reserve(from, to, procs);
                for f in &mut dense[from as usize..to as usize] { *f -= procs; }
                // Sometimes hand back a tail, like an early completion.
                if len > 2 {
                    let cut = from + len / 2;
                    p.unreserve(cut, to, procs);
                    for f in &mut dense[cut as usize..to as usize] { *f += procs; }
                }
            }
        }
        for (t, procs, dur) in queries {
            prop_assert_eq!(p.free_at(t), dense[t as usize], "free_at({})", t);
            // Brute-force earliest fit over the dense model.
            let expect = (t..horizon as i64 - dur).find(|&s| {
                dense[s as usize..(s + dur) as usize].iter().all(|&f| f >= procs)
            });
            let got = p.earliest_fit(t, procs, dur);
            // The profile's last segment extends to infinity; the dense
            // model stops at the horizon. Compare within the horizon.
            if let Some(e) = expect {
                prop_assert_eq!(got, Some(e));
            }
        }
    }

    #[test]
    fn earliest_fit_result_actually_fits(
        ends in prop::collection::vec((1i64..500, 1u64..30), 0..10),
        procs in 1u64..100,
        duration in 1i64..100,
    ) {
        let capacity = 100u64;
        let in_use: u64 = ends.iter().map(|&(_, p)| p).sum();
        prop_assume!(in_use <= capacity);
        let p = CapacityProfile::from_running(0, capacity, &ends);
        if let Some(t) = p.earliest_fit(0, procs, duration) {
            prop_assert!(p.fits(t, t + duration, procs));
            // Minimality at breakpoint granularity: no earlier breakpoint fits.
            for &(bp, _) in p.points() {
                if bp < t {
                    prop_assert!(!p.fits(bp, bp + duration, procs));
                }
            }
        } else {
            prop_assert!(procs > capacity);
        }
    }

    /// Per-tenant accounting conserves the machine under every policy
    /// (fair-share included): at every observation instant the summed
    /// tenant usage equals the cluster's, the lifecycle counters add up,
    /// and a JSON checkpoint/restore preserves it all exactly.
    #[test]
    fn tenant_accounting_conserves_resources(
        jobs in arb_jobs(50),
        config in arb_tenant_config(),
        tenant_seed in any::<u64>(),
    ) {
        let table = TenantTable::parse("alpha 2.0 120\nbeta 0.5 -\n").unwrap();
        let names = ["alpha", "beta", TenantTable::DEFAULT];
        let mut session = SimSession::new_with_tenants(&tiny_system(50), config, table);

        let mut sorted = jobs;
        sorted.sort_by_key(|j| (j.submit, j.id));
        let mut accepted = 0u64;
        for (i, job) in sorted.into_iter().enumerate() {
            let name = names[((tenant_seed >> (i % 32)) as usize + i) % names.len()];
            let tenant = session.resolve_tenant(Some(name))
                .map_err(|e| TestCaseError::fail(format!("resolve: {e}")))?;
            // alpha's quota may refuse; a refusal must leave no trace,
            // which the conservation checks below would expose.
            if session.submit_with_tenant(job, tenant, None).is_ok() {
                accepted += 1;
            }
        }

        let check = |session: &SimSession| -> Result<(), TestCaseError> {
            let snap = session.snapshot();
            let usage = session.tenant_usage().expect("tenancy enabled");
            let used: u64 = usage.iter().map(|u| u.used_units).sum();
            prop_assert_eq!(used, snap.used_units, "used units must conserve");
            let sum = |f: fn(&lumos_sim::TenantCounts) -> u64| -> u64 {
                usage.iter().map(|u| f(&u.counts)).sum()
            };
            prop_assert_eq!(sum(|c| c.submitted), accepted);
            prop_assert_eq!(sum(|c| c.pending), snap.pending as u64);
            prop_assert_eq!(sum(|c| c.waiting), snap.waiting as u64);
            prop_assert_eq!(sum(|c| c.running), snap.running as u64);
            prop_assert_eq!(sum(|c| c.finished), snap.finished as u64);
            for u in &usage {
                prop_assert!(u.share >= 0.0 && u.share <= 1.0, "share {}", u.share);
                prop_assert!(u.used_units <= u.outstanding_units);
                if let Some(q) = u.quota {
                    prop_assert!(u.outstanding_units <= q, "quota violated");
                }
            }
            Ok(())
        };

        // Observe at many instants as the schedule unfolds.
        let mut t = 0i64;
        while t < 12_000 {
            session.advance_to(t);
            check(&session)?;
            t += 977;
        }

        // A JSON round-trip mid-stream preserves the accounting exactly.
        let json = serde_json::to_string(&session.save_state()).unwrap();
        let state: SessionState = serde_json::from_str(&json).unwrap();
        let restored = SimSession::restore(&tiny_system(50), state)
            .map_err(|e| TestCaseError::fail(format!("restore: {e}")))?;
        prop_assert_eq!(restored.tenant_usage(), session.tenant_usage());
        check(&restored)?;

        // Drain: every accepted job ends finished, nothing leaks.
        session.advance_to(1_000_000);
        check(&session)?;
        let usage = session.tenant_usage().unwrap();
        let outstanding: u64 = usage.iter().map(|u| u.outstanding_units).sum();
        prop_assert_eq!(outstanding, 0, "drained sessions hold no units");
    }
}

/// Every policy — the fair-share pair included — over the backfill family.
fn arb_tenant_config() -> impl Strategy<Value = SimConfig> {
    (
        prop_oneof![
            Just(Policy::Fcfs),
            Just(Policy::Sjf),
            Just(Policy::Ljf),
            Just(Policy::Saf),
            Just(Policy::Sqf),
            Just(Policy::MaxMinFair),
            Just(Policy::WeightedFair)
        ],
        prop_oneof![
            Just(Backfill::None),
            Just(Backfill::Easy),
            Just(Backfill::Conservative)
        ],
    )
        .prop_map(|(policy, backfill)| SimConfig {
            policy,
            backfill,
            ..SimConfig::default()
        })
}
