//! Multi-tenant scheduling state: the tenant table, per-tenant quotas,
//! and live usage accounting layered on [`crate::SimSession`].
//!
//! A [`TenantTable`] is a small static registry — name, fair-share
//! weight, optional resource-unit quota — loaded once at server start
//! (`--tenants FILE`). Every submitted job is owned by exactly one
//! tenant; jobs submitted without a tenant belong to the built-in
//! `default` tenant, so per-tenant accounting always conserves the
//! machine: summed tenant usage equals cluster usage at every event.
//!
//! Quotas bound a tenant's *outstanding* resource units (pending +
//! waiting + running), so an over-quota submission is rejected
//! immediately ([`lumos_core::CoreError::QuotaExceeded`]) instead of
//! queueing forever. Fair-share policies
//! ([`crate::Policy::MaxMinFair`], [`crate::Policy::WeightedFair`])
//! order waiting jobs by the owning tenant's current usage share; the
//! session recomputes that ordering at every scheduling pass because
//! shares move as jobs start and finish.

use lumos_core::{CoreError, Duration};
use serde::{Deserialize, Serialize};

use crate::session::JobState;

/// Index of a tenant in its [`TenantTable`].
pub type TenantId = u16;

/// One tenant's static configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Unique tenant name (no whitespace; matched exactly on submit).
    pub name: String,
    /// Fair-share weight; a tenant with weight 2 is entitled to twice
    /// the machine of a tenant with weight 1 under `WeightedFair`.
    pub weight: f64,
    /// Outstanding resource-unit quota; `None` means unlimited.
    pub quota: Option<u64>,
}

/// A static registry of tenants, in file order, always containing the
/// built-in `default` tenant (appended when the file does not define
/// one) so untenanted submissions stay accounted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTable {
    tenants: Vec<TenantSpec>,
}

impl TenantTable {
    /// Name of the built-in tenant that owns untenanted submissions.
    pub const DEFAULT: &'static str = "default";

    /// Builds a table from explicit specs, appending the built-in
    /// `default` tenant when absent.
    ///
    /// # Errors
    /// Rejects empty / whitespace-containing / duplicate names,
    /// non-finite or non-positive weights, zero quotas, and tables with
    /// more than [`TenantId::MAX`] entries.
    pub fn new(specs: Vec<TenantSpec>) -> Result<Self, String> {
        let mut tenants = specs;
        if !tenants.iter().any(|t| t.name == Self::DEFAULT) {
            tenants.push(TenantSpec {
                name: Self::DEFAULT.to_string(),
                weight: 1.0,
                quota: None,
            });
        }
        let table = Self { tenants };
        table.validate()?;
        Ok(table)
    }

    /// Parses the `--tenants FILE` format: one tenant per line as
    /// `name weight [quota]` (whitespace-separated), with blank lines
    /// and `#` comments ignored. Errors carry a `line N:` prefix.
    ///
    /// # Errors
    /// Propagates per-line syntax errors and the validity rules of
    /// [`TenantTable::new`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut specs = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let name = fields.next().expect("non-empty line has a first field");
            let weight = fields
                .next()
                .ok_or(format!("line {}: missing weight for `{name}`", i + 1))?;
            let weight: f64 = weight
                .parse()
                .map_err(|e| format!("line {}: weight: {e}", i + 1))?;
            // Range-check here, not just in `validate`, so the error
            // names the offending line: `parse` accepts `NaN`, `inf`,
            // and negative zero without complaint.
            if !weight.is_finite() || weight <= 0.0 {
                return Err(format!(
                    "line {}: weight for `{name}` must be finite and positive, got {weight}",
                    i + 1
                ));
            }
            let quota = match fields.next() {
                None | Some("-") => None,
                Some(q) => Some(
                    q.parse()
                        .map_err(|e| format!("line {}: quota: {e}", i + 1))?,
                ),
            };
            if quota == Some(0) {
                return Err(format!(
                    "line {}: quota for `{name}` must be at least 1 (use `-` for unlimited)",
                    i + 1
                ));
            }
            if let Some(extra) = fields.next() {
                return Err(format!(
                    "line {}: unexpected trailing field `{extra}`",
                    i + 1
                ));
            }
            specs.push(TenantSpec {
                name: name.to_string(),
                weight,
                quota,
            });
        }
        Self::new(specs)
    }

    /// Checks the structural validity rules (see [`TenantTable::new`]).
    /// Used both at construction and when adopting a deserialized table.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.len() > usize::from(TenantId::MAX) {
            return Err(format!("too many tenants: {}", self.tenants.len()));
        }
        if !self.tenants.iter().any(|t| t.name == Self::DEFAULT) {
            return Err(format!("missing built-in `{}` tenant", Self::DEFAULT));
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() || t.name.chars().any(char::is_whitespace) {
                return Err(format!(
                    "tenant {i}: name must be non-empty without whitespace"
                ));
            }
            if !t.weight.is_finite() || t.weight <= 0.0 {
                return Err(format!(
                    "tenant `{}`: weight must be finite and positive",
                    t.name
                ));
            }
            if t.quota == Some(0) {
                return Err(format!("tenant `{}`: quota must be at least 1", t.name));
            }
            if self.tenants[..i].iter().any(|u| u.name == t.name) {
                return Err(format!("duplicate tenant `{}`", t.name));
            }
        }
        Ok(())
    }

    /// Resolves a tenant name to its id.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .map(|i| i as TenantId)
    }

    /// Id of the built-in `default` tenant.
    #[must_use]
    pub fn default_tenant(&self) -> TenantId {
        self.lookup(Self::DEFAULT)
            .expect("validated tables contain the default tenant")
    }

    /// Number of tenants (including the built-in default).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the table has no tenants (never true once validated).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The spec for tenant `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    #[must_use]
    pub fn get(&self, id: TenantId) -> &TenantSpec {
        &self.tenants[usize::from(id)]
    }

    /// Iterates the specs in table order.
    pub fn iter(&self) -> std::slice::Iter<'_, TenantSpec> {
        self.tenants.iter()
    }
}

/// Per-tenant lifecycle counters maintained by the session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantCounts {
    /// Jobs ever accepted for this tenant.
    pub submitted: u64,
    /// Jobs whose submit time is still in the future.
    pub pending: u64,
    /// Jobs sitting in waiting queues.
    pub waiting: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs that completed.
    pub finished: u64,
    /// Jobs cancelled before starting.
    pub cancelled: u64,
}

/// Point-in-time usage report for one tenant (see
/// [`crate::SimSession::tenant_usage`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Tenant name.
    pub name: String,
    /// Configured fair-share weight.
    pub weight: f64,
    /// Configured outstanding-units quota, if any.
    pub quota: Option<u64>,
    /// Lifecycle counters.
    pub counts: TenantCounts,
    /// Resource units outstanding (pending + waiting + running) —
    /// what quotas bound.
    pub outstanding_units: u64,
    /// Resource units currently allocated to running jobs.
    pub used_units: u64,
    /// Cumulative delivered service in unit-seconds, committed when a
    /// job starts (`procs × runtime`).
    pub served_unit_seconds: u64,
    /// Instantaneous usage share (`used_units / cluster capacity`).
    pub share: f64,
}

/// Live per-tenant accounting inside a session. Everything here is
/// derivable from the job table plus per-job tenant ownership, and is
/// rebuilt from those facts on [`crate::SimSession::restore`].
#[derive(Debug)]
pub(crate) struct TenantState {
    pub table: TenantTable,
    /// Owning tenant of each job, parallel to the session's job table.
    pub tenant_of: Vec<TenantId>,
    /// Outstanding resource units per tenant (quota denominator).
    pub outstanding: Vec<u64>,
    /// Running resource units per tenant (fair-share numerator).
    pub running_units: Vec<u64>,
    /// Cumulative delivered unit-seconds per tenant.
    pub served: Vec<u64>,
    /// Lifecycle counters per tenant.
    pub counts: Vec<TenantCounts>,
}

impl TenantState {
    pub fn new(table: TenantTable) -> Self {
        let n = table.len();
        Self {
            table,
            tenant_of: Vec::new(),
            outstanding: vec![0; n],
            running_units: vec![0; n],
            served: vec![0; n],
            counts: vec![TenantCounts::default(); n],
        }
    }

    /// Rejects a submission that would push `tenant` past its quota.
    pub fn quota_check(&self, tenant: TenantId, units: u64) -> Result<(), CoreError> {
        let t = usize::from(tenant);
        let in_use = self.outstanding[t];
        if let Some(quota) = self.table.get(tenant).quota {
            if in_use + units > quota {
                return Err(CoreError::QuotaExceeded {
                    tenant: self.table.get(tenant).name.clone(),
                    requested: units,
                    in_use,
                    quota,
                });
            }
        }
        Ok(())
    }

    pub fn on_submit(&mut self, tenant: TenantId, units: u64) {
        let t = usize::from(tenant);
        self.tenant_of.push(tenant);
        self.outstanding[t] += units;
        self.counts[t].submitted += 1;
        self.counts[t].pending += 1;
    }

    pub fn on_arrive(&mut self, idx: usize) {
        let t = usize::from(self.tenant_of[idx]);
        self.counts[t].pending -= 1;
        self.counts[t].waiting += 1;
    }

    pub fn on_start(&mut self, idx: usize, units: u64, runtime: Duration) {
        let t = usize::from(self.tenant_of[idx]);
        self.counts[t].waiting -= 1;
        self.counts[t].running += 1;
        self.running_units[t] += units;
        self.served[t] += units * runtime as u64;
    }

    pub fn on_finish(&mut self, idx: usize, units: u64) {
        let t = usize::from(self.tenant_of[idx]);
        self.counts[t].running -= 1;
        self.counts[t].finished += 1;
        self.running_units[t] -= units;
        self.outstanding[t] -= units;
    }

    pub fn on_cancel(&mut self, idx: usize, units: u64, was: JobState) {
        let t = usize::from(self.tenant_of[idx]);
        match was {
            JobState::Pending => self.counts[t].pending -= 1,
            JobState::Waiting => self.counts[t].waiting -= 1,
            _ => unreachable!("only pending/waiting jobs cancel"),
        }
        self.counts[t].cancelled += 1;
        self.outstanding[t] -= units;
    }

    /// Per-tenant usage shares for fair-share ordering: running units
    /// over cluster capacity, divided by the tenant's weight when
    /// `weighted`.
    pub fn shares(&self, capacity: u64, weighted: bool) -> Vec<f64> {
        let cap = capacity.max(1) as f64;
        self.running_units
            .iter()
            .zip(self.table.iter())
            .map(|(&u, spec)| {
                let share = u as f64 / cap;
                if weighted {
                    share / spec.weight
                } else {
                    share
                }
            })
            .collect()
    }

    /// Rebuilds accounting from saved facts (used by session restore).
    pub fn rebuild(
        table: TenantTable,
        tenant_of: Vec<TenantId>,
        states: &[JobState],
        procs_eff: &[u64],
        runtimes: &[Duration],
    ) -> Result<Self, String> {
        table.validate()?;
        if tenant_of.len() != states.len() {
            return Err(format!(
                "tenant_of covers {} jobs, the table has {}",
                tenant_of.len(),
                states.len()
            ));
        }
        let mut s = Self::new(table);
        for (idx, &tenant) in tenant_of.iter().enumerate() {
            let t = usize::from(tenant);
            if t >= s.table.len() {
                return Err(format!("job {idx} names tenant #{t} of {}", s.table.len()));
            }
            let units = procs_eff[idx];
            s.counts[t].submitted += 1;
            match states[idx] {
                JobState::Pending => {
                    s.counts[t].pending += 1;
                    s.outstanding[t] += units;
                }
                JobState::Waiting => {
                    s.counts[t].waiting += 1;
                    s.outstanding[t] += units;
                }
                JobState::Running => {
                    s.counts[t].running += 1;
                    s.outstanding[t] += units;
                    s.running_units[t] += units;
                    s.served[t] += units * runtimes[idx] as u64;
                }
                JobState::Finished => {
                    s.counts[t].finished += 1;
                    s.served[t] += units * runtimes[idx] as u64;
                }
                JobState::Cancelled => s.counts[t].cancelled += 1,
            }
        }
        s.tenant_of = tenant_of;
        Ok(s)
    }

    /// Point-in-time usage report, in table order.
    pub fn usage(&self, capacity: u64) -> Vec<TenantUsage> {
        let cap = capacity.max(1) as f64;
        self.table
            .iter()
            .enumerate()
            .map(|(t, spec)| TenantUsage {
                name: spec.name.clone(),
                weight: spec.weight,
                quota: spec.quota,
                counts: self.counts[t],
                outstanding_units: self.outstanding[t],
                used_units: self.running_units[t],
                served_unit_seconds: self.served[t],
                share: self.running_units[t] as f64 / cap,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_comments_quotas_and_appends_default() {
        let table = TenantTable::parse(
            "# staff tenants\nalice 2.0 1000\nbob 1.0 -\n\ncarol 0.5 # trailing comment\n",
        )
        .unwrap();
        assert_eq!(table.len(), 4, "default appended");
        assert_eq!(table.lookup("alice"), Some(0));
        assert_eq!(table.get(0).quota, Some(1000));
        assert_eq!(table.get(1).quota, None);
        assert_eq!(table.get(2).weight, 0.5);
        assert_eq!(table.default_tenant(), 3);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = TenantTable::parse("alice 2.0\nbob\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = TenantTable::parse("alice 2.0 10 extra\n").unwrap_err();
        assert!(err.contains("line 1:") && err.contains("extra"), "{err}");
        let err = TenantTable::parse("alice nope\n").unwrap_err();
        assert!(err.starts_with("line 1: weight:"), "{err}");
    }

    #[test]
    fn validation_rejects_bad_tables() {
        assert!(TenantTable::parse("alice 0\n").is_err(), "zero weight");
        assert!(TenantTable::parse("alice -1\n").is_err(), "negative weight");
        assert!(TenantTable::parse("alice 1 0\n").is_err(), "zero quota");
        assert!(
            TenantTable::parse("alice 1\nalice 2\n").is_err(),
            "duplicate name"
        );
    }

    #[test]
    fn parse_rejects_bad_weights_and_quotas_with_line_numbers() {
        // `f64::parse` happily accepts all of these; the table must not.
        for bad in ["NaN", "inf", "-inf", "-1", "0", "-0.0"] {
            let err = TenantTable::parse(&format!("ok 1.0\nbob {bad}\n")).unwrap_err();
            assert!(
                err.starts_with("line 2:") && err.contains("bob"),
                "weight {bad}: {err}"
            );
        }
        let err = TenantTable::parse("ok 1.0\nok2 1.0 -\nbob 1.0 0\n").unwrap_err();
        assert!(
            err.starts_with("line 3:") && err.contains("bob"),
            "zero quota: {err}"
        );
    }

    #[test]
    fn explicit_default_is_not_duplicated() {
        let table = TenantTable::parse("default 4.0 50\nalice 1.0\n").unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.default_tenant(), 0);
        assert_eq!(table.get(0).weight, 4.0);
        assert_eq!(table.get(0).quota, Some(50));
    }

    #[test]
    fn table_survives_json() {
        let table = TenantTable::parse("alice 2.0 1000\nbob 1.0\n").unwrap();
        let json = serde_json::to_string(&table).unwrap();
        let back: TenantTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn shares_divide_by_weight_only_when_weighted() {
        let table = TenantTable::parse("heavy 4.0\nlight 1.0\n").unwrap();
        let mut st = TenantState::new(table);
        st.on_submit(0, 40);
        st.on_submit(1, 10);
        st.on_arrive(0);
        st.on_arrive(1);
        st.on_start(0, 40, 100);
        st.on_start(1, 10, 100);
        let plain = st.shares(100, false);
        assert_eq!(plain[0], 0.40);
        assert_eq!(plain[1], 0.10);
        let weighted = st.shares(100, true);
        assert_eq!(weighted[0], 0.10);
        assert_eq!(weighted[1], 0.10);
    }

    #[test]
    fn quota_bounds_outstanding_units() {
        let table = TenantTable::parse("capped 1.0 50\n").unwrap();
        let mut st = TenantState::new(table);
        st.quota_check(0, 50).unwrap();
        st.on_submit(0, 30);
        st.quota_check(0, 20).unwrap();
        let err = st.quota_check(0, 21).unwrap_err();
        assert!(matches!(
            err,
            CoreError::QuotaExceeded {
                requested: 21,
                in_use: 30,
                quota: 50,
                ..
            }
        ));
        // Finishing releases quota; cancelling does too.
        st.on_arrive(0);
        st.on_start(0, 30, 10);
        st.on_finish(0, 30);
        st.quota_check(0, 50).unwrap();
    }
}
