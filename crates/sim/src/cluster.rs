//! Cluster state: resource partitions and running jobs.
//!
//! A machine is a set of partitions. Unpartitioned systems have exactly
//! one; Philly-style systems get one partition per isolated virtual
//! cluster (§III.B: "a job will be queued in each virtual cluster until its
//! requested GPUs are available in the same virtual cluster").

use lumos_core::{SystemSpec, Timestamp};

use crate::profile::CapacityProfile;

/// A job currently executing on a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// Index of the job in the simulator's job table.
    pub idx: usize,
    /// Resource units held.
    pub procs: u64,
    /// Walltime-based end estimate (`start + planning_walltime`); what the
    /// scheduler plans with.
    pub end_estimate: Timestamp,
    /// Actual finish time (`start + runtime`); what really happens.
    pub finish: Timestamp,
}

/// One isolated scheduling domain (the whole machine, or one virtual
/// cluster).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Total resource units.
    pub capacity: u64,
    /// Currently free units.
    pub free: u64,
    /// Jobs currently executing, sorted ascending by
    /// `(end_estimate, table index)`. Kept end-sorted incrementally so the
    /// scheduler can find jobs running past their estimate with a prefix
    /// scan instead of re-sorting thousands of running jobs per event.
    running: Vec<RunningJob>,
    /// Indices of waiting jobs, kept sorted by scheduling priority.
    pub waiting: Vec<usize>,
    /// Incrementally maintained free-capacity skyline: every start carves
    /// its planned interval out ([`CapacityProfile::reserve`]), every
    /// completion hands the unused tail back
    /// ([`CapacityProfile::unreserve`]). Replaces the per-pass
    /// rebuild-from-the-running-set the backfill disciplines used to pay.
    skyline: CapacityProfile,
}

impl Partition {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            free: capacity,
            running: Vec::new(),
            waiting: Vec::new(),
            skyline: CapacityProfile::new(Timestamp::MIN, capacity),
        }
    }

    /// Jobs currently executing, ascending by `(end_estimate, idx)`.
    #[must_use]
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// The incrementally maintained free-capacity skyline. Counts each
    /// running job as busy over `[start, end_estimate)` only; jobs running
    /// *past* their estimate have already been handed back, so scheduling
    /// passes overlay their units on `[now, now+1)` before querying (see
    /// `SimSession::schedule`).
    #[must_use]
    pub fn skyline(&self) -> &CapacityProfile {
        &self.skyline
    }

    /// Mutable skyline access for the scheduling pass (prune + the
    /// transient overrun overlay).
    pub(crate) fn skyline_mut(&mut self) -> &mut CapacityProfile {
        &mut self.skyline
    }

    /// Starts a job at `now`: allocates units, registers the running record
    /// in end-estimate order, and carves `[now, end_estimate)` out of the
    /// skyline.
    ///
    /// # Panics
    /// Panics (debug) if the job does not fit.
    pub fn start(&mut self, job: RunningJob, now: Timestamp) {
        debug_assert!(job.procs <= self.free, "starting a job that does not fit");
        self.free -= job.procs;
        let pos = self
            .running
            .partition_point(|r| (r.end_estimate, r.idx) < (job.end_estimate, job.idx));
        self.running.insert(pos, job);
        self.skyline.reserve(now, job.end_estimate, job.procs);
    }

    /// Completes the running job with table index `idx` at `now`, freeing
    /// its units and returning the unused tail of its skyline reservation
    /// (a no-op for jobs that overran their estimate — their reservation
    /// already expired).
    ///
    /// # Panics
    /// Panics if no such job is running.
    pub fn finish(&mut self, idx: usize, now: Timestamp) -> RunningJob {
        let pos = self
            .running
            .iter()
            .position(|r| r.idx == idx)
            .expect("finishing a job that is not running");
        let job = self.running.remove(pos);
        self.free += job.procs;
        self.skyline.unreserve(now, job.end_estimate, job.procs);
        job
    }
}

/// The whole machine.
#[derive(Debug, Clone)]
pub struct Cluster {
    partitions: Vec<Partition>,
}

impl Cluster {
    /// Builds the cluster. With `respect_virtual_clusters` and a spec
    /// declaring more than one VC, capacity is split across partitions with
    /// Zipf(½) weights (larger first) — production virtual clusters are
    /// deliberately uneven, and the heaviest groups own the biggest slices.
    /// Every partition receives at least one unit.
    #[must_use]
    pub fn new(spec: &SystemSpec, respect_virtual_clusters: bool) -> Self {
        let n = if respect_virtual_clusters {
            usize::from(spec.virtual_clusters.max(1))
        } else {
            1
        };
        if n == 1 {
            return Self {
                partitions: vec![Partition::new(spec.total_units)],
            };
        }
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).sqrt()).collect();
        let total_w: f64 = weights.iter().sum();
        let mut caps: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total_w) * spec.total_units as f64).floor().max(1.0) as u64)
            .collect();
        let assigned: u64 = caps.iter().sum();
        // Give rounding leftovers to the largest partition.
        caps[0] += spec.total_units.saturating_sub(assigned);
        Self {
            partitions: caps.into_iter().map(Partition::new).collect(),
        }
    }

    /// Number of partitions.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total capacity across partitions.
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.partitions.iter().map(|p| p.capacity).sum()
    }

    /// Routes a job to a partition: its virtual cluster when bound and the
    /// job fits there; otherwise the largest partition (partition 0), the
    /// escalation path production clusters use for outsized requests.
    #[must_use]
    pub fn route(&self, virtual_cluster: Option<u16>, procs: u64) -> usize {
        match virtual_cluster {
            Some(vc) if self.partitions.len() > 1 => {
                let idx = usize::from(vc) % self.partitions.len();
                if procs <= self.partitions[idx].capacity {
                    idx
                } else {
                    0
                }
            }
            _ => 0,
        }
    }

    /// Immutable partition access.
    #[must_use]
    pub fn partition(&self, idx: usize) -> &Partition {
        &self.partitions[idx]
    }

    /// Mutable partition access.
    pub fn partition_mut(&mut self, idx: usize) -> &mut Partition {
        &mut self.partitions[idx]
    }

    /// Units in use across all partitions.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.partitions.iter().map(|p| p.capacity - p.free).sum()
    }

    /// Total waiting jobs across all partitions.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.partitions.iter().map(|p| p.waiting.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::SystemSpec;

    #[test]
    fn single_partition_for_unpartitioned_systems() {
        let c = Cluster::new(&SystemSpec::theta(), true);
        assert_eq!(c.partition_count(), 1);
        assert_eq!(c.total_capacity(), 281_088);
    }

    #[test]
    fn philly_splits_into_14_uneven_partitions() {
        let c = Cluster::new(&SystemSpec::philly(), true);
        assert_eq!(c.partition_count(), 14);
        assert_eq!(c.total_capacity(), 2_490);
        assert!(c.partition(0).capacity > c.partition(13).capacity);
        // The biggest partition must hold the biggest Philly request (256).
        assert!(c.partition(0).capacity >= 256);
    }

    #[test]
    fn respect_flag_off_gives_one_pool() {
        let c = Cluster::new(&SystemSpec::philly(), false);
        assert_eq!(c.partition_count(), 1);
        assert_eq!(c.total_capacity(), 2_490);
    }

    #[test]
    fn routing_escalates_oversized_jobs() {
        let c = Cluster::new(&SystemSpec::philly(), true);
        let small = c.route(Some(13), 1);
        assert_eq!(small, 13);
        let big = c.route(Some(13), c.partition(13).capacity + 1);
        assert_eq!(big, 0);
        assert_eq!(c.route(None, 1), 0);
    }

    #[test]
    fn start_and_finish_manage_units() {
        let mut c = Cluster::new(&SystemSpec::theta(), true);
        let p = c.partition_mut(0);
        p.start(
            RunningJob {
                idx: 7,
                procs: 100,
                end_estimate: 50,
                finish: 40,
            },
            0,
        );
        assert_eq!(p.free, p.capacity - 100);
        assert_eq!(p.skyline().free_at(0), p.capacity - 100);
        assert_eq!(p.skyline().free_at(50), p.capacity);
        let done = p.finish(7, 40);
        assert_eq!(done.idx, 7);
        assert_eq!(p.free, p.capacity);
        // The unused tail [40, 50) came back.
        assert_eq!(p.skyline().free_at(40), p.capacity);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn finishing_unknown_job_panics() {
        let mut c = Cluster::new(&SystemSpec::theta(), true);
        let _ = c.partition_mut(0).finish(3, 0);
    }
}
