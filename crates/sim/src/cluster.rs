//! Cluster state: resource partitions and running jobs.
//!
//! A machine is a set of partitions. Unpartitioned systems have exactly
//! one; Philly-style systems get one partition per isolated virtual
//! cluster (§III.B: "a job will be queued in each virtual cluster until its
//! requested GPUs are available in the same virtual cluster").

use lumos_core::{SystemSpec, Timestamp};

/// A job currently executing on a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// Index of the job in the simulator's job table.
    pub idx: usize,
    /// Resource units held.
    pub procs: u64,
    /// Walltime-based end estimate (`start + planning_walltime`); what the
    /// scheduler plans with.
    pub end_estimate: Timestamp,
    /// Actual finish time (`start + runtime`); what really happens.
    pub finish: Timestamp,
}

/// One isolated scheduling domain (the whole machine, or one virtual
/// cluster).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Total resource units.
    pub capacity: u64,
    /// Currently free units.
    pub free: u64,
    /// Jobs currently executing, sorted ascending by
    /// `(end_estimate, table index)`. The shadow-time computation walks
    /// this in end order on *every* scheduling pass, so the ordering is
    /// maintained incrementally instead of re-sorting thousands of running
    /// jobs per event.
    running: Vec<RunningJob>,
    /// Indices of waiting jobs, kept sorted by scheduling priority.
    pub waiting: Vec<usize>,
}

impl Partition {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            free: capacity,
            running: Vec::new(),
            waiting: Vec::new(),
        }
    }

    /// Jobs currently executing, ascending by `(end_estimate, idx)`.
    #[must_use]
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Starts a job: allocates units and registers the running record in
    /// end-estimate order.
    ///
    /// # Panics
    /// Panics (debug) if the job does not fit.
    pub fn start(&mut self, job: RunningJob) {
        debug_assert!(job.procs <= self.free, "starting a job that does not fit");
        self.free -= job.procs;
        let pos = self
            .running
            .partition_point(|r| (r.end_estimate, r.idx) < (job.end_estimate, job.idx));
        self.running.insert(pos, job);
    }

    /// Completes the running job with table index `idx`, freeing its units.
    ///
    /// # Panics
    /// Panics if no such job is running.
    pub fn finish(&mut self, idx: usize) -> RunningJob {
        let pos = self
            .running
            .iter()
            .position(|r| r.idx == idx)
            .expect("finishing a job that is not running");
        let job = self.running.remove(pos);
        self.free += job.procs;
        job
    }
}

/// The whole machine.
#[derive(Debug, Clone)]
pub struct Cluster {
    partitions: Vec<Partition>,
}

impl Cluster {
    /// Builds the cluster. With `respect_virtual_clusters` and a spec
    /// declaring more than one VC, capacity is split across partitions with
    /// Zipf(½) weights (larger first) — production virtual clusters are
    /// deliberately uneven, and the heaviest groups own the biggest slices.
    /// Every partition receives at least one unit.
    #[must_use]
    pub fn new(spec: &SystemSpec, respect_virtual_clusters: bool) -> Self {
        let n = if respect_virtual_clusters {
            usize::from(spec.virtual_clusters.max(1))
        } else {
            1
        };
        if n == 1 {
            return Self {
                partitions: vec![Partition::new(spec.total_units)],
            };
        }
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).sqrt()).collect();
        let total_w: f64 = weights.iter().sum();
        let mut caps: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total_w) * spec.total_units as f64).floor().max(1.0) as u64)
            .collect();
        let assigned: u64 = caps.iter().sum();
        // Give rounding leftovers to the largest partition.
        caps[0] += spec.total_units.saturating_sub(assigned);
        Self {
            partitions: caps.into_iter().map(Partition::new).collect(),
        }
    }

    /// Number of partitions.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total capacity across partitions.
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.partitions.iter().map(|p| p.capacity).sum()
    }

    /// Routes a job to a partition: its virtual cluster when bound and the
    /// job fits there; otherwise the largest partition (partition 0), the
    /// escalation path production clusters use for outsized requests.
    #[must_use]
    pub fn route(&self, virtual_cluster: Option<u16>, procs: u64) -> usize {
        match virtual_cluster {
            Some(vc) if self.partitions.len() > 1 => {
                let idx = usize::from(vc) % self.partitions.len();
                if procs <= self.partitions[idx].capacity {
                    idx
                } else {
                    0
                }
            }
            _ => 0,
        }
    }

    /// Immutable partition access.
    #[must_use]
    pub fn partition(&self, idx: usize) -> &Partition {
        &self.partitions[idx]
    }

    /// Mutable partition access.
    pub fn partition_mut(&mut self, idx: usize) -> &mut Partition {
        &mut self.partitions[idx]
    }

    /// Units in use across all partitions.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.partitions.iter().map(|p| p.capacity - p.free).sum()
    }

    /// Total waiting jobs across all partitions.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.partitions.iter().map(|p| p.waiting.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::SystemSpec;

    #[test]
    fn single_partition_for_unpartitioned_systems() {
        let c = Cluster::new(&SystemSpec::theta(), true);
        assert_eq!(c.partition_count(), 1);
        assert_eq!(c.total_capacity(), 281_088);
    }

    #[test]
    fn philly_splits_into_14_uneven_partitions() {
        let c = Cluster::new(&SystemSpec::philly(), true);
        assert_eq!(c.partition_count(), 14);
        assert_eq!(c.total_capacity(), 2_490);
        assert!(c.partition(0).capacity > c.partition(13).capacity);
        // The biggest partition must hold the biggest Philly request (256).
        assert!(c.partition(0).capacity >= 256);
    }

    #[test]
    fn respect_flag_off_gives_one_pool() {
        let c = Cluster::new(&SystemSpec::philly(), false);
        assert_eq!(c.partition_count(), 1);
        assert_eq!(c.total_capacity(), 2_490);
    }

    #[test]
    fn routing_escalates_oversized_jobs() {
        let c = Cluster::new(&SystemSpec::philly(), true);
        let small = c.route(Some(13), 1);
        assert_eq!(small, 13);
        let big = c.route(Some(13), c.partition(13).capacity + 1);
        assert_eq!(big, 0);
        assert_eq!(c.route(None, 1), 0);
    }

    #[test]
    fn start_and_finish_manage_units() {
        let mut c = Cluster::new(&SystemSpec::theta(), true);
        let p = c.partition_mut(0);
        p.start(RunningJob {
            idx: 7,
            procs: 100,
            end_estimate: 50,
            finish: 40,
        });
        assert_eq!(p.free, p.capacity - 100);
        let done = p.finish(7);
        assert_eq!(done.idx, 7);
        assert_eq!(p.free, p.capacity);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn finishing_unknown_job_panics() {
        let mut c = Cluster::new(&SystemSpec::theta(), true);
        let _ = c.partition_mut(0).finish(3);
    }
}
