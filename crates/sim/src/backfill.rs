//! Backfilling disciplines and reservation-relaxation rules.
//!
//! * [`Backfill::None`] — the head of the queue blocks everyone behind it.
//! * [`Backfill::Easy`] — EASY (aggressive) backfilling: the head gets a
//!   reservation at its *shadow time*; later jobs may jump ahead if they
//!   finish by the shadow time or fit in the *extra* units the reservation
//!   leaves over.
//! * [`Backfill::Conservative`] — every queued job gets a reservation;
//!   jobs start whenever their planned slot arrives.
//!
//! [`Relax`] loosens the EASY reservation (paper §VI.B): backfill
//! candidates may delay the head's start by up to `factor × expected_wait`
//! *in total*, where the expected wait is anchored at the head's original
//! promise (the shadow time first computed when it became head). Anchoring
//! matters: re-deriving the allowance from the recomputed shadow after each
//! relaxed backfill would compound — every round would relax an
//! already-delayed reservation and cumulative head delay would be
//! unbounded. `Fixed` uses a constant factor (Ward et al.'s relaxed
//! backfilling); `Adaptive` scales the factor by current queue pressure
//! (`base × queue_len / max_queue_len`, the paper's Eq. 1).

use serde::{Deserialize, Serialize};

/// Backfilling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Backfill {
    /// No backfilling.
    None,
    /// EASY (aggressive) backfilling with a single head reservation.
    #[default]
    Easy,
    /// Conservative backfilling: reservations for every queued job.
    Conservative,
}

impl Backfill {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Easy => "EASY",
            Self::Conservative => "conservative",
        }
    }
}

/// Reservation-relaxation rule for EASY backfilling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Relax {
    /// Strict EASY: never delay the reservation.
    #[default]
    Strict,
    /// Relaxed backfilling: allow delaying the head's start by
    /// `factor × expected_wait` (e.g. `0.10` = 10 %).
    Fixed {
        /// Relaxation factor (fraction of the head's expected wait).
        factor: f64,
    },
    /// Adaptive relaxed backfilling (paper Eq. 1): the effective factor is
    /// `base × queue_len / max_queue_len`, so relaxation ramps up exactly
    /// when congestion makes backfilling most profitable (§V.B) and
    /// vanishes when the queue is short.
    Adaptive {
        /// Maximum relaxation factor, reached at peak congestion.
        base: f64,
    },
}

impl Relax {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Strict => "strict",
            Self::Fixed { .. } => "relaxed",
            Self::Adaptive { .. } => "adaptive",
        }
    }

    /// Extra delay (seconds) a backfill candidate may impose on the head's
    /// reservation.
    ///
    /// * `expected_wait` — the head's promised wait
    ///   (`promised start − submit`), the quantity the relaxation threshold
    ///   is a fraction of;
    /// * `queue_len` / `max_queue_len` — current and running-maximum queue
    ///   lengths (the adaptive signal).
    #[must_use]
    pub fn allowance(self, expected_wait: i64, queue_len: usize, max_queue_len: usize) -> i64 {
        let wait = expected_wait.max(0) as f64;
        let factor = match self {
            Self::Strict => 0.0,
            Self::Fixed { factor } => factor,
            Self::Adaptive { base } => {
                if max_queue_len == 0 {
                    0.0
                } else {
                    base * queue_len as f64 / max_queue_len as f64
                }
            }
        };
        (factor * wait) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_gives_zero_allowance() {
        assert_eq!(Relax::Strict.allowance(10_000, 50, 100), 0);
    }

    #[test]
    fn fixed_is_fraction_of_expected_wait() {
        let r = Relax::Fixed { factor: 0.10 };
        assert_eq!(r.allowance(10_000, 1, 100), 1_000);
        assert_eq!(r.allowance(10_000, 99, 100), 1_000, "queue-independent");
    }

    #[test]
    fn adaptive_scales_with_queue_pressure() {
        let r = Relax::Adaptive { base: 0.10 };
        assert_eq!(r.allowance(10_000, 0, 100), 0);
        assert_eq!(r.allowance(10_000, 50, 100), 500);
        assert_eq!(r.allowance(10_000, 100, 100), 1_000);
    }

    #[test]
    fn adaptive_with_no_history_is_strict() {
        let r = Relax::Adaptive { base: 0.10 };
        assert_eq!(r.allowance(10_000, 5, 0), 0);
    }

    #[test]
    fn negative_expected_wait_is_clamped() {
        let r = Relax::Fixed { factor: 0.5 };
        assert_eq!(r.allowance(-100, 1, 1), 0);
    }
}
