//! Scheduling metrics (paper §II.C) and the utilization timeline (Fig. 3).

use lumos_core::{Duration, Job, Timestamp};
use lumos_stats::quantile;
use serde::Serialize;

/// The paper's scheduling metrics over one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimMetrics {
    /// Jobs scheduled.
    pub jobs: usize,
    /// Mean waiting time (s) — `wait` in Table II.
    pub mean_wait: f64,
    /// Median waiting time (s).
    pub median_wait: f64,
    /// 90th-percentile waiting time (s).
    pub p90_wait: f64,
    /// Mean bounded slowdown, bound 10 s — `bsld` in Table II.
    pub mean_bsld: f64,
    /// Core-hour utilization over the makespan — `util` in Table II.
    pub util: f64,
    /// Mean reservation violation (s): over jobs that ever held a
    /// reservation, the average of `max(0, actual_start − promised_start)`
    /// — `violation` in Table II.
    pub violation: f64,
    /// Number of jobs that ever held a reservation.
    pub reserved_jobs: usize,
    /// Number of reserved jobs that started later than promised.
    pub violated_jobs: usize,
    /// Simulated makespan (first submit → last finish), seconds.
    pub makespan: Duration,
}

impl SimMetrics {
    /// Computes metrics from scheduled jobs (all waits must be filled),
    /// the machine capacity, and the recorded violations.
    ///
    /// # Panics
    /// Panics if any job lacks a wait (i.e. was never scheduled).
    #[must_use]
    pub fn compute(
        jobs: &[Job],
        capacity: u64,
        bsld_bound: Duration,
        violations: &[(Timestamp, Timestamp)],
    ) -> Self {
        assert!(!jobs.is_empty(), "metrics need at least one job");
        let waits: Vec<f64> = jobs
            .iter()
            .map(|j| j.wait.expect("job was scheduled") as f64)
            .collect();
        let bslds: Vec<f64> = jobs
            .iter()
            .map(|j| j.bounded_slowdown(bsld_bound).expect("wait present"))
            .collect();

        let first_submit = jobs.iter().map(|j| j.submit).min().expect("non-empty");
        let last_submit = jobs.iter().map(|j| j.submit).max().expect("non-empty");
        let last_finish = jobs
            .iter()
            .map(|j| j.submit + j.wait.expect("scheduled") + j.runtime)
            .max()
            .expect("non-empty");
        let makespan = (last_finish - first_submit).max(1);

        // Utilization is measured over the *submission window*, the way the
        // paper measures its four-month trace windows — otherwise a single
        // week-long job running past the last arrival dilutes the figure
        // with an artificially idle drain period. Jobs only contribute the
        // part of their execution that overlaps the window.
        let (w0, w1) = if last_submit > first_submit {
            (first_submit, last_submit)
        } else {
            (first_submit, last_finish)
        };
        let used_in_window: f64 = jobs
            .iter()
            .map(|j| {
                let start = j.submit + j.wait.expect("scheduled");
                let end = start + j.runtime;
                let overlap = (end.min(w1) - start.max(w0)).max(0);
                j.procs as f64 * overlap as f64
            })
            .sum();
        let util = used_in_window / (capacity as f64 * (w1 - w0).max(1) as f64);

        let delays: Vec<f64> = violations
            .iter()
            .map(|&(promised, actual)| (actual - promised).max(0) as f64)
            .collect();
        let violated = delays.iter().filter(|&&d| d > 0.0).count();
        let violation = if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };

        Self {
            jobs: jobs.len(),
            mean_wait: waits.iter().sum::<f64>() / waits.len() as f64,
            median_wait: quantile(&waits, 0.5),
            p90_wait: quantile(&waits, 0.9),
            mean_bsld: bslds.iter().sum::<f64>() / bslds.len() as f64,
            util,
            violation,
            reserved_jobs: delays.len(),
            violated_jobs: violated,
            makespan,
        }
    }
}

/// Used-units-over-time samples, recorded at every allocation change.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UtilizationTimeline {
    /// Machine capacity (denominator).
    pub capacity: u64,
    /// `(time, units_in_use)` at each change, time-ascending.
    pub points: Vec<(Timestamp, u64)>,
}

impl UtilizationTimeline {
    /// Time-weighted mean utilization over the recorded span.
    #[must_use]
    pub fn mean_util(&self) -> f64 {
        if self.points.len() < 2 || self.capacity == 0 {
            return 0.0;
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0) as f64;
            area += w[0].1 as f64 * dt;
        }
        let span = (self.points[self.points.len() - 1].0 - self.points[0].0) as f64;
        if span <= 0.0 {
            return 0.0;
        }
        area / (self.capacity as f64 * span)
    }

    /// Downsamples to `bins` equal time windows of mean utilization —
    /// the Fig. 3 series. Returns `(window_center_time, utilization)`.
    #[must_use]
    pub fn binned(&self, bins: usize) -> Vec<(Timestamp, f64)> {
        if self.points.len() < 2 || bins == 0 || self.capacity == 0 {
            return Vec::new();
        }
        let t0 = self.points[0].0;
        let t1 = self.points[self.points.len() - 1].0;
        if t1 <= t0 {
            return Vec::new();
        }
        let width = ((t1 - t0) as f64 / bins as f64).max(1.0);
        let mut out = Vec::with_capacity(bins);
        let mut idx = 0usize;
        let mut current = self.points[0].1;
        for b in 0..bins {
            let lo = t0 + (b as f64 * width) as Timestamp;
            let hi = t0 + ((b + 1) as f64 * width) as Timestamp;
            let mut area = 0.0;
            let mut cursor = lo;
            while idx + 1 < self.points.len() && self.points[idx + 1].0 <= hi {
                let next_t = self.points[idx + 1].0;
                if next_t > cursor {
                    area += current as f64 * (next_t - cursor) as f64;
                    cursor = next_t;
                }
                idx += 1;
                current = self.points[idx].1;
            }
            if hi > cursor {
                area += current as f64 * (hi - cursor) as f64;
            }
            let util = area / (self.capacity as f64 * (hi - lo).max(1) as f64);
            out.push((lo + (hi - lo) / 2, util));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::Job;

    fn scheduled_job(id: u64, submit: i64, wait: i64, runtime: i64, procs: u64) -> Job {
        let mut j = Job::basic(id, 1, submit, runtime, procs);
        j.wait = Some(wait);
        j
    }

    #[test]
    fn metrics_basic() {
        let jobs = vec![
            scheduled_job(1, 0, 0, 100, 10),
            scheduled_job(2, 0, 100, 100, 10),
        ];
        let m = SimMetrics::compute(&jobs, 10, 10, &[]);
        assert_eq!(m.jobs, 2);
        assert!((m.mean_wait - 50.0).abs() < 1e-12);
        // Job 1 runs 0..100, job 2 runs 100..200: makespan 200, machine
        // fully busy ⇒ util 1. Used 2000 core-s of 10 × 200.
        assert!((m.util - 1.0).abs() < 1e-12);
        // bsld: job1 = 1, job2 = 200/100 = 2.
        assert!((m.mean_bsld - 1.5).abs() < 1e-12);
        assert_eq!(m.reserved_jobs, 0);
        assert_eq!(m.violation, 0.0);
    }

    #[test]
    fn violations_average_over_reserved_jobs() {
        let jobs = vec![scheduled_job(1, 0, 0, 10, 1)];
        let m = SimMetrics::compute(&jobs, 1, 10, &[(100, 160), (100, 100), (100, 90)]);
        assert_eq!(m.reserved_jobs, 3);
        assert_eq!(m.violated_jobs, 1);
        assert!((m.violation - 20.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_mean_util() {
        let tl = UtilizationTimeline {
            capacity: 10,
            points: vec![(0, 10), (50, 0), (100, 0)],
        };
        // 10 units for 50s, 0 for 50s over capacity 10 × 100s = 0.5.
        assert!((tl.mean_util() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_binned_matches_step_function() {
        let tl = UtilizationTimeline {
            capacity: 10,
            points: vec![(0, 10), (50, 0), (100, 0)],
        };
        let bins = tl.binned(2);
        assert_eq!(bins.len(), 2);
        assert!((bins[0].1 - 1.0).abs() < 1e-9);
        assert!((bins[1].1 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_timelines_are_safe() {
        let tl = UtilizationTimeline {
            capacity: 10,
            points: vec![(5, 3)],
        };
        assert_eq!(tl.mean_util(), 0.0);
        assert!(tl.binned(4).is_empty());
    }
}
