//! Future free-capacity profiles.
//!
//! Both the EASY shadow-time computation and conservative backfilling need
//! to answer: *given the walltime-based end estimates of everything already
//! running (and already-reserved), when is the earliest time a job of
//! `procs` units can start?* [`CapacityProfile`] answers that with a
//! breakpoint list of `(time, free_units)` that stays sorted by time.
//!
//! # Incremental maintenance
//!
//! A profile can be rebuilt from the running set
//! ([`CapacityProfile::from_sorted_running`], O(running jobs)), or — the
//! hot path — maintained *incrementally* across scheduling passes:
//!
//! * a job start carves its planned interval out with
//!   [`CapacityProfile::reserve`],
//! * a completion hands the unused tail of the plan back with
//!   [`CapacityProfile::unreserve`],
//! * [`CapacityProfile::prune_to`] drops breakpoints the advancing clock
//!   has made unreachable, keeping the list proportional to the number of
//!   *future* end estimates.
//!
//! Maintained this way the profile is a **skyline**: every running job
//! contributes a busy interval `[now, end_estimate)` whose left edge is
//! the query time, so free capacity restricted to the future is
//! *non-decreasing in time* — which is what lets
//! [`CapacityProfile::earliest_forever`] answer the EASY shadow-time query
//! with one O(log n) binary search over the sorted breakpoints. See
//! `docs/PERFORMANCE.md` for the complexity argument and the differential
//! test pinning incremental == rebuilt-from-scratch.
//!
//! ```
//! use lumos_sim::profile::CapacityProfile;
//!
//! // 100 free units; a job takes 40 of them on [10, 50).
//! let mut p = CapacityProfile::new(0, 100);
//! p.reserve(10, 50, 40);
//! assert_eq!(p.free_at(20), 60);
//! // The job finishes early at t=30: the tail of its plan comes back.
//! p.unreserve(30, 50, 40);
//! assert_eq!(p.free_at(30), 100);
//! // The clock reaches 30; history is dropped, queries are unaffected.
//! p.prune_to(30);
//! assert_eq!(p.free_at(30), 100);
//! assert_eq!(p.earliest_forever(30, 100), Some(30));
//! ```

use lumos_core::Timestamp;

/// Piecewise-constant free-capacity timeline. `points[i] = (t_i, free_i)`
/// means `free_i` units are free on `[t_i, t_{i+1})`; the last segment
/// extends to infinity.
#[derive(Debug, PartialEq, Eq)]
pub struct CapacityProfile {
    points: Vec<(Timestamp, u64)>,
}

// Hand-written instead of derived so `clone_from` reuses the target's
// breakpoint allocation: conservative backfill copy-assigns the live
// skyline into one long-lived scratch profile every pass, and the derived
// impl would discard and reallocate the scratch vector each time.
impl Clone for CapacityProfile {
    fn clone(&self) -> Self {
        Self {
            points: self.points.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.points.clone_from(&source.points);
    }
}

impl CapacityProfile {
    /// A profile with `free` units free from `start` onwards.
    #[must_use]
    pub fn new(start: Timestamp, free: u64) -> Self {
        Self {
            points: vec![(start, free)],
        }
    }

    /// Builds the profile at time `now` from running-job end estimates:
    /// `running` is a slice of `(end_estimate, procs)`.
    #[must_use]
    pub fn from_running(now: Timestamp, capacity: u64, running: &[(Timestamp, u64)]) -> Self {
        let mut ends: Vec<(Timestamp, u64)> = running.to_vec();
        ends.sort_unstable();
        Self::from_sorted_running(now, capacity, ends.iter().copied())
    }

    /// [`Self::from_running`] for end estimates already in ascending order
    /// (the scheduler maintains its running set sorted, making this O(n)
    /// instead of O(n log n) — it runs on every scheduling pass).
    ///
    /// # Panics
    /// Debug-asserts the ascending order.
    #[must_use]
    pub fn from_sorted_running(
        now: Timestamp,
        capacity: u64,
        running: impl Iterator<Item = (Timestamp, u64)> + Clone,
    ) -> Self {
        let in_use: u64 = running.clone().map(|(_, p)| p).sum();
        let mut profile = Self::new(now, capacity.saturating_sub(in_use));
        let mut prev = Timestamp::MIN;
        for (end, procs) in running {
            debug_assert!(end >= prev, "running set must be end-sorted");
            prev = end;
            profile.release(end.max(now), procs);
        }
        profile
    }

    /// Number of breakpoints (for tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no breakpoints exist (never: construction seeds one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Free units at time `t` (clamped to the first segment before it).
    #[must_use]
    pub fn free_at(&self, t: Timestamp) -> u64 {
        match self.points.binary_search_by_key(&t, |&(ti, _)| ti) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Adds `procs` free units from time `at` onwards (a running job's
    /// estimated completion).
    pub fn release(&mut self, at: Timestamp, procs: u64) {
        if procs == 0 {
            return;
        }
        let idx = self.ensure_breakpoint(at);
        for p in &mut self.points[idx..] {
            p.1 += procs;
        }
    }

    /// Removes `procs` free units over `[from, to)` (a reservation).
    ///
    /// # Panics
    /// Panics (debug) if the interval lacks capacity — callers must have
    /// checked with [`Self::earliest_fit`] / [`Self::fits`].
    pub fn reserve(&mut self, from: Timestamp, to: Timestamp, procs: u64) {
        if from >= to || procs == 0 {
            return;
        }
        let start_idx = self.ensure_breakpoint(from);
        let end_idx = self.ensure_breakpoint(to);
        for p in &mut self.points[start_idx..end_idx] {
            debug_assert!(p.1 >= procs, "reservation exceeds free capacity");
            p.1 = p.1.saturating_sub(procs);
        }
        self.coalesce_at(end_idx);
        self.coalesce_at(start_idx);
    }

    /// Returns `procs` free units over `[from, to)` — the inverse of
    /// [`Self::reserve`]. Used when a running job completes before its end
    /// estimate: the unused tail of its planned reservation comes back.
    ///
    /// ```
    /// use lumos_sim::profile::CapacityProfile;
    /// let mut p = CapacityProfile::new(0, 10);
    /// p.reserve(0, 100, 4);
    /// p.unreserve(60, 100, 4); // finished early at t=60
    /// assert_eq!(p.free_at(59), 6);
    /// assert_eq!(p.free_at(60), 10);
    /// ```
    pub fn unreserve(&mut self, from: Timestamp, to: Timestamp, procs: u64) {
        if from >= to || procs == 0 {
            return;
        }
        let start_idx = self.ensure_breakpoint(from);
        let end_idx = self.ensure_breakpoint(to);
        for p in &mut self.points[start_idx..end_idx] {
            p.1 += procs;
        }
        self.coalesce_at(end_idx);
        self.coalesce_at(start_idx);
    }

    /// Drops every breakpoint strictly before `t` and re-anchors the first
    /// segment at `t`. Free values at times `>= t` are unchanged; history
    /// before `t` becomes unqueryable. Amortized O(1) per dropped point —
    /// the incremental skyline calls this every scheduling pass so the
    /// breakpoint list stays proportional to the number of *future* end
    /// estimates instead of growing with every job ever started.
    pub fn prune_to(&mut self, t: Timestamp) {
        let idx = match self.points.binary_search_by_key(&t, |&(ti, _)| ti) {
            Ok(i) => i,
            Err(0) => return, // every breakpoint is already at or after `t`
            Err(i) => i - 1,
        };
        if idx > 0 {
            self.points.drain(..idx);
        }
        self.points[0].0 = t;
    }

    /// True if `procs` units are free throughout `[from, to)`.
    #[must_use]
    pub fn fits(&self, from: Timestamp, to: Timestamp, procs: u64) -> bool {
        if from >= to {
            return true;
        }
        // Segment containing `from`:
        let mut i = match self.points.binary_search_by_key(&from, |&(t, _)| t) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        while i < self.points.len() && self.points[i].0 < to {
            if self.points[i].1 < procs {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Earliest `t ≥ after` at which `procs` units stay free for
    /// `duration` seconds. Candidate starts are `after` itself and the
    /// breakpoints (capacity only changes there). Returns `None` if `procs`
    /// can never fit (i.e. exceeds the eventual total).
    ///
    /// One forward sweep over the segments at or after `after` — O(log n)
    /// to locate the starting segment plus O(segments scanned) — instead of
    /// the quadratic candidate × re-scan the naive formulation costs.
    #[must_use]
    pub fn earliest_fit(&self, after: Timestamp, procs: u64, duration: i64) -> Option<Timestamp> {
        if duration <= 0 {
            return Some(after); // an empty interval fits anywhere
        }
        let mut i = match self.points.binary_search_by_key(&after, |&(t, _)| t) {
            Ok(i) => i,
            Err(0) => 0, // before the first point: its value extends back
            Err(i) => i - 1,
        };
        // Start of the current run of segments with `free >= procs`.
        let mut run_start: Option<Timestamp> = None;
        // Where the current segment's candidate window begins: `after`
        // itself for the segment containing it, the breakpoint after that.
        let mut seg_start = after;
        while i < self.points.len() {
            if self.points[i].1 >= procs {
                let s = *run_start.get_or_insert(seg_start);
                if i + 1 == self.points.len() {
                    // Last segment extends to infinity; the run can only
                    // keep growing.
                    return run_start;
                }
                if self.points[i + 1].0 - s >= duration {
                    return run_start;
                }
            } else {
                run_start = None;
            }
            i += 1;
            if i < self.points.len() {
                seg_start = self.points[i].0;
            }
        }
        None
    }

    /// Earliest time at which at least `procs` units are free *and remain
    /// free forever after* (the EASY shadow time). Returns `None` if never.
    ///
    /// Requires a **monotone** profile — free capacity non-decreasing over
    /// time (debug-asserted). The incremental skyline satisfies this by
    /// construction: restricted to the future, every running job occupies a
    /// prefix interval `[now, end_estimate)`, so capacity only ever comes
    /// back. Monotonicity is what turns the query into a single
    /// `partition_point` binary search: O(log n) over the sorted
    /// breakpoints.
    #[must_use]
    pub fn earliest_forever(&self, after: Timestamp, procs: u64) -> Option<Timestamp> {
        debug_assert!(
            self.points.windows(2).all(|w| w[0].1 <= w[1].1),
            "earliest_forever requires a monotone (release-only) profile"
        );
        let idx = self.points.partition_point(|&(_, free)| free < procs);
        if idx == self.points.len() {
            None
        } else {
            Some(self.points[idx].0.max(after))
        }
    }

    /// The breakpoints (for tests and debugging).
    #[must_use]
    pub fn points(&self) -> &[(Timestamp, u64)] {
        &self.points
    }

    /// Removes the breakpoint at `idx` if it repeats its predecessor's
    /// value, keeping the representation canonical (no two adjacent
    /// breakpoints with equal free counts). Interval mutations shift a
    /// contiguous range by a constant, so only the two boundary pairs can
    /// become redundant — callers coalesce exactly those.
    fn coalesce_at(&mut self, idx: usize) {
        if idx > 0 && idx < self.points.len() && self.points[idx].1 == self.points[idx - 1].1 {
            self.points.remove(idx);
        }
    }

    /// Ensures a breakpoint exists exactly at `t`, returning its index.
    fn ensure_breakpoint(&mut self, t: Timestamp) -> usize {
        match self.points.binary_search_by_key(&t, |&(ti, _)| ti) {
            Ok(i) => i,
            Err(0) => {
                // Before the first point: extend the first segment backwards.
                let free = self.points[0].1;
                self.points.insert(0, (t, free));
                0
            }
            Err(i) => {
                let free = self.points[i - 1].1;
                self.points.insert(i, (t, free));
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_running_accumulates_releases() {
        // Capacity 100; two running jobs: 60 units until t=50, 30 until t=80.
        let p = CapacityProfile::from_running(0, 100, &[(50, 60), (80, 30)]);
        assert_eq!(p.free_at(0), 10);
        assert_eq!(p.free_at(49), 10);
        assert_eq!(p.free_at(50), 70);
        assert_eq!(p.free_at(80), 100);
        assert_eq!(p.free_at(1_000), 100);
    }

    #[test]
    fn reserve_carves_an_interval() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(10, 20, 40);
        assert_eq!(p.free_at(9), 100);
        assert_eq!(p.free_at(10), 60);
        assert_eq!(p.free_at(19), 60);
        assert_eq!(p.free_at(20), 100);
    }

    #[test]
    fn fits_checks_whole_interval() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(10, 20, 80);
        assert!(p.fits(0, 10, 100));
        assert!(!p.fits(5, 15, 50));
        assert!(p.fits(5, 15, 20));
        assert!(p.fits(20, 100, 100));
    }

    #[test]
    fn earliest_fit_scans_breakpoints() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(0, 50, 90); // only 10 free until t=50
        assert_eq!(p.earliest_fit(0, 10, 100), Some(0));
        assert_eq!(p.earliest_fit(0, 20, 100), Some(50));
        // 30-second job of 20 units starting at 25 would overlap the busy
        // region, so it must wait for t=50.
        assert_eq!(p.earliest_fit(25, 20, 30), Some(50));
        assert_eq!(p.earliest_fit(0, 1_000, 10), None);
    }

    #[test]
    fn earliest_forever_is_the_shadow_time() {
        let p = CapacityProfile::from_running(0, 100, &[(50, 60), (80, 30)]);
        assert_eq!(p.earliest_forever(0, 10), Some(0));
        assert_eq!(p.earliest_forever(0, 70), Some(50));
        assert_eq!(p.earliest_forever(0, 100), Some(80));
        assert_eq!(p.earliest_forever(0, 101), None);
        // `after` clamps forward.
        assert_eq!(p.earliest_forever(60, 70), Some(60));
    }

    #[test]
    fn release_before_first_point_extends_backwards() {
        let mut p = CapacityProfile::new(100, 10);
        p.release(50, 5);
        assert_eq!(p.free_at(50), 15);
        assert_eq!(p.free_at(100), 15);
    }

    #[test]
    fn zero_length_reservation_is_a_noop() {
        let mut p = CapacityProfile::new(0, 10);
        p.reserve(5, 5, 10);
        assert_eq!(p.free_at(5), 10);
    }

    #[test]
    fn unreserve_returns_the_tail_and_coalesces() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(10, 50, 40);
        assert_eq!(p.len(), 3);
        // Full inverse restores the flat profile with no leftover points.
        p.unreserve(10, 50, 40);
        assert_eq!(p.points(), &[(0, 100)]);
        // Partial inverse (early completion) keeps only the live step.
        p.reserve(10, 50, 40);
        p.unreserve(30, 50, 40);
        assert_eq!(p.points(), &[(0, 100), (10, 60), (30, 100)]);
        assert_eq!(p.free_at(29), 60);
        assert_eq!(p.free_at(30), 100);
    }

    #[test]
    fn reserve_coalesces_boundary_steps() {
        // Two adjacent reservations of the same size merge into one step.
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(10, 20, 40);
        p.reserve(20, 30, 40);
        assert_eq!(p.points(), &[(0, 100), (10, 60), (30, 100)]);
    }

    #[test]
    fn prune_drops_history_and_reanchors() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(10, 20, 40);
        p.reserve(30, 60, 70);
        p.prune_to(35);
        assert_eq!(p.points(), &[(35, 30), (60, 100)]);
        assert_eq!(p.free_at(35), 30);
        assert_eq!(p.free_at(60), 100);
        // Pruning to an existing breakpoint keeps it.
        p.prune_to(60);
        assert_eq!(p.points(), &[(60, 100)]);
        // Pruning before every breakpoint is a no-op.
        let mut q = CapacityProfile::new(50, 10);
        q.prune_to(40);
        assert_eq!(q.points(), &[(50, 10)]);
    }

    #[test]
    fn earliest_fit_sweep_matches_candidate_scan() {
        // Reference implementation: try `after` then every later breakpoint.
        fn naive(p: &CapacityProfile, after: i64, procs: u64, dur: i64) -> Option<i64> {
            if p.fits(after, after + dur.max(0), procs) {
                return Some(after);
            }
            p.points()
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t > after)
                .find(|&t| p.fits(t, t + dur.max(0), procs))
        }
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(0, 50, 90);
        p.reserve(60, 70, 95);
        p.reserve(100, 130, 50);
        for after in [0, 25, 50, 55, 65, 99, 200] {
            for procs in [1u64, 10, 20, 60, 100, 101] {
                for dur in [0i64, 1, 10, 30, 100] {
                    assert_eq!(
                        p.earliest_fit(after, procs, dur),
                        naive(&p, after, procs, dur),
                        "after={after} procs={procs} dur={dur}"
                    );
                }
            }
        }
    }

    #[test]
    fn earliest_forever_binary_search_on_monotone_profile() {
        let p = CapacityProfile::from_running(0, 100, &[(50, 60), (30, 10)]);
        assert_eq!(p.earliest_forever(0, 30), Some(0));
        assert_eq!(p.earliest_forever(0, 31), Some(30));
        assert_eq!(p.earliest_forever(0, 41), Some(50));
        assert_eq!(p.earliest_forever(0, 100), Some(50));
        assert_eq!(p.earliest_forever(0, 101), None);
    }
}
