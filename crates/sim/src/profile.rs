//! Future free-capacity profiles.
//!
//! Both the EASY shadow-time computation and conservative backfilling need
//! to answer: *given the walltime-based end estimates of everything already
//! running (and already-reserved), when is the earliest time a job of
//! `procs` units can start?* [`CapacityProfile`] answers that with a
//! breakpoint list of `(time, free_units)` that stays sorted by time.

use lumos_core::Timestamp;

/// Piecewise-constant free-capacity timeline. `points[i] = (t_i, free_i)`
/// means `free_i` units are free on `[t_i, t_{i+1})`; the last segment
/// extends to infinity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityProfile {
    points: Vec<(Timestamp, u64)>,
}

impl CapacityProfile {
    /// A profile with `free` units free from `start` onwards.
    #[must_use]
    pub fn new(start: Timestamp, free: u64) -> Self {
        Self {
            points: vec![(start, free)],
        }
    }

    /// Builds the profile at time `now` from running-job end estimates:
    /// `running` is a slice of `(end_estimate, procs)`.
    #[must_use]
    pub fn from_running(now: Timestamp, capacity: u64, running: &[(Timestamp, u64)]) -> Self {
        let mut ends: Vec<(Timestamp, u64)> = running.to_vec();
        ends.sort_unstable();
        Self::from_sorted_running(now, capacity, ends.iter().copied())
    }

    /// [`Self::from_running`] for end estimates already in ascending order
    /// (the scheduler maintains its running set sorted, making this O(n)
    /// instead of O(n log n) — it runs on every scheduling pass).
    ///
    /// # Panics
    /// Debug-asserts the ascending order.
    #[must_use]
    pub fn from_sorted_running(
        now: Timestamp,
        capacity: u64,
        running: impl Iterator<Item = (Timestamp, u64)> + Clone,
    ) -> Self {
        let in_use: u64 = running.clone().map(|(_, p)| p).sum();
        let mut profile = Self::new(now, capacity.saturating_sub(in_use));
        let mut prev = Timestamp::MIN;
        for (end, procs) in running {
            debug_assert!(end >= prev, "running set must be end-sorted");
            prev = end;
            profile.release(end.max(now), procs);
        }
        profile
    }

    /// Number of breakpoints (for tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no breakpoints exist (never: construction seeds one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Free units at time `t` (clamped to the first segment before it).
    #[must_use]
    pub fn free_at(&self, t: Timestamp) -> u64 {
        match self.points.binary_search_by_key(&t, |&(ti, _)| ti) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Adds `procs` free units from time `at` onwards (a running job's
    /// estimated completion).
    pub fn release(&mut self, at: Timestamp, procs: u64) {
        let idx = self.ensure_breakpoint(at);
        for p in &mut self.points[idx..] {
            p.1 += procs;
        }
    }

    /// Removes `procs` free units over `[from, to)` (a reservation).
    ///
    /// # Panics
    /// Panics (debug) if the interval lacks capacity — callers must have
    /// checked with [`Self::earliest_fit`] / [`Self::fits`].
    pub fn reserve(&mut self, from: Timestamp, to: Timestamp, procs: u64) {
        if from >= to {
            return;
        }
        let start_idx = self.ensure_breakpoint(from);
        let end_idx = self.ensure_breakpoint(to);
        for p in &mut self.points[start_idx..end_idx] {
            debug_assert!(p.1 >= procs, "reservation exceeds free capacity");
            p.1 = p.1.saturating_sub(procs);
        }
    }

    /// True if `procs` units are free throughout `[from, to)`.
    #[must_use]
    pub fn fits(&self, from: Timestamp, to: Timestamp, procs: u64) -> bool {
        if from >= to {
            return true;
        }
        // Segment containing `from`:
        let mut i = match self.points.binary_search_by_key(&from, |&(t, _)| t) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        while i < self.points.len() && self.points[i].0 < to {
            if self.points[i].1 < procs {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Earliest `t ≥ after` at which `procs` units stay free for
    /// `duration` seconds. Candidate starts are the breakpoints (capacity
    /// only changes there). Returns `None` if `procs` can never fit (i.e.
    /// exceeds the eventual total).
    #[must_use]
    pub fn earliest_fit(&self, after: Timestamp, procs: u64, duration: i64) -> Option<Timestamp> {
        if self.fits(after, after + duration.max(0), procs) {
            return Some(after);
        }
        for &(t, _) in &self.points {
            if t <= after {
                continue;
            }
            if self.fits(t, t + duration.max(0), procs) {
                return Some(t);
            }
        }
        None
    }

    /// Earliest time at which at least `procs` units are free *and remain
    /// free forever after* (the EASY shadow time: only completions are in
    /// the profile, so free capacity is non-decreasing... except where
    /// reservations were carved out). Returns `None` if never.
    #[must_use]
    pub fn earliest_forever(&self, after: Timestamp, procs: u64) -> Option<Timestamp> {
        // Scan from the end: find the last segment with free < procs; the
        // answer is the breakpoint after it.
        let mut answer: Option<Timestamp> = None;
        for &(t, free) in self.points.iter().rev() {
            if free >= procs {
                answer = Some(t.max(after));
            } else {
                break;
            }
        }
        answer
    }

    /// The breakpoints (for tests and debugging).
    #[must_use]
    pub fn points(&self) -> &[(Timestamp, u64)] {
        &self.points
    }

    /// Ensures a breakpoint exists exactly at `t`, returning its index.
    fn ensure_breakpoint(&mut self, t: Timestamp) -> usize {
        match self.points.binary_search_by_key(&t, |&(ti, _)| ti) {
            Ok(i) => i,
            Err(0) => {
                // Before the first point: extend the first segment backwards.
                let free = self.points[0].1;
                self.points.insert(0, (t, free));
                0
            }
            Err(i) => {
                let free = self.points[i - 1].1;
                self.points.insert(i, (t, free));
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_running_accumulates_releases() {
        // Capacity 100; two running jobs: 60 units until t=50, 30 until t=80.
        let p = CapacityProfile::from_running(0, 100, &[(50, 60), (80, 30)]);
        assert_eq!(p.free_at(0), 10);
        assert_eq!(p.free_at(49), 10);
        assert_eq!(p.free_at(50), 70);
        assert_eq!(p.free_at(80), 100);
        assert_eq!(p.free_at(1_000), 100);
    }

    #[test]
    fn reserve_carves_an_interval() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(10, 20, 40);
        assert_eq!(p.free_at(9), 100);
        assert_eq!(p.free_at(10), 60);
        assert_eq!(p.free_at(19), 60);
        assert_eq!(p.free_at(20), 100);
    }

    #[test]
    fn fits_checks_whole_interval() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(10, 20, 80);
        assert!(p.fits(0, 10, 100));
        assert!(!p.fits(5, 15, 50));
        assert!(p.fits(5, 15, 20));
        assert!(p.fits(20, 100, 100));
    }

    #[test]
    fn earliest_fit_scans_breakpoints() {
        let mut p = CapacityProfile::new(0, 100);
        p.reserve(0, 50, 90); // only 10 free until t=50
        assert_eq!(p.earliest_fit(0, 10, 100), Some(0));
        assert_eq!(p.earliest_fit(0, 20, 100), Some(50));
        // 30-second job of 20 units starting at 25 would overlap the busy
        // region, so it must wait for t=50.
        assert_eq!(p.earliest_fit(25, 20, 30), Some(50));
        assert_eq!(p.earliest_fit(0, 1_000, 10), None);
    }

    #[test]
    fn earliest_forever_is_the_shadow_time() {
        let p = CapacityProfile::from_running(0, 100, &[(50, 60), (80, 30)]);
        assert_eq!(p.earliest_forever(0, 10), Some(0));
        assert_eq!(p.earliest_forever(0, 70), Some(50));
        assert_eq!(p.earliest_forever(0, 100), Some(80));
        assert_eq!(p.earliest_forever(0, 101), None);
        // `after` clamps forward.
        assert_eq!(p.earliest_forever(60, 70), Some(60));
    }

    #[test]
    fn release_before_first_point_extends_backwards() {
        let mut p = CapacityProfile::new(100, 10);
        p.release(50, 5);
        assert_eq!(p.free_at(50), 15);
        assert_eq!(p.free_at(100), 15);
    }

    #[test]
    fn zero_length_reservation_is_a_noop() {
        let mut p = CapacityProfile::new(0, 10);
        p.reserve(5, 5, 10);
        assert_eq!(p.free_at(5), 10);
    }
}
