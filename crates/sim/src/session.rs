//! Incremental simulation sessions.
//!
//! [`SimSession`] is the discrete-event core of the simulator exposed as a
//! stepwise API: jobs are submitted one at a time ([`SimSession::submit`]),
//! virtual time moves forward explicitly ([`SimSession::advance_to`]), and
//! observers read what happened through [`SimSession::drain_events`] and
//! [`SimSession::snapshot`]. Batch replay ([`crate::simulate`]) is a thin
//! wrapper — submit everything, run to completion — so both paths share one
//! event loop and produce identical schedules for identical arrivals.
//!
//! The event model is unchanged from the batch engine: arrivals and
//! completions are the only events; at each event time the affected
//! partitions re-run a scheduling pass (policy-ordered head start +
//! backfilling). Determinism: ties are broken by `(priority, submit, id)`
//! everywhere, so interleaving `submit`/`advance_to` calls in any valid
//! order yields the same schedule as one batch run.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use lumos_core::{CoreError, Duration, Job, Result, SystemSpec, Timestamp};
use serde::{Deserialize, Serialize};

use crate::backfill::Backfill;
use crate::cluster::{Cluster, RunningJob};
use crate::metrics::{SimMetrics, UtilizationTimeline};
use crate::profile::CapacityProfile;
use crate::simulator::{SimConfig, SimResult};
use crate::tenant::{TenantId, TenantState, TenantTable, TenantUsage};

/// Lifecycle state of a job inside a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, but its submit time is still in the future.
    Pending,
    /// Arrived and sitting in a partition's waiting queue.
    Waiting,
    /// Currently executing.
    Running,
    /// Completed execution.
    Finished,
    /// Cancelled before it started.
    Cancelled,
}

/// Something that happened inside the session, in event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A job left the waiting queue and began executing.
    Started {
        /// Job id.
        id: u64,
        /// Simulation time it started.
        time: Timestamp,
        /// Observed waiting time (`start − submit`).
        wait: Duration,
    },
    /// A running job completed.
    Finished {
        /// Job id.
        id: u64,
        /// Simulation time it finished.
        time: Timestamp,
    },
    /// A job was cancelled before it started.
    Cancelled {
        /// Job id.
        id: u64,
        /// Simulation time of the cancellation.
        time: Timestamp,
    },
}

/// Point-in-time view of a session's state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionSnapshot {
    /// Current simulation time (last processed or advanced-to instant).
    pub now: Timestamp,
    /// Jobs ever submitted (including finished and cancelled).
    pub submitted: usize,
    /// Jobs submitted whose arrival time is still in the future.
    pub pending: usize,
    /// Jobs sitting in waiting queues across all partitions.
    pub waiting: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs that completed.
    pub finished: usize,
    /// Jobs cancelled before starting.
    pub cancelled: usize,
    /// Resource units in use.
    pub used_units: u64,
    /// Total machine capacity in units.
    pub capacity: u64,
    /// Instantaneous utilization (`used_units / capacity`).
    pub utilization: f64,
}

/// Complete, serializable scheduling state of a [`SimSession`].
///
/// Produced by [`SimSession::save_state`] and consumed by
/// [`SimSession::restore`]. Only *facts* are stored — the job table with
/// observed waits, per-job lifecycle states, planning walltimes, issued
/// reservations, and the accumulated observables (violations, timeline,
/// queue maxima, undrained events). Everything derivable is rebuilt on
/// restore from those facts plus the [`SystemSpec`]: partition routing and
/// effective requests (via the deterministic [`crate::cluster::Cluster::route`]),
/// policy keys (the policy key never depends on the observed wait), queue
/// orderings, the running set, and the completion heap. That keeps the
/// snapshot small and makes corruption detectable as inconsistency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// Scheduling configuration the session runs under.
    pub config: SimConfig,
    /// Simulation time at the moment of the save.
    pub clock: Timestamp,
    /// Every job ever submitted, in submission order, with observed waits
    /// filled in for started jobs.
    pub jobs: Vec<Job>,
    /// Per-job lifecycle state, parallel to `jobs`.
    pub states: Vec<JobState>,
    /// Per-job walltime the scheduler plans with, parallel to `jobs`.
    pub plan_wall: Vec<Duration>,
    /// Per-job promised (reserved) start time, parallel to `jobs`.
    pub promised: Vec<Option<Timestamp>>,
    /// Reservation violations observed so far, as `(promised, actual)`.
    pub violations: Vec<(Timestamp, Timestamp)>,
    /// Utilization timeline points, as `(time, used_units)`.
    pub timeline: Vec<(Timestamp, u64)>,
    /// Per-partition running-maximum queue length.
    pub max_queue: Vec<usize>,
    /// Global maximum total queue length.
    pub max_queue_total: usize,
    /// Events recorded but not yet drained at save time.
    pub events: Vec<SimEvent>,
    /// Whether the session records events.
    pub record_events: bool,
    /// Tenant table, when the session runs with tenancy enabled.
    /// `Option` so snapshots written before tenancy existed still
    /// deserialize (missing field → `None` → tenancy off).
    pub tenants: Option<TenantTable>,
    /// Owning tenant per job, parallel to `jobs`; saved iff `tenants`
    /// is. Usage accounting is re-derived from this plus the states.
    pub tenant_of: Option<Vec<TenantId>>,
}

/// An incremental scheduling simulation.
///
/// Jobs must be submitted with `submit >= now` (no rewriting history);
/// `advance_to` processes all arrivals and completions up to and including
/// the target time. See the module docs for the determinism contract.
#[derive(Debug)]
pub struct SimSession {
    config: SimConfig,
    jobs: Vec<Job>,
    /// Per-job effective request, clamped to its partition's capacity so
    /// every job is schedulable.
    procs_eff: Vec<u64>,
    /// Per-job walltime the scheduler plans with.
    plan_wall: Vec<Duration>,
    /// Per-job partition.
    part_of: Vec<usize>,
    /// Per-job cached policy key.
    key_of: Vec<f64>,
    /// Per-job promised (reserved) start time, if one was ever issued.
    promised: Vec<Option<Timestamp>>,
    /// Per-job lifecycle state.
    state: Vec<JobState>,
    /// First job table index for each id (for `query`/`cancel`).
    by_id: HashMap<u64, usize>,
    /// Submitted jobs not yet arrived, ascending by `(submit, id)`.
    pending: VecDeque<usize>,
    cluster: Cluster,
    finish_heap: BinaryHeap<Reverse<(Timestamp, usize)>>,
    violations: Vec<(Timestamp, Timestamp)>,
    timeline: Vec<(Timestamp, u64)>,
    /// Per-partition running-maximum queue length (the adaptive signal).
    max_queue: Vec<usize>,
    /// Global maximum total queue length.
    max_queue_total: usize,
    /// Current simulation time.
    clock: Timestamp,
    /// Scratch buffer: partitions touched by the current event.
    dirty: Vec<usize>,
    /// Scratch profile for conservative backfill: each pass copy-assigns
    /// the partition's maintained skyline into it and carves trial
    /// reservations, reusing one breakpoint allocation across passes.
    /// Not part of the saved state — it is dead between passes.
    scratch_profile: CapacityProfile,
    /// Event log since the last `drain_events` (off for batch replay,
    /// where nobody drains and the log would only cost memory).
    pub(crate) record_events: bool,
    /// Accept resubmission of a live job id (first submission keeps
    /// ownership of `query`/`cancel`). Only batch replay opts in, to keep
    /// historical traces with colliding ids replayable; the incremental
    /// API rejects live duplicates.
    pub(crate) allow_duplicate_ids: bool,
    events: Vec<SimEvent>,
    finished_count: usize,
    cancelled_count: usize,
    /// Discrete events processed since construction (arrivals +
    /// completions). Observability only — not part of the saved state, so
    /// a restored session restarts the count at zero.
    events_processed: u64,
    /// Tenant table + per-tenant accounting; `None` when tenancy is off.
    tenants: Option<TenantState>,
}

impl SimSession {
    /// Creates an empty session for `system` under `config`.
    #[must_use]
    pub fn new(system: &SystemSpec, config: SimConfig) -> Self {
        let cluster = Cluster::new(system, config.respect_virtual_clusters);
        let parts = cluster.partition_count();
        Self {
            config,
            jobs: Vec::new(),
            procs_eff: Vec::new(),
            plan_wall: Vec::new(),
            part_of: Vec::new(),
            key_of: Vec::new(),
            promised: Vec::new(),
            state: Vec::new(),
            by_id: HashMap::new(),
            pending: VecDeque::new(),
            cluster,
            finish_heap: BinaryHeap::new(),
            violations: Vec::new(),
            timeline: Vec::new(),
            max_queue: vec![0; parts],
            max_queue_total: 0,
            clock: Timestamp::MIN,
            dirty: Vec::new(),
            scratch_profile: CapacityProfile::new(0, 0),
            record_events: true,
            allow_duplicate_ids: false,
            events: Vec::new(),
            finished_count: 0,
            cancelled_count: 0,
            events_processed: 0,
            tenants: None,
        }
    }

    /// Creates an empty session with tenancy enabled: every job is owned
    /// by a tenant from `table` (the built-in `default` tenant when the
    /// submission names none), quotas are enforced at submit time, and
    /// fair-share policies order queues by live tenant shares.
    #[must_use]
    pub fn new_with_tenants(system: &SystemSpec, config: SimConfig, table: TenantTable) -> Self {
        let mut s = Self::new(system, config);
        s.tenants = Some(TenantState::new(table));
        s
    }

    /// Current simulation time. `Timestamp::MIN` until the first
    /// `advance_to` or processed event.
    #[must_use]
    pub fn now(&self) -> Timestamp {
        self.clock
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Submits a job using its own planning walltime.
    ///
    /// # Errors
    /// Rejects jobs submitted in the simulation past, with zero or
    /// machine-oversized requests, or with negative runtime.
    pub fn submit(&mut self, job: Job) -> Result<()> {
        self.submit_with_walltime(job, None)
    }

    /// Submits a job with a scheduler-side walltime estimate overriding the
    /// user-supplied one (the runtime-predictor hook; floored at 1 s). The
    /// job still runs its true runtime — only the scheduler's plan changes.
    ///
    /// An id may be reused once its previous holder has finished or been
    /// cancelled; `query`/`cancel`/`job` keep resolving to the *first*
    /// submission of that id.
    ///
    /// # Errors
    /// Same contract as [`SimSession::submit`], plus
    /// [`CoreError::DuplicateJob`] when an earlier job with the same id is
    /// still live (pending, waiting, or running) — a duplicate would run
    /// but be unaddressable through `query`/`cancel`.
    pub fn submit_with_walltime(&mut self, job: Job, walltime: Option<Duration>) -> Result<()> {
        self.submit_with_tenant(job, None, walltime)
    }

    /// Resolves a tenant name to its table id under this session's
    /// tenancy configuration. `None` in, `None` out (untenanted
    /// submissions later map to the built-in `default` tenant).
    ///
    /// # Errors
    /// [`CoreError::UnknownTenant`] when the name is absent from the
    /// table, or when a name is given but tenancy is off.
    pub fn resolve_tenant(&self, name: Option<&str>) -> Result<Option<TenantId>> {
        match (name, &self.tenants) {
            (None, _) => Ok(None),
            (Some(n), Some(ts)) => match ts.table.lookup(n) {
                Some(id) => Ok(Some(id)),
                None => Err(CoreError::UnknownTenant {
                    name: n.to_string(),
                }),
            },
            (Some(n), None) => Err(CoreError::UnknownTenant {
                name: n.to_string(),
            }),
        }
    }

    /// [`SimSession::submit_with_walltime`] with an explicit owning
    /// tenant (from [`SimSession::resolve_tenant`]). `None` assigns the
    /// built-in `default` tenant when tenancy is enabled.
    ///
    /// # Errors
    /// Same contract as [`SimSession::submit_with_walltime`], plus
    /// [`CoreError::UnknownTenant`] for an out-of-table id and
    /// [`CoreError::QuotaExceeded`] when accepting the job would push
    /// its tenant past its outstanding-units quota.
    pub fn submit_with_tenant(
        &mut self,
        mut job: Job,
        tenant: Option<TenantId>,
        walltime: Option<Duration>,
    ) -> Result<()> {
        if !self.allow_duplicate_ids {
            if let Some(&prev) = self.by_id.get(&job.id) {
                if matches!(
                    self.state[prev],
                    JobState::Pending | JobState::Waiting | JobState::Running
                ) {
                    return Err(CoreError::DuplicateJob { job: job.id });
                }
            }
        }
        if job.submit < self.clock {
            return Err(CoreError::InvalidTime {
                job: job.id,
                what: "submission before current simulation time",
            });
        }
        if job.runtime < 0 {
            return Err(CoreError::InvalidTime {
                job: job.id,
                what: "negative runtime",
            });
        }
        let capacity = self.cluster.total_capacity();
        if job.procs == 0 || job.procs > capacity {
            return Err(CoreError::OversizedJob {
                job: job.id,
                requested: job.procs,
                capacity,
            });
        }
        let part = self.cluster.route(job.virtual_cluster, job.procs);
        let cap = self.cluster.partition(part).capacity;
        let procs_eff = job.procs.min(cap);
        // Resolve ownership and enforce the quota before mutating
        // anything, so a rejected submission leaves no trace behind.
        let owner = match (&self.tenants, tenant) {
            (None, None) => None,
            (None, Some(id)) => {
                return Err(CoreError::UnknownTenant {
                    name: format!("#{id}"),
                })
            }
            (Some(ts), t) => {
                let id = t.unwrap_or_else(|| ts.table.default_tenant());
                if usize::from(id) >= ts.table.len() {
                    return Err(CoreError::UnknownTenant {
                        name: format!("#{id}"),
                    });
                }
                ts.quota_check(id, procs_eff)?;
                Some(id)
            }
        };
        job.wait = None;

        let idx = self.jobs.len();
        let wall = match walltime {
            Some(w) => w.max(1),
            None => job.planning_walltime().max(1),
        };
        self.part_of.push(part);
        self.procs_eff.push(procs_eff);
        self.plan_wall.push(wall);
        self.key_of.push(self.config.policy.key_with(&job, wall));
        self.promised.push(None);
        self.state.push(JobState::Pending);
        self.by_id.entry(job.id).or_insert(idx);
        if let Some(ts) = &mut self.tenants {
            ts.on_submit(owner.expect("tenancy on implies an owner"), procs_eff);
        }

        let key = (job.submit, job.id);
        self.jobs.push(job);
        let jobs = &self.jobs;
        let pos = self
            .pending
            .partition_point(|&i| (jobs[i].submit, jobs[i].id) <= key);
        self.pending.insert(pos, idx);
        Ok(())
    }

    /// Cancels a submitted job that has not started. Returns `true` if the
    /// job was pending or waiting and is now cancelled; `false` if the id
    /// is unknown or the job already started, finished, or was cancelled.
    pub fn cancel(&mut self, id: u64) -> bool {
        let Some(&idx) = self.by_id.get(&id) else {
            return false;
        };
        let was = self.state[idx];
        match was {
            JobState::Pending => {
                let pos = self
                    .pending
                    .iter()
                    .position(|&i| i == idx)
                    .expect("pending job is in the pending queue");
                self.pending.remove(pos);
            }
            JobState::Waiting => {
                let part = self.part_of[idx];
                let waiting = &mut self.cluster.partition_mut(part).waiting;
                let pos = waiting
                    .iter()
                    .position(|&i| i == idx)
                    .expect("waiting job is in its partition queue");
                waiting.remove(pos);
                // The queue shrank mid-timeline; the head (and backfill
                // candidates) may now be startable without waiting for the
                // next arrival or completion.
                self.schedule(part, self.clock);
                self.record_state_point(self.clock);
            }
            JobState::Running | JobState::Finished | JobState::Cancelled => return false,
        }
        self.state[idx] = JobState::Cancelled;
        self.cancelled_count += 1;
        if let Some(ts) = &mut self.tenants {
            ts.on_cancel(idx, self.procs_eff[idx], was);
        }
        if self.record_events {
            self.events.push(SimEvent::Cancelled {
                id,
                time: self.clock,
            });
        }
        true
    }

    /// Lifecycle state of the job with `id` (first submission wins when ids
    /// collide). `None` for unknown ids.
    #[must_use]
    pub fn query(&self, id: u64) -> Option<JobState> {
        self.by_id.get(&id).map(|&idx| self.state[idx])
    }

    /// The job record for `id`, with its observed wait filled in once it
    /// has started.
    #[must_use]
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.by_id.get(&id).map(|&idx| &self.jobs[idx])
    }

    /// The walltime the scheduler plans with for job `id`: the estimate
    /// supplied at submission (predictor or operator override) when there
    /// was one, otherwise the job's own planning walltime. `None` for
    /// unknown ids.
    #[must_use]
    pub fn plan_walltime(&self, id: u64) -> Option<Duration> {
        self.by_id.get(&id).map(|&idx| self.plan_wall[idx])
    }

    /// The tenant table, when tenancy is enabled.
    #[must_use]
    pub fn tenant_table(&self) -> Option<&TenantTable> {
        self.tenants.as_ref().map(|ts| &ts.table)
    }

    /// Owning tenant of job `id` (first submission wins when ids
    /// collide). `None` for unknown ids or when tenancy is off.
    #[must_use]
    pub fn tenant_of(&self, id: u64) -> Option<TenantId> {
        let ts = self.tenants.as_ref()?;
        self.by_id.get(&id).map(|&idx| ts.tenant_of[idx])
    }

    /// Point-in-time per-tenant usage in table order, or `None` when
    /// tenancy is off. Summed `used_units` always equals the cluster's
    /// used units — every job is owned by exactly one tenant.
    #[must_use]
    pub fn tenant_usage(&self) -> Option<Vec<TenantUsage>> {
        self.tenants
            .as_ref()
            .map(|ts| ts.usage(self.cluster.total_capacity()))
    }

    /// Time of the next arrival or completion, if any work remains.
    #[must_use]
    pub fn next_event_time(&self) -> Option<Timestamp> {
        let t_arr = self.pending.front().map(|&i| self.jobs[i].submit);
        let t_fin = self.finish_heap.peek().map(|Reverse((t, _))| *t);
        match (t_arr, t_fin) {
            (Some(a), Some(f)) => Some(a.min(f)),
            (Some(a), None) => Some(a),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        }
    }

    /// Advances simulation time to `t`, processing every arrival and
    /// completion at times `<= t` in event order. Monotone: a target in the
    /// past is a no-op.
    pub fn advance_to(&mut self, t: Timestamp) {
        while let Some(te) = self.next_event_time() {
            if te > t {
                break;
            }
            self.step(te);
        }
        self.clock = self.clock.max(t);
    }

    /// Runs until no arrivals or completions remain.
    pub fn advance_to_completion(&mut self) {
        while let Some(te) = self.next_event_time() {
            self.step(te);
        }
    }

    /// Returns and clears the event log accumulated since the last drain.
    pub fn drain_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Point-in-time counters for monitoring.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        let capacity = self.cluster.total_capacity();
        let used = self.cluster.used();
        SessionSnapshot {
            now: self.clock,
            submitted: self.jobs.len(),
            pending: self.pending.len(),
            waiting: self.cluster.queue_len(),
            running: self.finish_heap.len(),
            finished: self.finished_count,
            cancelled: self.cancelled_count,
            used_units: used,
            capacity,
            utilization: if capacity == 0 {
                0.0
            } else {
                used as f64 / capacity as f64
            },
        }
    }

    /// Captures the session's complete scheduling state for durable
    /// storage. See [`SessionState`] for what is stored versus re-derived;
    /// [`SimSession::restore`] is the inverse.
    #[must_use]
    pub fn save_state(&self) -> SessionState {
        SessionState {
            config: self.config,
            clock: self.clock,
            jobs: self.jobs.clone(),
            states: self.state.clone(),
            plan_wall: self.plan_wall.clone(),
            promised: self.promised.clone(),
            violations: self.violations.clone(),
            timeline: self.timeline.clone(),
            max_queue: self.max_queue.clone(),
            max_queue_total: self.max_queue_total,
            events: self.events.clone(),
            record_events: self.record_events,
            tenants: self.tenants.as_ref().map(|ts| ts.table.clone()),
            tenant_of: self.tenants.as_ref().map(|ts| ts.tenant_of.clone()),
        }
    }

    /// Rebuilds a session from a previously saved [`SessionState`].
    ///
    /// `system` must be the spec the state was saved under — partition
    /// geometry is derived from it, and the restored session continues
    /// exactly where the saved one stopped: identical future schedules for
    /// identical future inputs, and `restore(save_state())` round-trips.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidSnapshot`] when the state is internally
    /// inconsistent: mismatched table lengths, started jobs without a
    /// recorded wait (or unstarted jobs with one), or running jobs that
    /// overcommit a partition.
    pub fn restore(system: &SystemSpec, state: SessionState) -> Result<Self> {
        let SessionState {
            config,
            clock,
            jobs,
            states,
            plan_wall,
            promised,
            violations,
            timeline,
            max_queue,
            max_queue_total,
            events,
            record_events,
            tenants,
            tenant_of,
        } = state;
        let mut s = Self::new(system, config);
        let n = jobs.len();
        if states.len() != n || plan_wall.len() != n || promised.len() != n {
            return Err(CoreError::InvalidSnapshot(format!(
                "table lengths disagree: {n} jobs, {} states, {} walltimes, {} promises",
                states.len(),
                plan_wall.len(),
                promised.len()
            )));
        }
        let parts = s.cluster.partition_count();
        if max_queue.len() != parts {
            return Err(CoreError::InvalidSnapshot(format!(
                "max_queue covers {} partitions, the system has {parts}",
                max_queue.len()
            )));
        }
        let mut pending: Vec<usize> = Vec::new();
        let mut waiting: Vec<Vec<usize>> = vec![Vec::new(); parts];
        let mut running: Vec<Vec<RunningJob>> = vec![Vec::new(); parts];
        for (idx, job) in jobs.iter().enumerate() {
            let part = s.cluster.route(job.virtual_cluster, job.procs);
            let cap = s.cluster.partition(part).capacity;
            let wall = plan_wall[idx];
            s.part_of.push(part);
            s.procs_eff.push(job.procs.min(cap));
            s.key_of.push(s.config.policy.key_with(job, wall));
            s.by_id.entry(job.id).or_insert(idx);
            match states[idx] {
                JobState::Pending | JobState::Waiting => {
                    if job.wait.is_some() {
                        return Err(CoreError::InvalidSnapshot(format!(
                            "job {} is {:?} but already has a wait",
                            job.id, states[idx]
                        )));
                    }
                    if states[idx] == JobState::Pending {
                        pending.push(idx);
                    } else {
                        waiting[part].push(idx);
                    }
                }
                JobState::Running | JobState::Finished => {
                    let Some(wait) = job.wait else {
                        return Err(CoreError::InvalidSnapshot(format!(
                            "job {} is {:?} but has no recorded wait",
                            job.id, states[idx]
                        )));
                    };
                    if states[idx] == JobState::Running {
                        let start = job.submit + wait;
                        running[part].push(RunningJob {
                            idx,
                            procs: job.procs.min(cap),
                            end_estimate: start + wall,
                            finish: start + job.runtime,
                        });
                    } else {
                        s.finished_count += 1;
                    }
                }
                JobState::Cancelled => s.cancelled_count += 1,
            }
        }
        s.jobs = jobs;
        s.plan_wall = plan_wall;
        s.promised = promised;
        s.state = states;
        s.tenants = match (tenants, tenant_of) {
            (None, None) => None,
            (Some(table), Some(owners)) => {
                let runtimes: Vec<Duration> = s.jobs.iter().map(|j| j.runtime).collect();
                let ts = TenantState::rebuild(table, owners, &s.state, &s.procs_eff, &runtimes)
                    .map_err(CoreError::InvalidSnapshot)?;
                Some(ts)
            }
            _ => {
                return Err(CoreError::InvalidSnapshot(
                    "tenant table and tenant_of must be saved together".into(),
                ))
            }
        };
        pending.sort_unstable_by_key(|&i| (s.jobs[i].submit, s.jobs[i].id));
        s.pending = pending.into();
        for (part, mut queue) in waiting.into_iter().enumerate() {
            let jobs = &s.jobs;
            let key_of = &s.key_of;
            queue.sort_unstable_by(|&a, &b| {
                (key_of[a], jobs[a].submit, jobs[a].id)
                    .partial_cmp(&(key_of[b], jobs[b].submit, jobs[b].id))
                    .expect("policy keys are finite")
            });
            s.cluster.partition_mut(part).waiting = queue;
        }
        for (part, mut run) in running.into_iter().enumerate() {
            run.sort_unstable_by_key(|r| (r.end_estimate, r.idx));
            for r in run {
                let p = s.cluster.partition_mut(part);
                if r.procs > p.free {
                    return Err(CoreError::InvalidSnapshot(format!(
                        "partition {part} overcommitted: job {} holds {} units with {} free",
                        s.jobs[r.idx].id, r.procs, p.free
                    )));
                }
                // Re-anchoring the reservation at the restored clock keeps
                // exactly the future part `[clock, end_estimate)`; the
                // consumed prefix is history the skyline never queries.
                p.start(r, clock);
                s.finish_heap.push(Reverse((r.finish, r.idx)));
            }
        }
        s.violations = violations;
        s.timeline = timeline;
        s.max_queue = max_queue;
        s.max_queue_total = max_queue_total;
        s.clock = clock;
        s.events = events;
        s.record_events = record_events;
        Ok(s)
    }

    /// Discrete events (arrivals + completions) processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Finishes all outstanding work and folds the session into a
    /// [`SimResult`]. Cancelled jobs are excluded from the metrics.
    ///
    /// # Panics
    /// Panics if no job ever ran (metrics need at least one).
    #[must_use]
    pub fn into_result(mut self) -> SimResult {
        self.advance_to_completion();
        let capacity = self.cluster.total_capacity();
        let jobs: Vec<Job> = if self.cancelled_count > 0 {
            self.jobs
                .iter()
                .zip(&self.state)
                .filter(|&(_, &s)| s != JobState::Cancelled)
                .map(|(j, _)| j.clone())
                .collect()
        } else {
            self.jobs
        };
        debug_assert!(jobs.iter().all(|j| j.wait.is_some()));
        let metrics =
            SimMetrics::compute(&jobs, capacity, self.config.bsld_bound, &self.violations);
        SimResult {
            metrics,
            events: self.events_processed,
            timeline: UtilizationTimeline {
                capacity,
                points: self.timeline,
            },
            max_queue_len: self.max_queue_total,
            jobs,
        }
    }

    /// Asserts that every partition's incrementally maintained skyline is
    /// point-for-point identical to a from-scratch rebuild from the
    /// running set — the invariant the whole incremental-profile refactor
    /// rests on. Test hook for the differential property suite; panics
    /// with context on divergence.
    #[doc(hidden)]
    pub fn assert_profiles_match_rebuild(&self) {
        let now = self.clock;
        for part in 0..self.cluster.partition_count() {
            let p = self.cluster.partition(part);
            // Pass view of the maintained skyline: prune history, overlay
            // overrunning jobs on [now, now+1) — what a scheduling pass at
            // `now` would query.
            let mut sky = p.skyline().clone();
            sky.prune_to(now);
            let overrun: u64 = p
                .running()
                .iter()
                .take_while(|r| r.end_estimate <= now)
                .map(|r| r.procs)
                .sum();
            sky.reserve(now, now + 1, overrun);
            let rebuilt = CapacityProfile::from_sorted_running(
                now,
                p.capacity,
                p.running()
                    .iter()
                    .map(|r| (r.end_estimate.max(now + 1), r.procs)),
            );
            assert_eq!(
                sky.points(),
                rebuilt.points(),
                "partition {part}: incremental skyline diverged from rebuild at t={now}"
            );
        }
    }

    // ---- event loop ---------------------------------------------------

    /// Processes every event at time `now` (the next event time): all
    /// completions, then all arrivals, then one scheduling pass per touched
    /// partition.
    fn step(&mut self, now: Timestamp) {
        self.clock = self.clock.max(now);
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.clear();
        // 1. Completions at `now`.
        while let Some(&Reverse((t, idx))) = self.finish_heap.peek() {
            if t > now {
                break;
            }
            self.finish_heap.pop();
            self.events_processed += 1;
            let part = self.part_of[idx];
            self.cluster.partition_mut(part).finish(idx, now);
            self.state[idx] = JobState::Finished;
            self.finished_count += 1;
            if let Some(ts) = &mut self.tenants {
                ts.on_finish(idx, self.procs_eff[idx]);
            }
            if self.record_events {
                self.events.push(SimEvent::Finished {
                    id: self.jobs[idx].id,
                    time: now,
                });
            }
            if !dirty.contains(&part) {
                dirty.push(part);
            }
        }
        // 2. Arrivals at `now`.
        while let Some(&idx) = self.pending.front() {
            if self.jobs[idx].submit > now {
                break;
            }
            self.pending.pop_front();
            self.events_processed += 1;
            let part = self.part_of[idx];
            self.state[idx] = JobState::Waiting;
            if let Some(ts) = &mut self.tenants {
                ts.on_arrive(idx);
            }
            self.enqueue(part, idx);
            if !dirty.contains(&part) {
                dirty.push(part);
            }
        }
        // 3. Scheduling passes.
        dirty.sort_unstable();
        for &part in &dirty {
            self.schedule(part, now);
        }
        self.dirty = dirty;
        self.record_state_point(now);
    }

    /// Queue-depth and timeline bookkeeping after a state change at `now`.
    fn record_state_point(&mut self, now: Timestamp) {
        self.max_queue_total = self.max_queue_total.max(self.cluster.queue_len());
        if self.config.record_timeline {
            let used = self.cluster.used();
            if self.timeline.last().map(|&(_, u)| u) != Some(used) {
                self.timeline.push((now, used));
            } else if let Some(last) = self.timeline.last_mut() {
                last.0 = last.0.max(now);
            }
        }
    }

    /// Inserts `idx` into its partition's priority-sorted waiting list.
    fn enqueue(&mut self, part: usize, idx: usize) {
        let key = (self.key_of[idx], self.jobs[idx].submit, self.jobs[idx].id);
        let jobs = &self.jobs;
        let key_of = &self.key_of;
        let waiting = &mut self.cluster.partition_mut(part).waiting;
        let pos = waiting
            .partition_point(|&other| (key_of[other], jobs[other].submit, jobs[other].id) <= key);
        waiting.insert(pos, idx);
    }

    /// Starts job `idx` at `now` on `part` (must fit).
    fn start(&mut self, part: usize, idx: usize, now: Timestamp) {
        let job = &mut self.jobs[idx];
        debug_assert!(job.wait.is_none(), "job started twice");
        job.wait = Some(now - job.submit);
        let running = RunningJob {
            idx,
            procs: self.procs_eff[idx],
            end_estimate: now + self.plan_wall[idx],
            finish: now + job.runtime,
        };
        self.state[idx] = JobState::Running;
        if let Some(ts) = &mut self.tenants {
            ts.on_start(idx, self.procs_eff[idx], self.jobs[idx].runtime);
        }
        self.cluster.partition_mut(part).start(running, now);
        self.finish_heap.push(Reverse((running.finish, idx)));
        if let Some(promise) = self.promised[idx] {
            self.violations.push((promise, now));
        }
        if self.record_events {
            let job = &self.jobs[idx];
            self.events.push(SimEvent::Started {
                id: job.id,
                time: now,
                wait: now - job.submit,
            });
        }
    }

    /// Re-sorts a partition's waiting queue by live tenant share under
    /// fair-share policies; a no-op otherwise (static-key order from
    /// [`SimSession::enqueue`] is already correct). Shares move whenever
    /// a job starts or finishes, so every scheduling decision re-derives
    /// the order: `(share, key, submit, id, index)` — the static key and
    /// tie-breaks keep the ordering total and deterministic.
    fn fair_resort(&mut self, part: usize) {
        if !self.config.policy.is_fair_share() {
            return;
        }
        let Some(ts) = &self.tenants else {
            // Without a tenant table every job shares one implicit
            // tenant, so fair-share degrades to the static FCFS key —
            // the order the queue is already in.
            return;
        };
        let shares = ts.shares(
            self.cluster.total_capacity(),
            self.config.policy.is_weighted(),
        );
        let jobs = &self.jobs;
        let key_of = &self.key_of;
        let tenant_of = &ts.tenant_of;
        let waiting = &mut self.cluster.partition_mut(part).waiting;
        waiting.sort_unstable_by(|&a, &b| {
            let ka = (
                shares[usize::from(tenant_of[a])],
                key_of[a],
                jobs[a].submit,
                jobs[a].id,
                a,
            );
            let kb = (
                shares[usize::from(tenant_of[b])],
                key_of[b],
                jobs[b].submit,
                jobs[b].id,
                b,
            );
            ka.partial_cmp(&kb).expect("shares and keys are finite")
        });
    }

    /// Starts jobs from the head of the queue while the head fits,
    /// re-deriving fair-share order before each decision (each start
    /// moves the shares, which may change who the head *is*).
    fn start_head_while_fits(&mut self, part: usize, now: Timestamp) {
        loop {
            self.fair_resort(part);
            let p = self.cluster.partition(part);
            match p.waiting.first() {
                Some(&head) if self.procs_eff[head] <= p.free => {
                    self.cluster.partition_mut(part).waiting.remove(0);
                    self.start(part, head, now);
                }
                _ => break,
            }
        }
    }

    /// One scheduling pass on a partition.
    fn schedule(&mut self, part: usize, now: Timestamp) {
        // Drop skyline breakpoints the clock has passed — amortized O(1)
        // per event, and what keeps every later skyline operation
        // logarithmic in the number of *future* end estimates.
        self.cluster.partition_mut(part).skyline_mut().prune_to(now);
        // Start from the head while it fits.
        self.start_head_while_fits(part, now);
        let qlen = self.cluster.partition(part).waiting.len();
        if qlen == 0 {
            return;
        }
        self.max_queue[part] = self.max_queue[part].max(qlen);
        // Nothing can start while zero units are free — neither the head
        // nor any backfill candidate — so skip the backfill pass entirely.
        // On saturated systems this short-circuits the majority of arrival
        // events.
        if self.cluster.partition(part).free == 0 {
            return;
        }
        if self.config.backfill == Backfill::None {
            return;
        }
        // Jobs running past their walltime estimate have already had their
        // skyline reservation expire, but they still hold units *right
        // now*. Overlay them on `[now, now+1)` for the duration of this
        // pass — exactly the `end_estimate.max(now + 1)` clamp the
        // from-scratch rebuild applied. The running set is end-sorted, so
        // the overrun jobs are a prefix.
        let overrun: u64 = {
            let p = self.cluster.partition(part);
            p.running()
                .iter()
                .take_while(|r| r.end_estimate <= now)
                .map(|r| r.procs)
                .sum()
        };
        let p = self.cluster.partition_mut(part);
        p.skyline_mut().reserve(now, now + 1, overrun);
        debug_assert_eq!(
            p.skyline().free_at(now),
            p.free,
            "skyline out of sync with unit accounting"
        );
        match self.config.backfill {
            Backfill::None => unreachable!("handled above"),
            Backfill::Easy => self.schedule_easy(part, now),
            Backfill::Conservative => self.schedule_conservative(part, now),
        }
        self.cluster
            .partition_mut(part)
            .skyline_mut()
            .unreserve(now, now + 1, overrun);
    }

    /// EASY backfilling with (possibly relaxed) head reservation.
    fn schedule_easy(&mut self, part: usize, now: Timestamp) {
        loop {
            let (head, shadow, extra) = {
                let p = self.cluster.partition(part);
                let head = p.waiting[0];
                // The maintained skyline (pruned + overrun-overlaid by
                // `schedule`) is monotone, so the shadow query is one
                // binary search instead of an O(running) rebuild + scan.
                let shadow = p
                    .skyline()
                    .earliest_forever(now, self.procs_eff[head])
                    .expect("procs_eff ≤ partition capacity");
                let extra = p
                    .skyline()
                    .free_at(shadow)
                    .saturating_sub(self.procs_eff[head]);
                (head, shadow, extra)
            };
            // The allowance is measured against the head's *original*
            // promise, not the recomputed shadow: a relaxed backfill pushes
            // the shadow later, and re-deriving the allowance from that
            // delayed shadow would let every subsequent round relax further
            // — unbounded cumulative delay instead of Eq. 1's
            // `factor × expected wait` budget.
            let promise = match self.promised[head] {
                Some(p) => p,
                None => {
                    self.promised[head] = Some(shadow);
                    shadow
                }
            };
            let qlen = self.cluster.partition(part).waiting.len();
            let allowance = self.config.relax.allowance(
                promise - self.jobs[head].submit,
                qlen,
                self.max_queue[part],
            );

            // Scan backfill candidates in priority order.
            let mut extra_remaining = extra;
            let mut started_any = false;
            let mut i = 1usize;
            loop {
                let p = self.cluster.partition(part);
                if i >= p.waiting.len() {
                    break;
                }
                let cand = p.waiting[i];
                let procs = self.procs_eff[cand];
                if procs <= p.free {
                    let end = now + self.plan_wall[cand];
                    let harmless = end <= shadow;
                    let in_extra = procs <= extra_remaining;
                    // Gated on a positive allowance so a zero-allowance
                    // relaxation degenerates to strict EASY even when early
                    // completions pulled the shadow before the promise.
                    let in_allowance = allowance > 0 && end <= promise + allowance;
                    if harmless || in_extra || in_allowance {
                        if !harmless && in_extra {
                            extra_remaining -= procs;
                        }
                        self.cluster.partition_mut(part).waiting.remove(i);
                        self.start(part, cand, now);
                        started_any = true;
                        continue; // same i now points at the next candidate
                    }
                }
                i += 1;
            }
            if !started_any {
                break;
            }
            // Free capacity changed; head might have become startable via
            // cascaded completions elsewhere — re-run the head loop.
            self.start_head_while_fits(part, now);
            if self.cluster.partition(part).waiting.is_empty() {
                break;
            }
        }
    }

    /// Conservative backfilling: every queued job gets a planned slot in a
    /// shared capacity profile; whoever's slot is "now" starts.
    fn schedule_conservative(&mut self, part: usize, now: Timestamp) {
        // Conservative carves per-candidate reservations that must not
        // outlive this pass, so it copy-assigns the maintained skyline
        // into the session's scratch profile — a memcpy into one
        // long-lived breakpoint allocation, not a fresh clone (and not an
        // O(running) rebuild).
        let waiting = {
            let p = self.cluster.partition(part);
            self.scratch_profile.clone_from(p.skyline());
            p.waiting.clone()
        };
        let profile = &mut self.scratch_profile;
        let mut to_start = Vec::new();
        for &idx in &waiting {
            let procs = self.procs_eff[idx];
            let wall = self.plan_wall[idx];
            let s = profile
                .earliest_fit(now, procs, wall)
                .expect("procs_eff ≤ partition capacity");
            profile.reserve(s, s + wall, procs);
            if self.promised[idx].is_none() {
                self.promised[idx] = Some(s);
            }
            if s == now {
                to_start.push(idx);
            }
        }
        for idx in to_start {
            let p = self.cluster.partition_mut(part);
            let pos = p
                .waiting
                .iter()
                .position(|&w| w == idx)
                .expect("job is waiting");
            p.waiting.remove(pos);
            self.start(part, idx, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use lumos_core::{JobStatus, Trace};

    fn tiny() -> SystemSpec {
        let mut s = SystemSpec::theta();
        s.name = "tiny".into();
        s.total_nodes = 100;
        s.units_per_node = 1;
        s.total_units = 100;
        s
    }

    fn job(id: u64, submit: i64, runtime: i64, procs: u64, walltime: i64) -> Job {
        Job {
            id,
            user: 1,
            submit,
            wait: None,
            runtime,
            walltime: Some(walltime),
            procs,
            nodes: procs as u32,
            status: JobStatus::Passed,
            virtual_cluster: None,
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| {
                job(
                    i,
                    i64::from(i as u32) * 5,
                    40 + (i % 5) as i64 * 30,
                    1 + (i % 20),
                    150,
                )
            })
            .collect();
        let trace = Trace::new(tiny(), jobs.clone()).unwrap();
        let config = SimConfig::default();
        let batch = simulate(&trace, &config);

        // Submit in bursts, advancing between them.
        let mut s = SimSession::new(&tiny(), config);
        for chunk in jobs.chunks(10) {
            for j in chunk {
                s.submit(j.clone()).unwrap();
            }
            let t = chunk.last().unwrap().submit;
            s.advance_to(t);
        }
        let online = s.into_result();
        assert_eq!(online.metrics, batch.metrics);
        assert_eq!(online.timeline, batch.timeline);
        assert_eq!(online.max_queue_len, batch.max_queue_len);
        let wb: Vec<_> = batch.jobs.iter().map(|j| (j.id, j.wait)).collect();
        let wo: Vec<_> = online.jobs.iter().map(|j| (j.id, j.wait)).collect();
        assert_eq!(wb, wo);
    }

    #[test]
    fn events_report_lifecycle() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 10, 50, 10)).unwrap();
        s.submit(job(2, 0, 20, 60, 20)).unwrap();
        s.advance_to(0);
        let events = s.drain_events();
        // Job 1 starts immediately; job 2 (60 units) waits behind it.
        assert!(events.contains(&SimEvent::Started {
            id: 1,
            time: 0,
            wait: 0
        }));
        assert_eq!(s.query(1), Some(JobState::Running));
        assert_eq!(s.query(2), Some(JobState::Waiting));
        s.advance_to(100);
        let events = s.drain_events();
        assert!(events.contains(&SimEvent::Finished { id: 1, time: 10 }));
        assert!(events.contains(&SimEvent::Started {
            id: 2,
            time: 10,
            wait: 10
        }));
        assert!(events.contains(&SimEvent::Finished { id: 2, time: 30 }));
        assert_eq!(s.query(2), Some(JobState::Finished));
        assert_eq!(s.drain_events(), vec![], "drain clears the log");
    }

    #[test]
    fn snapshot_counts_are_consistent() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 100, 70, 100)).unwrap();
        s.submit(job(2, 0, 100, 70, 100)).unwrap();
        s.submit(job(3, 50, 100, 10, 100)).unwrap();
        s.advance_to(10);
        let snap = s.snapshot();
        assert_eq!(snap.now, 10);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.pending, 1, "job 3 arrives at t=50");
        assert_eq!(snap.running, 1);
        assert_eq!(snap.waiting, 1);
        assert_eq!(snap.used_units, 70);
        assert!((snap.utilization - 0.7).abs() < 1e-12);
    }

    #[test]
    fn submit_in_the_past_is_rejected() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 10, 1, 10)).unwrap();
        s.advance_to(100);
        let err = s.submit(job(2, 50, 10, 1, 10)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTime { job: 2, .. }));
        // At exactly `now` is fine.
        s.submit(job(3, 100, 10, 1, 10)).unwrap();
    }

    #[test]
    fn oversized_and_zero_requests_are_rejected() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        assert!(matches!(
            s.submit(job(1, 0, 10, 0, 10)).unwrap_err(),
            CoreError::OversizedJob { .. }
        ));
        assert!(matches!(
            s.submit(job(1, 0, 10, 101, 10)).unwrap_err(),
            CoreError::OversizedJob { .. }
        ));
    }

    #[test]
    fn cancel_waiting_job_frees_the_queue() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 100, 100, 100)).unwrap();
        s.submit(job(2, 1, 100, 100, 100)).unwrap();
        s.submit(job(3, 2, 100, 100, 100)).unwrap();
        s.advance_to(5);
        assert_eq!(s.query(2), Some(JobState::Waiting));
        assert!(s.cancel(2), "waiting job cancels");
        assert!(!s.cancel(2), "second cancel is a no-op");
        assert!(!s.cancel(1), "running job cannot cancel");
        assert!(!s.cancel(99), "unknown id");
        let r = s.into_result();
        // Job 3 moves up: starts when job 1 ends at t=100.
        let j3 = r.jobs.iter().find(|j| j.id == 3).unwrap();
        assert_eq!(j3.wait, Some(98));
        assert_eq!(r.metrics.jobs, 2, "cancelled job excluded from metrics");
    }

    #[test]
    fn cancel_pending_job_never_arrives() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 10, 1, 10)).unwrap();
        s.submit(job(2, 1_000, 10, 1, 10)).unwrap();
        s.advance_to(0);
        assert!(s.cancel(2));
        assert_eq!(s.query(2), Some(JobState::Cancelled));
        assert_eq!(s.next_event_time(), Some(10), "only job 1's completion");
    }

    #[test]
    fn cancelling_queue_head_triggers_reschedule() {
        // Job 1 occupies 90; job 2 (head, 100 units) blocks job 3 (10 units,
        // too long to backfill). Cancelling job 2 must start job 3 at once.
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 100, 90, 100)).unwrap();
        s.submit(job(2, 1, 100, 100, 100)).unwrap();
        s.submit(job(3, 2, 200, 10, 200)).unwrap();
        s.advance_to(10);
        assert_eq!(s.query(3), Some(JobState::Waiting));
        assert!(s.cancel(2));
        assert_eq!(s.query(3), Some(JobState::Running));
        assert_eq!(s.job(3).unwrap().wait, Some(8));
    }

    /// Jobs with every lifecycle state represented: finished, running,
    /// waiting, pending, cancelled — frozen mid-flight at `t`.
    fn mid_flight_session() -> SimSession {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 10, 30, 10)).unwrap(); // finishes at 10
        s.submit(job(2, 0, 100, 60, 100)).unwrap(); // running at t=20
        s.submit(job(3, 5, 100, 80, 100)).unwrap(); // waiting (won't fit)
        s.submit(job(4, 6, 50, 90, 50)).unwrap(); // waiting behind 3
        s.submit(job(5, 500, 10, 1, 10)).unwrap(); // pending
        s.submit(job(6, 7, 10, 95, 10)).unwrap(); // cancelled below
        s.advance_to(20);
        assert!(s.cancel(6));
        s
    }

    #[test]
    fn save_restore_round_trips() {
        let s = mid_flight_session();
        let state = s.save_state();
        let restored = SimSession::restore(&tiny(), state.clone()).unwrap();
        assert_eq!(
            restored.save_state(),
            state,
            "save ∘ restore ∘ save is identity"
        );
        assert_eq!(restored.now(), s.now());
        assert_eq!(restored.snapshot(), s.snapshot());
        assert_eq!(restored.next_event_time(), s.next_event_time());
    }

    #[test]
    fn state_survives_json() {
        let state = mid_flight_session().save_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: SessionState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn restored_session_continues_identically() {
        let mut original = mid_flight_session();
        let mut restored = SimSession::restore(&tiny(), original.save_state()).unwrap();
        // Drive both forward with the same inputs; schedules must agree.
        for s in [&mut original, &mut restored] {
            s.submit(job(7, 25, 40, 20, 40)).unwrap();
            s.advance_to(60);
            assert!(s.cancel(5));
        }
        assert_eq!(original.drain_events(), restored.drain_events());
        let (a, b) = (original.into_result(), restored.into_result());
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.max_queue_len, b.max_queue_len);
        let wa: Vec<_> = a.jobs.iter().map(|j| (j.id, j.wait)).collect();
        let wb: Vec<_> = b.jobs.iter().map(|j| (j.id, j.wait)).collect();
        assert_eq!(wa, wb);
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let good = mid_flight_session().save_state();

        let mut truncated = good.clone();
        truncated.states.pop();
        assert!(matches!(
            SimSession::restore(&tiny(), truncated).unwrap_err(),
            CoreError::InvalidSnapshot(_)
        ));

        let mut wrong_parts = good.clone();
        wrong_parts.max_queue.push(0);
        assert!(matches!(
            SimSession::restore(&tiny(), wrong_parts).unwrap_err(),
            CoreError::InvalidSnapshot(_)
        ));

        let mut waitless = good.clone();
        let running = waitless
            .states
            .iter()
            .position(|&st| st == JobState::Running)
            .unwrap();
        waitless.jobs[running].wait = None;
        assert!(matches!(
            SimSession::restore(&tiny(), waitless).unwrap_err(),
            CoreError::InvalidSnapshot(_)
        ));

        let mut overcommitted = good;
        for (j, st) in overcommitted.jobs.iter_mut().zip(&overcommitted.states) {
            if *st == JobState::Running {
                j.procs = 100; // partition capacity; two runners cannot fit
            }
        }
        overcommitted.jobs.push(job(99, 0, 100, 100, 100));
        overcommitted.jobs.last_mut().unwrap().wait = Some(0);
        overcommitted.states.push(JobState::Running);
        overcommitted.plan_wall.push(100);
        overcommitted.promised.push(None);
        assert!(matches!(
            SimSession::restore(&tiny(), overcommitted).unwrap_err(),
            CoreError::InvalidSnapshot(_)
        ));
    }

    #[test]
    fn advance_is_monotone() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 10, 1, 10)).unwrap();
        s.advance_to(100);
        assert_eq!(s.now(), 100);
        s.advance_to(50); // no-op
        assert_eq!(s.now(), 100);
    }

    #[test]
    fn live_duplicate_ids_are_rejected() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 10, 50, 100, 50)).unwrap();
        // Pending duplicate.
        assert!(matches!(
            s.submit(job(1, 10, 10, 1, 10)).unwrap_err(),
            CoreError::DuplicateJob { job: 1 }
        ));
        s.advance_to(10);
        assert_eq!(s.query(1), Some(JobState::Running));
        // Running duplicate.
        assert!(matches!(
            s.submit(job(1, 20, 10, 1, 10)).unwrap_err(),
            CoreError::DuplicateJob { job: 1 }
        ));
        s.submit(job(2, 20, 10, 100, 10)).unwrap();
        s.advance_to(20);
        assert_eq!(s.query(2), Some(JobState::Waiting));
        // Waiting duplicate.
        assert!(matches!(
            s.submit(job(2, 25, 10, 1, 10)).unwrap_err(),
            CoreError::DuplicateJob { job: 2 }
        ));
        // The rejected submissions left no trace behind.
        assert_eq!(s.snapshot().submitted, 2);
    }

    #[test]
    fn finished_ids_may_be_reused_but_first_wins() {
        let mut s = SimSession::new(&tiny(), SimConfig::default());
        s.submit(job(1, 0, 10, 1, 10)).unwrap();
        s.advance_to(50);
        assert_eq!(s.query(1), Some(JobState::Finished));
        // Reuse after completion is accepted; `query` keeps resolving to
        // the first submission.
        s.submit(job(1, 60, 10, 1, 10)).unwrap();
        assert_eq!(s.query(1), Some(JobState::Finished));
        s.advance_to(100);
        assert_eq!(s.snapshot().finished, 2, "the reused id still ran");
    }
}
