//! Queue-ordering policies.
//!
//! A policy assigns each waiting job a priority key; the scheduler keeps
//! the waiting queue sorted ascending by `(key, submit, id)` and always
//! tries to start the head first (paper §II.C lists FCFS and SJF as the
//! canonical strategies; SAF and LJF are common baselines in the SchedGym
//! line of work).

use lumos_core::Job;
use serde::{Deserialize, Serialize};

/// Queue-ordering strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Policy {
    /// First-Come-First-Serve: order by submit time.
    #[default]
    Fcfs,
    /// Shortest-Job-First: order by requested walltime.
    Sjf,
    /// Longest-Job-First: reverse SJF (a deliberately bad baseline).
    Ljf,
    /// Smallest-Area-First: order by `procs × walltime`.
    Saf,
    /// Smallest-Job-First: order by requested processors.
    Sqf,
    /// Max-min fair-share: order by the owning tenant's current usage
    /// share (running resource units over partition capacity), so the
    /// least-served tenant's jobs run first; FCFS order within a tenant.
    MaxMinFair,
    /// Weighted fair-share: max-min over *weight-normalized* shares, so a
    /// tenant with weight 2 is entitled to twice the machine of weight 1.
    WeightedFair,
}

impl Policy {
    /// All policies (for sweeps).
    pub const ALL: [Policy; 7] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Ljf,
        Policy::Saf,
        Policy::Sqf,
        Policy::MaxMinFair,
        Policy::WeightedFair,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Fcfs => "FCFS",
            Self::Sjf => "SJF",
            Self::Ljf => "LJF",
            Self::Saf => "SAF",
            Self::Sqf => "SQF",
            Self::MaxMinFair => "MaxMin",
            Self::WeightedFair => "WFair",
        }
    }

    /// Whether this policy orders by live tenant usage share. Fair-share
    /// queues are re-sorted at every scheduling pass (shares move as jobs
    /// start and finish) instead of relying on the static insertion key.
    #[must_use]
    pub fn is_fair_share(self) -> bool {
        matches!(self, Self::MaxMinFair | Self::WeightedFair)
    }

    /// Whether fair-share ordering divides each tenant's share by its
    /// configured weight.
    #[must_use]
    pub fn is_weighted(self) -> bool {
        matches!(self, Self::WeightedFair)
    }

    /// Priority key; smaller runs earlier. Ties are broken by
    /// `(submit, id)` in the scheduler, making every ordering total and
    /// deterministic.
    #[must_use]
    pub fn key(self, job: &Job) -> f64 {
        self.key_with(job, job.planning_walltime())
    }

    /// [`Self::key`] with an explicit planning walltime — used when a
    /// runtime predictor supplies the scheduler's estimates instead of the
    /// user (`simulate_with_walltimes`).
    #[must_use]
    pub fn key_with(self, job: &Job, walltime: lumos_core::Duration) -> f64 {
        match self {
            Self::Fcfs => job.submit as f64,
            Self::Sjf => walltime as f64,
            Self::Ljf => -(walltime as f64),
            Self::Saf => walltime as f64 * job.procs as f64,
            Self::Sqf => job.procs as f64,
            // Fair-share policies rank by live tenant share, which is not a
            // property of the job; the static key degrades to FCFS order so
            // ties between equally-served tenants stay arrival-ordered.
            Self::MaxMinFair | Self::WeightedFair => job.submit as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::Job;

    fn job(id: u64, submit: i64, runtime: i64, procs: u64, walltime: Option<i64>) -> Job {
        let mut j = Job::basic(id, 1, submit, runtime, procs);
        j.walltime = walltime;
        j
    }

    #[test]
    fn fcfs_orders_by_submit() {
        let a = job(1, 10, 100, 1, None);
        let b = job(2, 20, 1, 1, None);
        assert!(Policy::Fcfs.key(&a) < Policy::Fcfs.key(&b));
    }

    #[test]
    fn sjf_uses_walltime_falling_back_to_runtime() {
        let short = job(1, 0, 10, 1, Some(50));
        let long = job(2, 0, 5, 1, Some(500));
        assert!(Policy::Sjf.key(&short) < Policy::Sjf.key(&long));
        // Without walltime the actual runtime is the planning estimate.
        let no_wt = job(3, 0, 10, 1, None);
        assert_eq!(Policy::Sjf.key(&no_wt), 10.0);
    }

    #[test]
    fn ljf_is_reverse_of_sjf() {
        let short = job(1, 0, 10, 1, Some(50));
        let long = job(2, 0, 10, 1, Some(500));
        assert!(Policy::Ljf.key(&long) < Policy::Ljf.key(&short));
    }

    #[test]
    fn saf_multiplies_area() {
        let thin = job(1, 0, 100, 1, Some(100));
        let fat = job(2, 0, 10, 100, Some(10));
        assert!(Policy::Saf.key(&thin) < Policy::Saf.key(&fat));
    }

    #[test]
    fn sqf_orders_by_procs() {
        let small = job(1, 0, 1_000, 2, None);
        let big = job(2, 0, 1, 64, None);
        assert!(Policy::Sqf.key(&small) < Policy::Sqf.key(&big));
    }

    #[test]
    fn fair_share_static_keys_degrade_to_fcfs() {
        let early = job(1, 10, 500, 64, Some(900));
        let late = job(2, 20, 1, 1, Some(5));
        for p in [Policy::MaxMinFair, Policy::WeightedFair] {
            assert!(p.is_fair_share());
            assert!(p.key(&early) < p.key(&late));
        }
        assert!(Policy::WeightedFair.is_weighted());
        assert!(!Policy::MaxMinFair.is_weighted());
        assert!(!Policy::Fcfs.is_fair_share());
    }

    #[test]
    fn all_lists_every_policy_once() {
        assert_eq!(Policy::ALL.len(), 7);
        for (i, a) in Policy::ALL.iter().enumerate() {
            for b in &Policy::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
