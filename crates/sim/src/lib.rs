//! # lumos-sim
//!
//! Discrete-event cluster scheduling simulator — the Rust equivalent of the
//! SchedGym simulator the paper uses for its scheduling experiments (§II.C,
//! §VI.B).
//!
//! The model is the classic rigid-job one: a machine is a pool of
//! interchangeable resource units (cores or GPUs), optionally split into
//! isolated virtual clusters (Philly); each job needs `procs` units for
//! `runtime` seconds; the scheduler orders the waiting queue with a
//! [`Policy`], starts the head when it fits, and opportunistically
//! *backfills* later jobs under an EASY or conservative discipline, with
//! optional **relaxed** and **adaptive-relaxed** reservation handling
//! (paper §VI.B, Eq. 1).
//!
//! Entry points: [`simulate`], which replays a [`Trace`] and returns the
//! jobs with observed waits plus scheduling metrics (`util`, `wait`,
//! `bsld`, `violation`) and a utilization timeline (Fig. 3); and
//! [`SimSession`], the same engine driven incrementally (submit jobs one
//! at a time, advance virtual time explicitly) for online serving.
//!
//! [`Trace`]: lumos_core::Trace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backfill;
pub mod cluster;
pub mod metrics;
pub mod policy;
pub mod profile;
pub mod session;
pub mod simulator;
pub mod tenant;

pub use backfill::{Backfill, Relax};
pub use metrics::{SimMetrics, UtilizationTimeline};
pub use policy::Policy;
pub use session::{JobState, SessionSnapshot, SessionState, SimEvent, SimSession};
pub use simulator::{simulate, simulate_with_walltimes, SimConfig, SimResult};
pub use tenant::{TenantCounts, TenantId, TenantSpec, TenantTable, TenantUsage};
