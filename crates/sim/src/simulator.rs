//! Batch trace replay.
//!
//! [`simulate`] replays a whole trace through the incremental engine
//! ([`SimSession`]): every job is submitted up front and the session runs
//! to completion. Because both paths share one event loop, a batch replay
//! and an online session fed the same arrivals produce identical
//! schedules; see `crate::session` for the determinism contract.

use lumos_core::{Duration, Job, Trace};
use serde::{Deserialize, Serialize};

use crate::backfill::{Backfill, Relax};
use crate::metrics::{SimMetrics, UtilizationTimeline};
use crate::policy::Policy;
use crate::session::SimSession;

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Queue-ordering policy.
    pub policy: Policy,
    /// Backfilling discipline.
    pub backfill: Backfill,
    /// Reservation relaxation (EASY only).
    pub relax: Relax,
    /// Bounded-slowdown interactivity bound (paper: 10 s).
    pub bsld_bound: Duration,
    /// Honour the system's virtual-cluster partitioning (Philly).
    pub respect_virtual_clusters: bool,
    /// Record the utilization timeline (Fig. 3). Cheap; on by default.
    pub record_timeline: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            policy: Policy::Fcfs,
            backfill: Backfill::Easy,
            relax: Relax::Strict,
            bsld_bound: 10,
            respect_virtual_clusters: true,
            record_timeline: true,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The trace's jobs with observed waits filled in, submit-ordered.
    pub jobs: Vec<Job>,
    /// Aggregate scheduling metrics.
    pub metrics: SimMetrics,
    /// Used-units-over-time (empty if `record_timeline` was off).
    pub timeline: UtilizationTimeline,
    /// Largest waiting-queue length observed (summed over partitions).
    pub max_queue_len: usize,
    /// Discrete events the engine processed (arrivals + completions) —
    /// the denominator for events/sec throughput reporting.
    pub events: u64,
}

/// Replays `trace` under `config`.
///
/// # Panics
/// Panics on an empty trace (which `Trace::new` already prevents).
#[must_use]
pub fn simulate(trace: &Trace, config: &SimConfig) -> SimResult {
    replay(trace, config, None)
}

/// Replays `trace` with scheduler-side walltime estimates overriding the
/// user-supplied ones — the hook that puts a runtime *predictor* (paper
/// §VI.A: "schedulers may reversely predict job run time, which is helpful
/// in making effective scheduling decisions") into the backfilling loop.
/// `walltimes[i]` is the planning estimate for `trace.jobs()[i]`; values
/// are floored at 1 s. Jobs still run their true runtimes — only the
/// scheduler's plan changes.
///
/// # Panics
/// Panics if `walltimes.len() != trace.len()`.
#[must_use]
pub fn simulate_with_walltimes(
    trace: &Trace,
    config: &SimConfig,
    walltimes: &[Duration],
) -> SimResult {
    assert_eq!(
        walltimes.len(),
        trace.len(),
        "one walltime estimate per job"
    );
    replay(trace, config, Some(walltimes))
}

fn replay(trace: &Trace, config: &SimConfig, walltimes: Option<&[Duration]>) -> SimResult {
    let mut session = SimSession::new(&trace.system, *config);
    // Batch replays never drain the event log; don't accumulate one.
    session.record_events = false;
    // Historical traces are not guaranteed to have unique job ids (SWF
    // files occasionally reuse them). Batch replay keeps the legacy
    // first-wins rule — every job runs, id lookups resolve to the first
    // submission — while the incremental API rejects live duplicates.
    session.allow_duplicate_ids = true;
    for (i, job) in trace.jobs().iter().enumerate() {
        let wall = walltimes.map(|w| w[i]);
        session
            .submit_with_walltime(job.clone(), wall)
            .expect("trace jobs were validated by Trace::new");
    }
    session.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{JobStatus, SystemSpec};

    /// Tiny 100-unit test system.
    fn tiny() -> SystemSpec {
        let mut s = SystemSpec::theta();
        s.name = "tiny".into();
        s.total_nodes = 100;
        s.units_per_node = 1;
        s.total_units = 100;
        s
    }

    fn job(id: u64, submit: i64, runtime: i64, procs: u64, walltime: i64) -> Job {
        Job {
            id,
            user: 1,
            submit,
            wait: None,
            runtime,
            walltime: Some(walltime),
            procs,
            nodes: procs as u32,
            status: JobStatus::Passed,
            virtual_cluster: None,
        }
    }

    fn run(jobs: Vec<Job>, config: SimConfig) -> SimResult {
        let trace = Trace::new(tiny(), jobs).unwrap();
        simulate(&trace, &config)
    }

    fn wait_of(result: &SimResult, id: u64) -> i64 {
        result
            .jobs
            .iter()
            .find(|j| j.id == id)
            .and_then(|j| j.wait)
            .unwrap()
    }

    #[test]
    fn immediate_start_when_idle() {
        let r = run(vec![job(1, 0, 100, 50, 100)], SimConfig::default());
        assert_eq!(wait_of(&r, 1), 0);
        assert_eq!(r.metrics.mean_wait, 0.0);
    }

    #[test]
    fn fcfs_without_backfill_blocks() {
        let cfg = SimConfig {
            backfill: Backfill::None,
            ..SimConfig::default()
        };
        // Job 1 uses the whole machine for 100 s; job 2 (tiny) waits even
        // though it would fit alongside nothing; job 3 also waits.
        let r = run(
            vec![
                job(1, 0, 100, 100, 100),
                job(2, 1, 10, 100, 10),
                job(3, 2, 10, 1, 10),
            ],
            cfg,
        );
        assert_eq!(wait_of(&r, 1), 0);
        assert_eq!(wait_of(&r, 2), 99);
        // FCFS: job 3 starts only after job 2 completes (head blocking).
        assert_eq!(wait_of(&r, 3), 108);
    }

    #[test]
    fn easy_backfills_harmless_jobs() {
        // Machine 100. Job1: 100 units 100 s. Job2: 100 units (head, blocked
        // until t=100). Job3: 1 unit, 50 s — ends before the shadow (100),
        // so EASY starts it immediately... but job1 holds all 100 units, so
        // it cannot. Give job1 only 90 units so 10 are free.
        let r = run(
            vec![
                job(1, 0, 100, 90, 100),
                job(2, 1, 100, 100, 100),
                job(3, 2, 50, 10, 50),
            ],
            SimConfig::default(),
        );
        assert_eq!(wait_of(&r, 1), 0);
        // Job 3 backfills at t=2 (ends t=52 ≤ shadow t=100).
        assert_eq!(wait_of(&r, 3), 0);
        // Job 2 starts right when job 1 ends.
        assert_eq!(wait_of(&r, 2), 99);
        assert_eq!(r.metrics.violated_jobs, 0, "strict EASY never violates");
    }

    #[test]
    fn easy_rejects_backfill_that_would_delay_head() {
        // Job3 would end at t=2+200=202 > shadow 100 and needs 10 > extra 0.
        let r = run(
            vec![
                job(1, 0, 100, 90, 100),
                job(2, 1, 100, 100, 100),
                job(3, 2, 200, 10, 200),
            ],
            SimConfig::default(),
        );
        assert_eq!(wait_of(&r, 2), 99);
        // Job 3 cannot start before job 2 (it would delay it): it runs after
        // job 2 starts at t=100 alongside? Job2 takes all 100 units, so job3
        // waits for job2's completion at t=200.
        assert_eq!(wait_of(&r, 3), 198);
    }

    #[test]
    fn easy_uses_extra_units_at_shadow() {
        // Job1: 90 units until 100. Job2 (head): needs 50 ⇒ shadow = 100,
        // extra = free_at(100) − 50 = 50. Job3: 10 units, long (ends past
        // shadow) but fits in extra ⇒ backfills.
        let r = run(
            vec![
                job(1, 0, 100, 90, 100),
                job(2, 1, 100, 50, 100),
                job(3, 2, 500, 10, 500),
            ],
            SimConfig::default(),
        );
        assert_eq!(wait_of(&r, 3), 0);
        // Head still starts at 100 exactly: 90 freed, 10 used by job3,
        // 50 needed ≤ 100 − 10.
        assert_eq!(wait_of(&r, 2), 99);
        assert_eq!(r.metrics.violated_jobs, 0);
    }

    #[test]
    fn relaxed_backfilling_allows_bounded_delay() {
        // Strict EASY rejects job3 (ends past shadow, exceeds extra).
        // Relaxed with a big factor accepts it, delaying job2.
        let jobs = vec![
            job(1, 0, 100, 90, 100),
            job(2, 1, 100, 100, 100),
            job(3, 2, 150, 10, 150),
        ];
        let strict = run(jobs.clone(), SimConfig::default());
        assert_eq!(wait_of(&strict, 3), 198);

        let relaxed = run(
            jobs,
            SimConfig {
                relax: Relax::Fixed { factor: 0.9 },
                ..SimConfig::default()
            },
        );
        // Job3 ends at 2+150 = 152 ≤ shadow 100 + 0.9×(100−1) = 189 ⇒ backfills.
        assert_eq!(wait_of(&relaxed, 3), 0);
        // Job2 is delayed until job3 finishes at t=152.
        assert_eq!(wait_of(&relaxed, 2), 151);
        assert_eq!(relaxed.metrics.violated_jobs, 1);
        assert!((relaxed.metrics.violation - 52.0).abs() < 1e-9);
    }

    #[test]
    fn relaxed_allowance_is_anchored_to_the_original_promise() {
        // Machine 100. Job 1 holds 50 units until t=1000; job 2 (the head,
        // 100 units) is promised the shadow time t=1000. With factor 0.5
        // the allowance is 0.5 × (1000 − 1) = 499 s, so the head's start
        // must never slip past 1000 + 499 = 1499. Job 3 (ends 2+1300=1302
        // ≤ 1499) backfills and pushes the shadow to 1302; job 4 (ends
        // 3+1700=1703) must NOT: re-deriving the allowance from the
        // recomputed shadow would accept it (1703 ≤ 1302 + 0.5×1301 =
        // 1952) and every such round would relax an already-delayed
        // reservation — unbounded cumulative head delay.
        let jobs = vec![
            job(1, 0, 1_000, 50, 1_000),
            job(2, 1, 10, 100, 10),
            job(3, 2, 1_300, 25, 1_300),
            job(4, 3, 1_700, 25, 1_700),
        ];
        for relax in [Relax::Fixed { factor: 0.5 }, Relax::Adaptive { base: 0.5 }] {
            let r = run(
                jobs.clone(),
                SimConfig {
                    relax,
                    ..SimConfig::default()
                },
            );
            assert_eq!(wait_of(&r, 3), 0, "job 3 fits inside the allowance");
            let head_start = 1 + wait_of(&r, 2);
            assert!(
                head_start <= 1_499,
                "head start {head_start} exceeds promise 1000 + allowance 499 ({relax:?})"
            );
            // The head starts exactly when job 3 releases its units.
            assert_eq!(head_start, 1_302);
            assert_eq!(wait_of(&r, 4), 1_309, "job 4 waits behind the head");
            assert_eq!(r.metrics.violated_jobs, 1, "only the head is delayed");
        }
    }

    #[test]
    fn batch_traces_with_duplicate_ids_keep_first_wins() {
        // Historical traces (SWF) occasionally reuse job ids. Batch replay
        // runs every submission and keeps the legacy first-wins rule for
        // id lookups; only the incremental API rejects live duplicates.
        let r = run(
            vec![job(7, 0, 100, 100, 100), job(7, 1, 50, 100, 50)],
            SimConfig::default(),
        );
        assert_eq!(r.jobs.len(), 2, "both submissions run");
        assert_eq!(r.metrics.jobs, 2);
        let waits: Vec<_> = r.jobs.iter().map(|j| j.wait.unwrap()).collect();
        assert_eq!(waits, vec![0, 99]);
    }

    #[test]
    fn adaptive_relaxation_vanishes_on_short_queues() {
        // Same scenario: with a tiny queue, the adaptive factor ≈ base×(2/2)
        // is actually full here (queue of 2 equals the running max), so use
        // more jobs to check it ramps. With an empty history, first block
        // sets max_queue = qlen so factor = base; to observe a *reduced*
        // factor we need the queue to shrink later. Simplest check: adaptive
        // with base 0 behaves strictly.
        let jobs = vec![
            job(1, 0, 100, 90, 100),
            job(2, 1, 100, 100, 100),
            job(3, 2, 150, 10, 150),
        ];
        let adaptive0 = run(
            jobs,
            SimConfig {
                relax: Relax::Adaptive { base: 0.0 },
                ..SimConfig::default()
            },
        );
        assert_eq!(wait_of(&adaptive0, 3), 198);
        assert_eq!(adaptive0.metrics.violated_jobs, 0);
    }

    #[test]
    fn conservative_backfilling_starts_fitting_jobs() {
        let r = run(
            vec![
                job(1, 0, 100, 90, 100),
                job(2, 1, 100, 100, 100),
                job(3, 2, 50, 10, 50),
            ],
            SimConfig {
                backfill: Backfill::Conservative,
                ..SimConfig::default()
            },
        );
        assert_eq!(wait_of(&r, 3), 0, "harmless job backfills conservatively");
        assert_eq!(wait_of(&r, 2), 99);
    }

    #[test]
    fn sjf_reorders_queue() {
        let cfg = SimConfig {
            policy: Policy::Sjf,
            backfill: Backfill::None,
            ..SimConfig::default()
        };
        // Machine busy until t=100; then SJF picks the shortest first.
        let r = run(
            vec![
                job(1, 0, 100, 100, 100),
                job(2, 1, 1_000, 100, 1_000),
                job(3, 2, 10, 100, 10),
            ],
            cfg,
        );
        assert_eq!(wait_of(&r, 3), 98, "short job starts at t=100");
        assert_eq!(wait_of(&r, 2), 109, "long job starts after the short one");
    }

    #[test]
    fn virtual_clusters_isolate_queues() {
        // Two VCs; jobs bound to VC with free capacity elsewhere still wait.
        let mut spec = tiny();
        spec.virtual_clusters = 2;
        let mk = |id: u64, submit: i64, vc: u16, procs: u64| {
            let mut j = job(id, submit, 100, procs, 100);
            j.virtual_cluster = Some(vc);
            j
        };
        // Zipf(0.5) split of 100: vc0 ≈ 59, vc1 ≈ 41.
        let trace = Trace::new(
            spec,
            vec![mk(1, 0, 1, 40), mk(2, 1, 1, 40), mk(3, 2, 0, 10)],
        )
        .unwrap();
        let r = simulate(&trace, &SimConfig::default());
        assert_eq!(wait_of(&r, 1), 0);
        // Job 2 waits for VC1 although VC0 has room.
        assert!(wait_of(&r, 2) > 0);
        assert_eq!(wait_of(&r, 3), 0);

        // Without VC isolation it runs immediately.
        let r2 = simulate(
            &trace,
            &SimConfig {
                respect_virtual_clusters: false,
                ..SimConfig::default()
            },
        );
        assert_eq!(wait_of(&r2, 2), 0);
    }

    #[test]
    fn util_and_timeline_are_consistent() {
        let r = run(
            vec![job(1, 0, 100, 100, 100), job(2, 0, 100, 100, 100)],
            SimConfig::default(),
        );
        // Two full-machine jobs back to back: util = 1 over [0, 200].
        assert!((r.metrics.util - 1.0).abs() < 1e-9);
        assert!((r.timeline.mean_util() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_runtime_jobs_complete() {
        let r = run(
            vec![job(1, 0, 0, 100, 10), job(2, 0, 10, 100, 10)],
            SimConfig::default(),
        );
        assert_eq!(wait_of(&r, 1), 0);
        assert_eq!(wait_of(&r, 2), 0);
    }

    #[test]
    fn oversized_job_is_clamped_not_stuck() {
        let mut spec = tiny();
        spec.virtual_clusters = 2;
        let mut j = job(1, 0, 10, 90, 10);
        j.virtual_cluster = Some(1); // VC1 capacity ≈ 41 < 90 ⇒ escalates to VC0
        let trace = Trace::new(spec, vec![j]).unwrap();
        let r = simulate(&trace, &SimConfig::default());
        assert_eq!(wait_of(&r, 1), 0);
    }

    #[test]
    fn every_job_gets_scheduled_under_all_configs() {
        let jobs: Vec<Job> = (0..200)
            .map(|i| {
                job(
                    i,
                    i64::from(i as u32) * 3,
                    50 + (i % 7) as i64 * 20,
                    1 + (i % 30),
                    200,
                )
            })
            .collect();
        for backfill in [Backfill::None, Backfill::Easy, Backfill::Conservative] {
            for policy in Policy::ALL {
                let r = run(
                    jobs.clone(),
                    SimConfig {
                        policy,
                        backfill,
                        ..SimConfig::default()
                    },
                );
                assert!(r.jobs.iter().all(|j| j.wait.is_some()));
                assert_eq!(r.jobs.len(), 200);
            }
        }
    }
}
