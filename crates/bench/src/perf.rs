//! Machine-readable simulator performance reports.
//!
//! `BENCH_sim.json` at the repository root is the committed performance
//! baseline: the `sim_throughput` bench regenerates it
//! (`BENCH_SIM_OUT=BENCH_sim.json cargo bench -p lumos-bench --bench
//! sim_throughput`) and CI's `bench-smoke` job replays a reduced
//! configuration against it, failing the build when scheduled-jobs/sec
//! drops by more than [`DEFAULT_TOLERANCE`]. This module owns the report
//! schema, its JSON round-trip, and the regression comparison — see
//! `docs/PERFORMANCE.md` for the methodology.

use serde::{Deserialize, Serialize};

/// Relative slowdown tolerated before the CI gate fails (0.20 = 20%).
///
/// Wide on purpose: the gate runs on shared CI runners whose absolute
/// speed varies run to run. It exists to catch algorithmic regressions
/// (2×, 10×), not percent-level noise.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Report schema version; bump when fields change incompatibly.
pub const PERF_SCHEMA: u32 = 1;

/// Throughput of one batch replay under one backfill discipline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPerf {
    /// Backfill discipline name (`none` / `easy` / `conservative`).
    pub policy: String,
    /// Jobs scheduled in the measured replay.
    pub jobs: usize,
    /// Discrete events (arrivals + completions) the engine processed.
    pub events: u64,
    /// Best-of-N wall-clock seconds for one full replay.
    pub seconds: f64,
    /// Scheduled jobs per second (`jobs / seconds`).
    pub jobs_per_sec: f64,
    /// Engine events per second (`events / seconds`).
    pub events_per_sec: f64,
}

/// Sequential-vs-parallel timing of the Table II sweep (the
/// embarrassingly-parallel outer loop the work-stealing pool speeds up).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPerf {
    /// Independent simulation cells in the sweep.
    pub tasks: usize,
    /// Worker threads the parallel run used.
    pub threads: usize,
    /// Wall-clock seconds with the pool pinned to one thread.
    pub seq_seconds: f64,
    /// Wall-clock seconds at the full thread count.
    pub par_seconds: f64,
    /// `seq_seconds / par_seconds`.
    pub speedup: f64,
}

/// One `BENCH_sim.json`: per-policy replay throughput plus the parallel
/// sweep measurement, with enough context to interpret the numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema version ([`PERF_SCHEMA`]).
    pub schema: u32,
    /// Trace generator seed.
    pub seed: u64,
    /// Trace window in days.
    pub span_days: u32,
    /// Jobs in the workload trace.
    pub workload_jobs: usize,
    /// Hardware threads available on the measuring host.
    pub host_threads: usize,
    /// Whether this was the reduced (`BENCH_QUICK`) configuration.
    pub quick: bool,
    /// Per-backfill-discipline replay throughput.
    pub policies: Vec<PolicyPerf>,
    /// Parallel sweep timing (absent when the host has one thread and the
    /// comparison would be vacuous).
    pub sweep: Option<SweepPerf>,
}

impl PerfReport {
    /// Serializes to pretty JSON (the `BENCH_sim.json` format).
    ///
    /// # Panics
    /// Never — the report contains no unserializable values.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(text: &str) -> serde_json::Result<Self> {
        serde_json::from_str(text)
    }

    /// Compares this (current) report against a committed `baseline`.
    ///
    /// Returns one human-readable finding per policy whose
    /// jobs-per-second throughput fell more than `tolerance` below the
    /// baseline, or that disappeared from the current report. An empty
    /// vector means the gate passes. Faster-than-baseline is never a
    /// finding, and policies new in the current report are ignored (they
    /// gate once the baseline is regenerated).
    /// Comparing reports measured under different configurations (schema,
    /// profile, seed, window, workload) is apples-to-oranges and reported
    /// as a finding instead of silently producing nonsense.
    #[must_use]
    pub fn regressions(&self, baseline: &Self, tolerance: f64) -> Vec<String> {
        let mut findings = Vec::new();
        let ours = (
            self.schema,
            self.quick,
            self.seed,
            self.span_days,
            self.workload_jobs,
        );
        let theirs = (
            baseline.schema,
            baseline.quick,
            baseline.seed,
            baseline.span_days,
            baseline.workload_jobs,
        );
        if ours != theirs {
            findings.push(format!(
                "configuration mismatch: current (schema, quick, seed, days, jobs) = \
                 {ours:?} but baseline = {theirs:?}; regenerate the baseline"
            ));
            return findings;
        }
        for base in &baseline.policies {
            let Some(cur) = self.policies.iter().find(|p| p.policy == base.policy) else {
                findings.push(format!(
                    "policy `{}` present in baseline but missing from current report",
                    base.policy
                ));
                continue;
            };
            let floor = base.jobs_per_sec * (1.0 - tolerance);
            if cur.jobs_per_sec < floor {
                findings.push(format!(
                    "policy `{}` regressed: {:.0} jobs/sec vs baseline {:.0} \
                     (floor {:.0} at {:.0}% tolerance)",
                    base.policy,
                    cur.jobs_per_sec,
                    base.jobs_per_sec,
                    floor,
                    tolerance * 100.0
                ));
            }
        }
        findings
    }
}

/// Throughput of one serve-loop cell: one fsync policy × one group-commit
/// size, measured over a loopback connection with pipelined submissions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCellPerf {
    /// Cell key: `"<fsync>/g<group>"`, e.g. `"always/g64"`.
    pub cell: String,
    /// Fsync policy name (`always` / `interval:MS` / `never`).
    pub fsync: String,
    /// Group-commit size the server ran with (1 = per-record commits).
    pub group_commit: usize,
    /// Commands acknowledged in the measured run.
    pub commands: usize,
    /// Best-of-N wall-clock seconds from first submit to last ack.
    pub seconds: f64,
    /// Acknowledged commands per second.
    pub cmds_per_sec: f64,
    /// 99th-percentile acknowledgment latency in milliseconds.
    pub p99_ack_ms: f64,
}

/// One `BENCH_serve.json`: the serve fast-path throughput matrix plus the
/// headline group-commit speedup under full durability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServePerfReport {
    /// Schema version ([`PERF_SCHEMA`]).
    pub schema: u32,
    /// Whether this was the reduced (`BENCH_QUICK`) configuration.
    pub quick: bool,
    /// Commands per cell (identical across cells by construction).
    pub commands: usize,
    /// Hardware threads available on the measuring host.
    pub host_threads: usize,
    /// One measurement per fsync policy × group-commit size.
    pub cells: Vec<ServeCellPerf>,
    /// `always/g<N>` throughput over `always/g1` — what group commit buys
    /// under full durability, the number this PR's gate cares about.
    pub group_commit_speedup: f64,
}

impl ServePerfReport {
    /// Serializes to pretty JSON (the `BENCH_serve.json` format).
    ///
    /// # Panics
    /// Never — the report contains no unserializable values.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json(text: &str) -> serde_json::Result<Self> {
        serde_json::from_str(text)
    }

    /// Compares this (current) report against a committed `baseline`,
    /// mirroring [`PerfReport::regressions`]: one finding per cell whose
    /// commands-per-second fell more than `tolerance` below the baseline
    /// or that vanished, a configuration mismatch refuses to compare, and
    /// ack latency is never gated (too noisy on shared runners).
    #[must_use]
    pub fn regressions(&self, baseline: &Self, tolerance: f64) -> Vec<String> {
        let mut findings = Vec::new();
        let ours = (self.schema, self.quick, self.commands);
        let theirs = (baseline.schema, baseline.quick, baseline.commands);
        if ours != theirs {
            findings.push(format!(
                "configuration mismatch: current (schema, quick, commands) = {ours:?} \
                 but baseline = {theirs:?}; regenerate the baseline"
            ));
            return findings;
        }
        for base in &baseline.cells {
            let Some(cur) = self.cells.iter().find(|c| c.cell == base.cell) else {
                findings.push(format!(
                    "cell `{}` present in baseline but missing from current report",
                    base.cell
                ));
                continue;
            };
            let floor = base.cmds_per_sec * (1.0 - tolerance);
            if cur.cmds_per_sec < floor {
                findings.push(format!(
                    "cell `{}` regressed: {:.0} cmds/sec vs baseline {:.0} \
                     (floor {:.0} at {:.0}% tolerance)",
                    base.cell,
                    cur.cmds_per_sec,
                    base.cmds_per_sec,
                    floor,
                    tolerance * 100.0
                ));
            }
        }
        findings
    }
}

/// Builds a [`ServeCellPerf`] from a measured run.
#[must_use]
pub fn serve_cell_perf(
    fsync: &str,
    group_commit: usize,
    commands: usize,
    seconds: f64,
    p99_ack_ms: f64,
) -> ServeCellPerf {
    let secs = seconds.max(1e-9);
    ServeCellPerf {
        cell: format!("{fsync}/g{group_commit}"),
        fsync: fsync.to_string(),
        group_commit,
        commands,
        seconds,
        cmds_per_sec: commands as f64 / secs,
        p99_ack_ms,
    }
}

/// Builds a [`PolicyPerf`] from a measured replay.
#[must_use]
pub fn policy_perf(policy: &str, jobs: usize, events: u64, seconds: f64) -> PolicyPerf {
    // Guard against a sub-resolution timer reading; throughput from a
    // zero-length measurement is meaningless, not infinite.
    let secs = seconds.max(1e-9);
    PolicyPerf {
        policy: policy.to_string(),
        jobs,
        events,
        seconds,
        jobs_per_sec: jobs as f64 / secs,
        events_per_sec: events as f64 / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rates: &[(&str, f64)]) -> PerfReport {
        PerfReport {
            schema: PERF_SCHEMA,
            seed: 1,
            span_days: 1,
            workload_jobs: 1000,
            host_threads: 4,
            quick: true,
            policies: rates
                .iter()
                .map(|&(name, rate)| policy_perf(name, (rate * 2.0) as usize, 0, 2.0))
                .collect(),
            sweep: None,
        }
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let mut r = report(&[("easy", 5000.0), ("conservative", 800.0)]);
        r.sweep = Some(SweepPerf {
            tasks: 6,
            threads: 4,
            seq_seconds: 8.0,
            par_seconds: 2.5,
            speedup: 3.2,
        });
        let parsed = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(&[("easy", 1000.0)]);
        let cur = report(&[("easy", 850.0)]);
        assert!(cur.regressions(&base, 0.20).is_empty());
    }

    #[test]
    fn beyond_tolerance_fails() {
        let base = report(&[("easy", 1000.0), ("none", 9000.0)]);
        let cur = report(&[("easy", 700.0), ("none", 9500.0)]);
        let findings = cur.regressions(&base, 0.20);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("`easy`"), "{findings:?}");
    }

    #[test]
    fn missing_policy_is_a_finding_but_new_policy_is_not() {
        let base = report(&[("easy", 1000.0)]);
        let cur = report(&[("conservative", 1000.0)]);
        let findings = cur.regressions(&base, 0.20);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("missing"), "{findings:?}");
    }

    #[test]
    fn mismatched_configurations_refuse_to_compare() {
        let base = report(&[("easy", 1000.0)]);
        let mut cur = report(&[("easy", 1000.0)]);
        cur.span_days = 7;
        let findings = cur.regressions(&base, 0.20);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].contains("configuration mismatch"),
            "{findings:?}"
        );
    }

    #[test]
    fn zero_second_measurements_do_not_divide_by_zero() {
        let p = policy_perf("easy", 100, 200, 0.0);
        assert!(p.jobs_per_sec.is_finite());
        assert!(p.events_per_sec.is_finite());
        let c = serve_cell_perf("always", 64, 100, 0.0, 0.0);
        assert!(c.cmds_per_sec.is_finite());
    }

    fn serve_report(rates: &[(&str, usize, f64)]) -> ServePerfReport {
        ServePerfReport {
            schema: PERF_SCHEMA,
            quick: true,
            commands: 1000,
            host_threads: 4,
            cells: rates
                .iter()
                .map(|&(fsync, group, rate)| {
                    serve_cell_perf(fsync, group, (rate * 2.0) as usize, 2.0, 0.5)
                })
                .collect(),
            group_commit_speedup: 4.0,
        }
    }

    #[test]
    fn serve_json_round_trip_preserves_the_report() {
        let r = serve_report(&[("always", 1, 400.0), ("always", 64, 4000.0)]);
        let parsed = ServePerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn serve_cells_gate_on_throughput_but_not_latency() {
        let base = serve_report(&[("always", 64, 4000.0), ("never", 64, 9000.0)]);
        let mut cur = serve_report(&[("always", 64, 2500.0), ("never", 64, 9500.0)]);
        for c in &mut cur.cells {
            c.p99_ack_ms = 100.0; // latency regressions are not findings
        }
        let findings = cur.regressions(&base, 0.20);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("`always/g64`"), "{findings:?}");
    }

    #[test]
    fn serve_missing_cell_and_config_mismatch_are_findings() {
        let base = serve_report(&[("always", 1, 400.0)]);
        let cur = serve_report(&[("never", 64, 9000.0)]);
        let findings = cur.regressions(&base, 0.20);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("missing"), "{findings:?}");

        let mut mismatched = serve_report(&[("always", 1, 400.0)]);
        mismatched.commands = 9;
        let findings = mismatched.regressions(&base, 0.20);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].contains("configuration mismatch"),
            "{findings:?}"
        );
    }
}
