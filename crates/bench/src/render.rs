//! Text rendering of the regenerated tables and figures (the CLI's stdout
//! format). Numbers are meant to be compared to the paper's by *shape*:
//! orderings, factors, crossovers — not absolute values (see
//! EXPERIMENTS.md).

use std::fmt::Write as _;

use lumos_analysis::{takeaways, SystemAnalysis};

use crate::fig12::Fig12System;
use crate::table2::Table2Row;

/// Renders Fig. 1 headline numbers per system.
#[must_use]
pub fn fig1(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>14} {:>12} {:>10} {:>10}",
        "System", "med runtime", "med gap", "hourly max/min", "med procs", "1-unit %", ">1k %"
    );
    for a in analyses {
        let _ = writeln!(
            out,
            "{:<14} {:>11.0}s {:>11.1}s {:>14} {:>12.0} {:>9.1}% {:>9.1}%",
            a.system,
            a.runtime.median,
            a.arrival.median_interval,
            a.arrival
                .hourly_max_min_ratio
                .map_or_else(|| "n/a".into(), |r| format!("{r:.1}x")),
            a.resources.median_procs,
            a.resources.single_unit_share * 100.0,
            a.resources.over_1000_share * 100.0,
        );
    }
    out
}

/// Renders Fig. 2 (core-hour domination).
#[must_use]
pub fn fig2(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}  (core-hour shares)",
        "System", "small", "middle", "large", "short", "middle", "long"
    );
    for a in analyses {
        let s = a.domination.by_size;
        let l = a.domination.by_length;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1}% {:>7.1}% {:>7.1}% | {:>7.1}% {:>7.1}% {:>7.1}%  dom: {:?}/{:?}",
            a.system,
            s[0] * 100.0,
            s[1] * 100.0,
            s[2] * 100.0,
            l[0] * 100.0,
            l[1] * 100.0,
            l[2] * 100.0,
            a.domination.dominant_size,
            a.domination.dominant_length,
        );
    }
    out
}

/// Renders Fig. 3 (utilization).
#[must_use]
pub fn fig3(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>14}",
        "System", "util", "mean util", "time >80%"
    );
    for a in analyses {
        let _ = writeln!(
            out,
            "{:<14} {:>9.1}% {:>11.1}% {:>13.1}%",
            a.system,
            a.utilization.window_util * 100.0,
            a.utilization.mean * 100.0,
            a.utilization.time_above_80 * 100.0,
        );
    }
    out
}

/// Renders Figs. 4–5 (waiting).
#[must_use]
pub fn fig4_fig5(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>9} {:>9}  longest-waiting size/length",
        "System", "mean wait", "med wait", "<10s", ">1.5h"
    );
    for a in analyses {
        let _ = writeln!(
            out,
            "{:<14} {:>9.0}s {:>9.0}s {:>8.1}% {:>8.1}%  {:?} / {:?}",
            a.system,
            a.waiting.mean_wait,
            a.waiting.median_wait,
            a.waiting.under_10s_share * 100.0,
            a.waiting.over_90min_share * 100.0,
            a.waiting.longest_waiting_size,
            a.waiting.longest_waiting_length,
        );
    }
    out
}

/// Renders Figs. 6–7 (failures).
#[must_use]
pub fn fig6_fig7(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>24} {:>24}  long-job kill rate",
        "System", "counts P/F/K (%)", "core-hours P/F/K (%)"
    );
    for a in analyses {
        let c = a.failures.overall.count_shares;
        let h = a.failures.overall.core_hour_shares;
        let long_kill = a.failures.by_length[2]
            .map_or_else(|| "n/a".into(), |row| format!("{:.0}%", row[2] * 100.0));
        let _ = writeln!(
            out,
            "{:<14} {:>7.1}/{:>5.1}/{:>5.1} {:>12.1}/{:>5.1}/{:>5.1}  {}",
            a.system,
            c[0] * 100.0,
            c[1] * 100.0,
            c[2] * 100.0,
            h[0] * 100.0,
            h[1] * 100.0,
            h[2] * 100.0,
            long_kill,
        );
    }
    out
}

/// Renders Fig. 8 (resource-configuration groups).
#[must_use]
pub fn fig8(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>8} {:>8} {:>8}",
        "System", "users", "top-1", "top-3", "top-10"
    );
    for a in analyses {
        let c = &a.user_groups.cumulative;
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>7.1}% {:>7.1}% {:>7.1}%",
            a.system,
            a.user_groups.users,
            c[0] * 100.0,
            c[2] * 100.0,
            c[9] * 100.0,
        );
    }
    out
}

/// Renders Figs. 9–10 (queue-conditioned submissions).
#[must_use]
pub fn fig9_fig10(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>9} | minimal-request share S/M/L queue | mean runtime S/M/L queue",
        "System", "max queue"
    );
    for a in analyses {
        let fmt_req = |qc: usize| {
            a.submission.request_shares[qc]
                .map_or_else(|| "  n/a".into(), |s| format!("{:>4.0}%", s[0] * 100.0))
        };
        let fmt_rt = |qc: usize| {
            a.submission.mean_runtime[qc].map_or_else(|| "    n/a".into(), |r| format!("{r:>6.0}s"))
        };
        let _ = writeln!(
            out,
            "{:<14} {:>9} |      {} {} {}        | {} {} {}",
            a.system,
            a.submission.max_queue,
            fmt_req(0),
            fmt_req(1),
            fmt_req(2),
            fmt_rt(0),
            fmt_rt(1),
            fmt_rt(2),
        );
    }
    out
}

/// Renders Fig. 11 (per-user status violins).
#[must_use]
pub fn fig11(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>7} | median runtime Passed/Failed/Killed",
        "System", "user", "jobs"
    );
    for a in analyses {
        for u in &a.user_failures {
            let med = |i: usize| u.medians[i].map_or_else(|| "n/a".into(), |m| format!("{m:.0}s"));
            let _ = writeln!(
                out,
                "{:<14} U{:<5} {:>7} | {} / {} / {}",
                a.system,
                u.user,
                u.jobs,
                med(0),
                med(1),
                med(2),
            );
        }
    }
    out
}

/// Renders Fig. 12 (prediction).
#[must_use]
pub fn fig12(results: &[Fig12System]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<8} {:>7} | {:>22} | {:>22}",
        "System", "model", "elapsed", "underest without→with", "accuracy without→with"
    );
    for sys in results {
        for r in &sys.rows {
            let _ = writeln!(
                out,
                "{:<14} {:<8} {:>6.3} | {:>9.3} → {:>9.3} | {:>9.3} → {:>9.3}",
                sys.system,
                r.model.name(),
                r.elapsed_frac,
                r.without.underestimate_rate,
                r.with_elapsed.underestimate_rate,
                r.without.accuracy,
                r.with_elapsed.accuracy,
            );
        }
    }
    out
}

/// Renders Table II.
#[must_use]
pub fn table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<10} {:>12} {:>12} {:>9}",
        "Trace", "Metric", "Relaxed", "Adaptive", "Improved"
    );
    for r in rows {
        let lines: [(&str, f64, f64); 4] = [
            ("wait", r.relaxed.mean_wait, r.adaptive.mean_wait),
            ("bsld", r.relaxed.mean_bsld, r.adaptive.mean_bsld),
            ("util", r.relaxed.util, r.adaptive.util),
            ("violation", r.relaxed.violation, r.adaptive.violation),
        ];
        for (metric, rel, ada) in lines {
            let _ = writeln!(
                out,
                "{:<14} {:<10} {:>12.2} {:>12.2} {:>8.1}%",
                r.system,
                metric,
                rel,
                ada,
                r.improvement(metric),
            );
        }
    }
    out
}

/// Renders the eight takeaways checklist.
#[must_use]
pub fn takeaway_report(analyses: &[SystemAnalysis]) -> String {
    let mut out = String::new();
    for t in takeaways::evaluate(analyses) {
        let _ = writeln!(
            out,
            "[{}] T{}: {}\n      {}",
            if t.holds { "ok" } else { "??" },
            t.id,
            t.title,
            t.evidence
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_do_not_panic_on_real_suite() {
        let analyses = crate::analyzed_suite(1, 1);
        for text in [
            fig1(&analyses),
            fig2(&analyses),
            fig3(&analyses),
            fig4_fig5(&analyses),
            fig6_fig7(&analyses),
            fig8(&analyses),
            fig9_fig10(&analyses),
            fig11(&analyses),
            takeaway_report(&analyses),
        ] {
            assert!(text.contains("Mira") || text.contains("T1") || text.contains("ok"));
        }
    }
}
