//! Fig. 12 — runtime prediction with/without elapsed time, per system.

use lumos_core::SystemId;
use lumos_predict::{evaluate_trace, Fig12Row};
use lumos_traces::{systems, Generator, GeneratorConfig};
use rayon::prelude::*;
use serde::Serialize;

/// The elapsed points the paper examines: 1/8, 1/4, 1/2 of mean runtime.
pub const ELAPSED_FRACS: [f64; 3] = [0.125, 0.25, 0.5];

/// Fig. 12 rows for one system.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12System {
    /// System name.
    pub system: String,
    /// One row per model × elapsed point.
    pub rows: Vec<Fig12Row>,
}

/// Regenerates Fig. 12 across the suite. `max_instances` caps dataset size
/// per system (the DL traces have tens of thousands of jobs per day).
#[must_use]
pub fn run_fig12(seed: u64, days: u32, max_instances: usize) -> Vec<Fig12System> {
    SystemId::PAPER_SYSTEMS
        .par_iter()
        .map(|&id| {
            let trace = Generator::new(
                systems::profile_for(id),
                GeneratorConfig {
                    seed: seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    span_days: days,
                    ..GeneratorConfig::default()
                },
            )
            .generate();
            Fig12System {
                system: id.name().to_string(),
                rows: evaluate_trace(&trace, &ELAPSED_FRACS, max_instances),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_produces_rows_for_populated_systems() {
        let out = run_fig12(3, 1, 2_000);
        assert_eq!(out.len(), 5);
        // DL systems certainly have enough jobs in one day.
        let helios = out.iter().find(|s| s.system == "Helios").unwrap();
        assert!(!helios.rows.is_empty());
    }
}
