//! # lumos-bench
//!
//! Shared experiment harness: the functions that regenerate every paper
//! table and figure, used both by the `lumos` CLI and by the Criterion
//! benches in `benches/`.
//!
//! Each experiment is a pure function of `(seed, span_days)`; the returned
//! structures serialize to JSON (the CLI's report format) and render to
//! aligned text (the CLI's stdout format).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig12;
pub mod perf;
pub mod render;
pub mod table2;

use lumos_analysis::SystemAnalysis;
use lumos_core::Trace;

/// Default deterministic seed used by the CLI and benches.
pub const DEFAULT_SEED: u64 = 2024;

/// Default trace window (days). Long enough for diurnal structure and
/// queue buildup, short enough to regenerate in seconds.
pub const DEFAULT_DAYS: u32 = 2;

/// Generates the five-system synthetic suite.
#[must_use]
pub fn suite(seed: u64, days: u32) -> Vec<Trace> {
    lumos_traces::generate_paper_suite(seed, days)
}

/// Generates and fully analyzes the suite (replays included).
#[must_use]
pub fn analyzed_suite(seed: u64, days: u32) -> Vec<SystemAnalysis> {
    let traces = suite(seed, days);
    lumos_analysis::analyze_suite(&traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_systems() {
        let s = suite(1, 1);
        assert_eq!(s.len(), 5);
    }
}
