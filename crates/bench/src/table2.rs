//! Table II — adaptive relaxed backfilling (paper §VI.B).
//!
//! On the three walltime-carrying systems (Blue Waters, Mira, Theta),
//! compare fixed relaxed backfilling (factor 10 %) against the adaptive
//! variant (Eq. 1: `10 % × queue_len / max_queue_len`) on `wait`, `bsld`,
//! `util`, and `violation`. The paper reports the adaptive mechanism
//! cutting violations by 5–49 % at ≤ few-% cost on the other metrics.

use lumos_core::SystemId;
use lumos_sim::{simulate, Backfill, Policy, Relax, SimConfig, SimMetrics};
use lumos_traces::{systems, Generator, GeneratorConfig};
use rayon::prelude::*;
use serde::Serialize;

/// The systems Table II covers (DL traces carry no walltimes).
pub const TABLE2_SYSTEMS: [SystemId; 3] = [SystemId::BlueWaters, SystemId::Mira, SystemId::Theta];

/// One Table II block: a system under both relaxation rules.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// System name.
    pub system: String,
    /// Jobs simulated.
    pub jobs: usize,
    /// Fixed relaxed backfilling (factor = `base`).
    pub relaxed: SimMetrics,
    /// Adaptive relaxed backfilling (Eq. 1, same `base`).
    pub adaptive: SimMetrics,
    /// Relaxation base factor used.
    pub base_factor: f64,
}

impl Table2Row {
    /// Percentage improvement of adaptive over relaxed on a metric
    /// (positive = adaptive better, i.e. smaller wait/bsld/violation or
    /// larger util).
    #[must_use]
    pub fn improvement(&self, metric: &str) -> f64 {
        let (r, a, smaller_better) = match metric {
            "wait" => (self.relaxed.mean_wait, self.adaptive.mean_wait, true),
            "bsld" => (self.relaxed.mean_bsld, self.adaptive.mean_bsld, true),
            "util" => (self.relaxed.util, self.adaptive.util, false),
            "violation" => (self.relaxed.violation, self.adaptive.violation, true),
            other => panic!("unknown metric {other}"),
        };
        if r == 0.0 {
            return 0.0;
        }
        if smaller_better {
            (r - a) / r * 100.0
        } else {
            (a - r) / r * 100.0
        }
    }
}

/// Span multiplier for the sparse-arrival HPC systems: Mira/Theta receive
/// only a couple hundred jobs per day, so Table II gives them 8× the
/// window Blue Waters gets for comparable statistical weight.
#[must_use]
pub fn span_for(id: SystemId, days: u32) -> u32 {
    match id {
        SystemId::Mira | SystemId::Theta => days * 8,
        _ => days,
    }
}

/// Runs one system under one relaxation rule.
#[must_use]
pub fn run_system(id: SystemId, seed: u64, days: u32, relax: Relax) -> SimMetrics {
    let trace = Generator::new(
        systems::profile_for(id),
        GeneratorConfig {
            seed,
            span_days: span_for(id, days),
            ..GeneratorConfig::default()
        },
    )
    .generate();
    let cfg = SimConfig {
        policy: Policy::Fcfs,
        backfill: Backfill::Easy,
        relax,
        ..SimConfig::default()
    };
    simulate(&trace, &cfg).metrics
}

/// The independent simulation cells of the Table II grid: every
/// `(system, relaxation rule)` pair, fixed rule first. Exposed so the
/// throughput bench can time exactly the sweep `run_table2` parallelizes.
#[must_use]
pub fn table2_cells(base_factor: f64) -> Vec<(SystemId, Relax)> {
    TABLE2_SYSTEMS
        .iter()
        .flat_map(|&id| {
            [
                (
                    id,
                    Relax::Fixed {
                        factor: base_factor,
                    },
                ),
                (id, Relax::Adaptive { base: base_factor }),
            ]
        })
        .collect()
}

/// Regenerates Table II.
///
/// Fans the work-stealing pool over all six `(system, rule)` cells rather
/// than three system tasks of two sequential runs each: every cell is an
/// independent simulation, so the critical path is one cell, not two.
/// Results are reassembled by index, which keeps the output deterministic
/// and identical at any thread count.
#[must_use]
pub fn run_table2(seed: u64, days: u32, base_factor: f64) -> Vec<Table2Row> {
    let cells = table2_cells(base_factor);
    let metrics: Vec<SimMetrics> = cells
        .par_iter()
        .map(|&(id, relax)| run_system(id, seed, days, relax))
        .collect();
    TABLE2_SYSTEMS
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let relaxed = metrics[2 * i].clone();
            let adaptive = metrics[2 * i + 1].clone();
            Table2Row {
                system: id.name().to_string(),
                jobs: relaxed.jobs,
                relaxed,
                adaptive,
                base_factor,
            }
        })
        .collect()
}

/// Relaxation-factor sweep for the ablation bench: strict, fixed
/// {5, 10, 20} %, adaptive {5, 10, 20} %.
#[must_use]
pub fn relax_ablation(id: SystemId, seed: u64, days: u32) -> Vec<(String, SimMetrics)> {
    let variants: Vec<(String, Relax)> = vec![
        ("strict".into(), Relax::Strict),
        ("fixed-5%".into(), Relax::Fixed { factor: 0.05 }),
        ("fixed-10%".into(), Relax::Fixed { factor: 0.10 }),
        ("fixed-20%".into(), Relax::Fixed { factor: 0.20 }),
        ("adaptive-5%".into(), Relax::Adaptive { base: 0.05 }),
        ("adaptive-10%".into(), Relax::Adaptive { base: 0.10 }),
        ("adaptive-20%".into(), Relax::Adaptive { base: 0.20 }),
    ];
    variants
        .into_par_iter()
        .map(|(name, relax)| (name, run_system(id, seed, days, relax)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_covers_three_systems() {
        let rows = run_table2(7, 1, 0.10);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.jobs > 10);
            assert!(r.relaxed.util > 0.0);
            assert!(r.adaptive.util > 0.0);
        }
    }

    #[test]
    fn table2_is_byte_identical_across_thread_counts() {
        // The determinism contract the docs promise: fanning the grid over
        // the work-stealing pool must not change a single output byte,
        // whatever the thread count.
        let at = |threads: usize| {
            let rows = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| run_table2(7, 1, 0.10));
            serde_json::to_string(&rows).unwrap()
        };
        let one = at(1);
        assert_eq!(one, at(2));
        assert_eq!(one, at(8));
    }

    #[test]
    fn cells_enumerate_the_grid_fixed_first() {
        let cells = table2_cells(0.10);
        assert_eq!(cells.len(), 2 * TABLE2_SYSTEMS.len());
        assert_eq!(cells[0].0, TABLE2_SYSTEMS[0]);
        assert!(matches!(cells[0].1, Relax::Fixed { .. }));
        assert!(matches!(cells[1].1, Relax::Adaptive { .. }));
    }

    #[test]
    fn improvement_signs() {
        let row = Table2Row {
            system: "X".into(),
            jobs: 1,
            relaxed: mk_metrics(100.0, 10.0, 0.8, 600.0),
            adaptive: mk_metrics(110.0, 9.0, 0.82, 300.0),
            base_factor: 0.1,
        };
        assert!((row.improvement("wait") + 10.0).abs() < 1e-9);
        assert!((row.improvement("bsld") - 10.0).abs() < 1e-9);
        assert!((row.improvement("util") - 2.5).abs() < 1e-9);
        assert!((row.improvement("violation") - 50.0).abs() < 1e-9);
    }

    fn mk_metrics(wait: f64, bsld: f64, util: f64, violation: f64) -> SimMetrics {
        SimMetrics {
            jobs: 1,
            mean_wait: wait,
            median_wait: wait,
            p90_wait: wait,
            mean_bsld: bsld,
            util,
            violation,
            reserved_jobs: 1,
            violated_jobs: 1,
            makespan: 1,
        }
    }
}
