//! Figs. 4–5 — waiting/turnaround CDFs and per-class waits.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::waiting;
use lumos_core::Trace;
use lumos_sim::{simulate, SimConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Figs. 4-5 (regenerated) ==");
    print!("{}", lumos_bench::render::fig4_fig5(&analyses));

    // Pre-replay a trace so the bench isolates the waiting analysis.
    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let helios = traces.iter().find(|t| t.system.name == "Helios").unwrap();
    let result = simulate(helios, &SimConfig::default());
    let replayed = Trace::new(helios.system.clone(), result.jobs).unwrap();

    let mut g = c.benchmark_group("fig4_fig5");
    g.sample_size(10);
    g.bench_function("waiting_analysis_helios", |b| {
        b.iter(|| black_box(waiting::waiting_analysis(black_box(&replayed))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
