//! Ablation: queue-feedback generation on/off (DESIGN.md §4.1).
//!
//! With feedback disabled, users submit the same mix regardless of
//! congestion — the Figs. 9–10 gradients flatten and the adaptive
//! backfilling advantage shrinks, demonstrating that the behavioural
//! coupling is load-bearing.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::analyze_system;
use lumos_core::SystemId;
use lumos_traces::{systems, Generator, GeneratorConfig};
use std::hint::black_box;

fn minimal_gradient(feedback: bool) -> Option<f64> {
    let trace = Generator::new(
        systems::profile_for(SystemId::Philly),
        GeneratorConfig {
            seed: lumos_bench::DEFAULT_SEED,
            span_days: 2,
            queue_feedback: feedback,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    let a = analyze_system(&trace);
    match (
        a.submission.request_shares[0],
        a.submission.request_shares[2],
    ) {
        (Some(short), Some(long)) => Some(long[0] - short[0]),
        _ => None,
    }
}

fn bench(c: &mut Criterion) {
    println!("\n== Queue-feedback ablation (Philly, 2 days) ==");
    println!("minimal-request share gradient (long queue − short queue):");
    println!("  with feedback    : {:?}", minimal_gradient(true));
    println!("  without feedback : {:?}", minimal_gradient(false));

    let cfg_off = GeneratorConfig {
        seed: 1,
        span_days: 1,
        queue_feedback: false,
        ..GeneratorConfig::default()
    };
    let mut g = c.benchmark_group("ablation_feedback");
    g.sample_size(10);
    g.bench_function("generate_helios_no_feedback", |b| {
        b.iter(|| {
            let p = systems::profile_for(SystemId::Helios);
            black_box(Generator::new(p, cfg_off).generate())
        })
    });
    let cfg_on = GeneratorConfig {
        queue_feedback: true,
        ..cfg_off
    };
    g.bench_function("generate_helios_with_feedback", |b| {
        b.iter(|| {
            black_box(Generator::new(systems::profile_for(SystemId::Helios), cfg_on).generate())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
