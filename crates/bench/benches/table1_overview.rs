//! Table I — dataset overview. Prints the regenerated table once, then
//! benchmarks trace generation for the whole suite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    let rows: Vec<_> = analyses.iter().map(|a| a.overview.clone()).collect();
    println!("\n== Table I (regenerated) ==");
    print!("{}", lumos_analysis::report::render_table(&rows));

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("generate_suite_1day", |b| {
        b.iter(|| black_box(lumos_bench::suite(black_box(1), 1)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
