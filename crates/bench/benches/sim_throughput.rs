//! Simulator throughput: jobs/second through the event engine under each
//! backfilling discipline — the performance envelope that makes the
//! parameter sweeps in Table II and the ablations tractable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumos_core::SystemId;
use lumos_sim::{simulate, Backfill, SimConfig};
use lumos_traces::{systems, Generator, GeneratorConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Helios: tens of thousands of small jobs per day — the stress case.
    let trace = Generator::new(
        systems::profile_for(SystemId::Helios),
        GeneratorConfig {
            seed: 1,
            span_days: 1,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    println!("\nsim_throughput workload: {} Helios jobs", trace.len());

    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for backfill in [Backfill::None, Backfill::Easy, Backfill::Conservative] {
        let cfg = SimConfig {
            backfill,
            record_timeline: false,
            ..SimConfig::default()
        };
        g.bench_function(backfill.name(), |b| {
            b.iter(|| black_box(simulate(black_box(&trace), &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
