//! Simulator throughput: jobs/second through the event engine under each
//! backfilling discipline, plus the sequential-vs-parallel timing of the
//! Table II sweep — the performance envelope that makes the paper's
//! parameter studies tractable.
//!
//! Unlike the figure benches this harness measures wall-clock itself (the
//! vendored criterion stub does not expose measured durations) and can
//! emit / gate against the machine-readable `BENCH_sim.json` report:
//!
//! * `BENCH_QUICK=1` — reduced configuration (1-day trace, fewer
//!   samples); what CI's `bench-smoke` job runs.
//! * `BENCH_SIM_OUT=path` — write the report as JSON to `path`.
//! * `BENCH_SIM_BASELINE=path` — compare against a committed baseline
//!   and exit non-zero on a regression beyond the tolerance.
//! * `BENCH_SIM_TOLERANCE=0.20` — override the regression tolerance.
//! * `BENCH_REQUIRE_SPEEDUP=2.0` — fail unless the parallel sweep hits
//!   the given speedup. The check needs a host with ≥ 4 threads; when it
//!   cannot run (fewer threads, sweep skipped, unparseable value) the
//!   bench fails loudly instead of skipping the gate.
//!
//! See `docs/PERFORMANCE.md` for the full methodology.

use lumos_bench::perf::{policy_perf, PerfReport, SweepPerf, DEFAULT_TOLERANCE, PERF_SCHEMA};
use lumos_bench::table2::{run_system, table2_cells};
use lumos_core::SystemId;
use lumos_sim::{simulate, Backfill, SimConfig};
use lumos_traces::{systems, Generator, GeneratorConfig};
use rayon::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 1;

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Resolves a `BENCH_SIM_*` path. Cargo runs benches with the *package*
/// directory as cwd, so relative paths are anchored at the workspace root
/// (two levels up from `crates/bench`) — where `BENCH_sim.json` lives and
/// where CI invokes everything from.
fn resolve(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

/// Best-of-`samples` wall-clock seconds for `f` (after one warmup call).
fn best_of<R>(samples: u32, mut f: impl FnMut() -> R) -> f64 {
    black_box(f()); // warmup: touch the allocator, fault the trace in
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = env_flag("BENCH_QUICK");
    let (span_days, samples) = if quick { (1, 5) } else { (2, 7) };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Helios: tens of thousands of small jobs per day — the stress case.
    let trace = Generator::new(
        systems::profile_for(SystemId::Helios),
        GeneratorConfig {
            seed: SEED,
            span_days,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    println!(
        "\nsim_throughput workload: {} Helios jobs over {span_days} day(s), \
         best of {samples}, {host_threads} host thread(s){}",
        trace.len(),
        if quick { ", quick profile" } else { "" },
    );

    let mut policies = Vec::new();
    for backfill in [Backfill::None, Backfill::Easy, Backfill::Conservative] {
        let cfg = SimConfig {
            backfill,
            record_timeline: false,
            ..SimConfig::default()
        };
        let events = simulate(&trace, &cfg).events;
        let seconds = best_of(samples, || simulate(&trace, &cfg));
        let perf = policy_perf(backfill.name(), trace.len(), events, seconds);
        println!(
            "  {:<14} {:>9.0} jobs/sec  {:>9.0} events/sec  ({:.3}s)",
            perf.policy, perf.jobs_per_sec, perf.events_per_sec, perf.seconds
        );
        policies.push(perf);
    }

    // Parallel sweep: the Table II grid, pool pinned to 1 thread vs the
    // host's full count. Vacuous on a single-threaded host — skipped.
    let sweep = (host_threads > 1).then(|| {
        let cells = table2_cells(0.10);
        let sweep_days = 1;
        let run_all = || -> Vec<_> {
            cells
                .par_iter()
                .map(|&(id, relax)| run_system(id, SEED, sweep_days, relax))
                .collect()
        };
        let pool = |n| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool builds")
        };
        let seq_seconds = best_of(1, || pool(1).install(run_all));
        let par_seconds = best_of(1, || pool(host_threads).install(run_all));
        let sweep = SweepPerf {
            tasks: cells.len(),
            threads: host_threads,
            seq_seconds,
            par_seconds,
            speedup: seq_seconds / par_seconds.max(1e-9),
        };
        println!(
            "  table2 sweep   {} cells: {:.3}s @1 thread, {:.3}s @{} threads — {:.2}x",
            sweep.tasks, sweep.seq_seconds, sweep.par_seconds, sweep.threads, sweep.speedup
        );
        sweep
    });
    if sweep.is_none() {
        println!("  table2 sweep   skipped: single-threaded host");
    }

    let report = PerfReport {
        schema: PERF_SCHEMA,
        seed: SEED,
        span_days,
        workload_jobs: trace.len(),
        host_threads,
        quick,
        policies,
        sweep,
    };

    if let Ok(path) = std::env::var("BENCH_SIM_OUT") {
        std::fs::write(resolve(&path), report.to_json()).expect("write BENCH_SIM_OUT");
        println!("  report written to {path}");
    }

    let mut failed = false;
    if let Ok(path) = std::env::var("BENCH_SIM_BASELINE") {
        let text = std::fs::read_to_string(resolve(&path)).expect("read BENCH_SIM_BASELINE");
        let baseline = PerfReport::from_json(&text).expect("parse baseline report");
        let tolerance = env_f64("BENCH_SIM_TOLERANCE").unwrap_or(DEFAULT_TOLERANCE);
        let findings = report.regressions(&baseline, tolerance);
        if findings.is_empty() {
            println!(
                "  gate: no regression vs {path} (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            for f in &findings {
                eprintln!("  REGRESSION: {f}");
            }
            failed = true;
        }
    }
    if let Ok(raw) = std::env::var("BENCH_REQUIRE_SPEEDUP") {
        // Never let the gate pass vacuously: if the caller asked for a
        // speedup check and it cannot run (bad value, no sweep, too few
        // threads), that is a loud failure, not a silent skip — a CI
        // host quietly downgraded to 2 cores must not turn the gate off.
        match raw.parse::<f64>() {
            Err(e) => {
                eprintln!("  GATE ERROR: BENCH_REQUIRE_SPEEDUP={raw}: {e}");
                failed = true;
            }
            Ok(required) => match &report.sweep {
                None => {
                    eprintln!(
                        "  GATE ERROR: BENCH_REQUIRE_SPEEDUP={required:.2} set but the \
                         sweep was skipped (single-threaded host) — the check cannot run"
                    );
                    failed = true;
                }
                Some(_) if report.host_threads < 4 => {
                    eprintln!(
                        "  GATE ERROR: BENCH_REQUIRE_SPEEDUP={required:.2} set but the \
                         host has only {} threads (need ≥ 4) — the check cannot run",
                        report.host_threads
                    );
                    failed = true;
                }
                Some(s) if s.speedup < required => {
                    eprintln!(
                        "  REGRESSION: sweep speedup {:.2}x below required {required:.2}x \
                         on {} threads",
                        s.speedup, s.threads
                    );
                    failed = true;
                }
                Some(s) => {
                    println!(
                        "  gate: sweep speedup {:.2}x meets required {required:.2}x",
                        s.speedup
                    );
                }
            },
        }
    }
    if failed {
        std::process::exit(1);
    }
}
