//! Table II — adaptive relaxed backfilling vs fixed relaxed backfilling.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_bench::table2::{run_system, run_table2};
use lumos_core::SystemId;
use lumos_sim::Relax;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // HPC arrivals are sparse: use a longer window for stable numbers.
    let rows = run_table2(lumos_bench::DEFAULT_SEED, 1, 0.10);
    println!("\n== Table II (regenerated) ==");
    print!("{}", lumos_bench::render::table2(&rows));

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("theta_adaptive_replay", |b| {
        b.iter(|| {
            black_box(run_system(
                SystemId::Theta,
                black_box(1),
                4,
                Relax::Adaptive { base: 0.10 },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
