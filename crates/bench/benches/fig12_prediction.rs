//! Fig. 12 — runtime prediction with/without elapsed time.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_core::SystemId;
use lumos_predict::evaluate_trace;
use lumos_traces::{systems, Generator, GeneratorConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let results = lumos_bench::fig12::run_fig12(lumos_bench::DEFAULT_SEED, 1, 8_000);
    println!("\n== Fig. 12 (regenerated) ==");
    print!("{}", lumos_bench::render::fig12(&results));

    let trace = Generator::new(
        systems::profile_for(SystemId::Philly),
        GeneratorConfig {
            seed: 3,
            span_days: 1,
            ..GeneratorConfig::default()
        },
    )
    .generate();

    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("prediction_grid_philly_4k", |b| {
        b.iter(|| black_box(evaluate_trace(black_box(&trace), &[0.25], 4_000)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
