//! Ablation: relaxation-factor sweep (DESIGN.md §4.2).
//!
//! Strict vs fixed {5, 10, 20} % vs adaptive {5, 10, 20} % on Theta —
//! shows that fixed factors buy backfill opportunities at a violation cost
//! that grows with the factor, while the adaptive rule keeps violations
//! flat.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_bench::table2::relax_ablation;
use lumos_core::SystemId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sweep = relax_ablation(SystemId::Theta, lumos_bench::DEFAULT_SEED, 4);
    println!("\n== Relaxation-factor ablation (Theta, 4 days) ==");
    println!(
        "{:<14} {:>12} {:>8} {:>8} {:>12} {:>10}",
        "variant", "mean wait", "bsld", "util", "violation", "violated"
    );
    for (name, m) in &sweep {
        println!(
            "{:<14} {:>11.0}s {:>8.2} {:>7.1}% {:>11.1}s {:>10}",
            name,
            m.mean_wait,
            m.mean_bsld,
            m.util * 100.0,
            m.violation,
            m.violated_jobs,
        );
    }

    let mut g = c.benchmark_group("ablation_relax");
    g.sample_size(10);
    g.bench_function("sweep_theta_1day", |b| {
        b.iter(|| black_box(relax_ablation(SystemId::Theta, black_box(2), 1)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
