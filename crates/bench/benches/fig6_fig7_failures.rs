//! Figs. 6–7 — failure distributions and geometry correlations.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::failures;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Figs. 6-7 (regenerated) ==");
    print!("{}", lumos_bench::render::fig6_fig7(&analyses));

    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let bw = traces
        .iter()
        .find(|t| t.system.name == "Blue Waters")
        .unwrap();

    let mut g = c.benchmark_group("fig6_fig7");
    g.sample_size(10);
    g.bench_function("failure_analysis_blue_waters", |b| {
        b.iter(|| black_box(failures::failure_analysis(black_box(bw))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
