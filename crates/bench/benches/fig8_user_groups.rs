//! Fig. 8 — per-user resource-configuration groups.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::user_groups;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Fig. 8 (regenerated) ==");
    print!("{}", lumos_bench::render::fig8(&analyses));

    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let philly = traces.iter().find(|t| t.system.name == "Philly").unwrap();

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("group_curve_philly_top20", |b| {
        b.iter(|| black_box(user_groups::group_curve(black_box(philly), 20)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
