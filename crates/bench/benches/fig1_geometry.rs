//! Fig. 1 — job geometries (runtime, arrival, resources). Prints the
//! regenerated per-system summary, then benchmarks the geometry analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::geometry;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Fig. 1 (regenerated) ==");
    print!("{}", lumos_bench::render::fig1(&analyses));

    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let helios = traces.iter().find(|t| t.system.name == "Helios").unwrap();

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("runtime_geometry_helios", |b| {
        b.iter(|| black_box(geometry::runtime_geometry(black_box(helios))))
    });
    g.bench_function("arrival_geometry_helios", |b| {
        b.iter(|| black_box(geometry::arrival_geometry(black_box(helios))))
    });
    g.bench_function("resource_geometry_helios", |b| {
        b.iter(|| black_box(geometry::resource_geometry(black_box(helios))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
