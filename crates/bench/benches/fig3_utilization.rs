//! Fig. 3 — system utilization timelines (requires a scheduler replay).

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_sim::{simulate, SimConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Fig. 3 (regenerated) ==");
    print!("{}", lumos_bench::render::fig3(&analyses));

    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let philly = traces.iter().find(|t| t.system.name == "Philly").unwrap();
    let cfg = SimConfig::default();

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("replay_philly_with_timeline", |b| {
        b.iter(|| black_box(simulate(black_box(philly), &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
