//! Figs. 9–10 — queue-length-conditioned submission behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::submission;
use lumos_core::Trace;
use lumos_sim::{simulate, SimConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Figs. 9-10 (regenerated) ==");
    print!("{}", lumos_bench::render::fig9_fig10(&analyses));

    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let philly = traces.iter().find(|t| t.system.name == "Philly").unwrap();
    let result = simulate(philly, &SimConfig::default());
    let replayed = Trace::new(philly.system.clone(), result.jobs).unwrap();

    let mut g = c.benchmark_group("fig9_fig10");
    g.sample_size(10);
    g.bench_function("submission_behaviour_philly", |b| {
        b.iter(|| black_box(submission::submission_behaviour(black_box(&replayed))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
