//! Fig. 11 — per-user runtime violins by job status.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::user_failures;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Fig. 11 (regenerated) ==");
    print!("{}", lumos_bench::render::fig11(&analyses));

    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let bw = traces
        .iter()
        .find(|t| t.system.name == "Blue Waters")
        .unwrap();

    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("top_user_violins_blue_waters", |b| {
        b.iter(|| black_box(user_failures::top_user_violins(black_box(bw), 3)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
