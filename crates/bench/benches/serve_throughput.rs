//! Serve fast-path throughput: acknowledged commands/second through a
//! live loopback server under each fsync policy × group-commit size,
//! with pipelined submissions — the matrix that shows what group-commit
//! journaling buys under full durability.
//!
//! Like `sim_throughput` this harness measures wall-clock itself and can
//! emit / gate against the machine-readable `BENCH_serve.json` report:
//!
//! * `BENCH_QUICK=1` — reduced configuration (fewer commands); what
//!   CI's `bench-smoke` job runs.
//! * `BENCH_SERVE_OUT=path` — write the report as JSON to `path`.
//! * `BENCH_SERVE_BASELINE=path` — compare against a committed baseline
//!   and exit non-zero on a regression beyond the tolerance.
//! * `BENCH_SERVE_TOLERANCE=0.35` — override the regression tolerance.
//! * `BENCH_SERVE_REQUIRE_SPEEDUP=3.0` — fail unless group commit beats
//!   per-record commits by the given factor under `--fsync always`.
//!
//! See `docs/PERFORMANCE.md` for the full methodology.

use lumos_bench::perf::{serve_cell_perf, ServeCellPerf, ServePerfReport, PERF_SCHEMA};
use lumos_core::SystemSpec;
use lumos_serve::{FsyncPolicy, JournalConfig, ServeConfig, Server};
use lumos_sim::SimConfig;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Outstanding pipelined commands — well under the submission queue
/// bound so no command is ever refused for backpressure mid-measurement.
const WINDOW: usize = 256;

/// The fsync-policy half of the measurement matrix. Wider-than-default
/// regression tolerance: fsync timing on shared runners is far noisier
/// than the in-process simulator replay.
const DEFAULT_SERVE_TOLERANCE: f64 = 0.35;

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Resolves a `BENCH_SERVE_*` path relative to the workspace root (cargo
/// runs benches with the package directory as cwd).
fn resolve(path: &str) -> PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(p)
    }
}

/// A fresh, unique journal directory under the system temp dir.
fn journal_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lumos-serve-bench-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create journal dir");
    dir
}

/// The benchmark command stream: pipelined single-unit submissions with a
/// periodic `Advance` so completed jobs drain and the scheduler's active
/// set stays small — the measurement isolates the journaling and reply
/// path, not skyline growth.
fn commands(n: usize) -> Vec<String> {
    let mut cmds = Vec::with_capacity(n);
    for i in 0..n {
        if i % 64 == 63 {
            cmds.push(format!(r#"{{"Advance":{{"to":{i}}}}}"#));
        } else {
            cmds.push(format!(
                r#"{{"Submit":{{"job":{{"id":{i},"procs":1,"runtime":1}}}}}}"#
            ));
        }
    }
    cmds
}

/// One full measured run: bind a journaling server, pipeline `cmds` over
/// loopback with a [`WINDOW`]-deep sliding window, and return (seconds
/// from first submit to last ack, p99 ack latency in ms).
fn run_cell(fsync: FsyncPolicy, group_commit: usize, cmds: &[String]) -> (f64, f64) {
    let dir = journal_dir();
    let mut journal = JournalConfig::new(dir.clone());
    journal.fsync = fsync;
    journal.snapshot_every = 0; // no rotation mid-measurement
    let mut config = ServeConfig::new(SystemSpec::theta());
    config.sim = SimConfig::default();
    config.queue_capacity = 2 * WINDOW.max(512);
    config.journal = Some(journal);
    config.group_commit = group_commit;

    let server = Server::bind("127.0.0.1:0", config).expect("bind bench server");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run(false));

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut in_flight: VecDeque<Instant> = VecDeque::with_capacity(WINDOW);
    let mut latencies: Vec<f64> = Vec::with_capacity(cmds.len());
    let mut line = String::new();
    let mut read_ack = |reader: &mut BufReader<TcpStream>, sent: Instant| {
        line.clear();
        reader.read_line(&mut line).expect("read ack");
        assert!(!line.is_empty(), "server closed mid-measurement");
        assert!(
            !line.contains("Rejected") && !line.contains("Error"),
            "refused command pollutes the measurement: {line}"
        );
        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
    };

    let start = Instant::now();
    for cmd in cmds {
        if in_flight.len() == WINDOW {
            let sent = in_flight.pop_front().expect("window non-empty");
            read_ack(&mut reader, sent);
        }
        writeln!(writer, "{cmd}").expect("write command");
        writer.flush().expect("flush command");
        in_flight.push_back(Instant::now());
    }
    while let Some(sent) = in_flight.pop_front() {
        read_ack(&mut reader, sent);
    }
    let seconds = start.elapsed().as_secs_f64();

    writeln!(writer, "\"Shutdown\"").expect("write shutdown");
    writer.flush().expect("flush shutdown");
    line.clear();
    reader.read_line(&mut line).expect("read bye");
    handle.join().expect("server thread").expect("server run");
    std::fs::remove_dir_all(&dir).ok();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99 = latencies[(latencies.len() * 99) / 100 - 1];
    (seconds, p99)
}

/// Best-of-`samples` run of one cell (after one warmup run).
fn measure_cell(
    fsync: FsyncPolicy,
    group_commit: usize,
    cmds: &[String],
    samples: u32,
) -> ServeCellPerf {
    run_cell(fsync, group_commit, cmds); // warmup: fault the binary in
    let mut best_seconds = f64::INFINITY;
    let mut best_p99 = f64::INFINITY;
    for _ in 0..samples {
        let (seconds, p99) = run_cell(fsync, group_commit, cmds);
        if seconds < best_seconds {
            best_seconds = seconds;
            best_p99 = p99;
        }
    }
    serve_cell_perf(
        &fsync.to_string(),
        group_commit,
        cmds.len(),
        best_seconds,
        best_p99,
    )
}

fn main() {
    let quick = env_flag("BENCH_QUICK");
    let (n, samples) = if quick { (2_000, 3) } else { (4_000, 3) };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cmds = commands(n);
    println!(
        "\nserve_throughput workload: {n} pipelined commands over loopback, \
         window {WINDOW}, best of {samples}, {host_threads} host thread(s){}",
        if quick { ", quick profile" } else { "" },
    );

    let mut cells = Vec::new();
    for fsync in [
        FsyncPolicy::Always,
        FsyncPolicy::Interval(5),
        FsyncPolicy::Never,
    ] {
        for group_commit in [1, 64] {
            let cell = measure_cell(fsync, group_commit, &cmds, samples);
            println!(
                "  {:<16} {:>9.0} cmds/sec  p99 ack {:>7.3} ms  ({:.3}s)",
                cell.cell, cell.cmds_per_sec, cell.p99_ack_ms, cell.seconds
            );
            cells.push(cell);
        }
    }

    let rate = |key: &str| {
        cells
            .iter()
            .find(|c| c.cell == key)
            .map_or(0.0, |c| c.cmds_per_sec)
    };
    let group_commit_speedup = rate("always/g64") / rate("always/g1").max(1e-9);
    println!(
        "  group commit   {group_commit_speedup:.2}x cmds/sec over per-record \
         commits under fsync always"
    );

    let report = ServePerfReport {
        schema: PERF_SCHEMA,
        quick,
        commands: n,
        host_threads,
        cells,
        group_commit_speedup,
    };

    if let Ok(path) = std::env::var("BENCH_SERVE_OUT") {
        std::fs::write(resolve(&path), report.to_json()).expect("write BENCH_SERVE_OUT");
        println!("  report written to {path}");
    }

    let mut failed = false;
    if let Ok(path) = std::env::var("BENCH_SERVE_BASELINE") {
        let text = std::fs::read_to_string(resolve(&path)).expect("read BENCH_SERVE_BASELINE");
        let baseline = ServePerfReport::from_json(&text).expect("parse baseline report");
        let tolerance = env_f64("BENCH_SERVE_TOLERANCE").unwrap_or(DEFAULT_SERVE_TOLERANCE);
        let findings = report.regressions(&baseline, tolerance);
        if findings.is_empty() {
            println!(
                "  gate: no regression vs {path} (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            for f in &findings {
                eprintln!("  REGRESSION: {f}");
            }
            failed = true;
        }
    }
    if let Ok(raw) = std::env::var("BENCH_SERVE_REQUIRE_SPEEDUP") {
        // Mirrors BENCH_REQUIRE_SPEEDUP: an unusable value fails loudly
        // rather than silently disabling the gate.
        match raw.parse::<f64>() {
            Err(e) => {
                eprintln!("  GATE ERROR: BENCH_SERVE_REQUIRE_SPEEDUP={raw}: {e}");
                failed = true;
            }
            Ok(required) if group_commit_speedup < required => {
                eprintln!(
                    "  REGRESSION: group-commit speedup {group_commit_speedup:.2}x \
                     below required {required:.2}x under fsync always"
                );
                failed = true;
            }
            Ok(required) => {
                println!(
                    "  gate: group-commit speedup {group_commit_speedup:.2}x meets \
                     required {required:.2}x"
                );
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
