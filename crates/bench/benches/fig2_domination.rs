//! Fig. 2 — core-hour domination by size and length class.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_analysis::domination;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let analyses = lumos_bench::analyzed_suite(lumos_bench::DEFAULT_SEED, 1);
    println!("\n== Fig. 2 (regenerated) ==");
    print!("{}", lumos_bench::render::fig2(&analyses));

    let traces = lumos_bench::suite(lumos_bench::DEFAULT_SEED, 1);
    let bw = traces
        .iter()
        .find(|t| t.system.name == "Blue Waters")
        .unwrap();

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("domination_blue_waters", |b| {
        b.iter(|| black_box(domination::domination(black_box(bw))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
