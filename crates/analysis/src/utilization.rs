//! System utilization — paper Fig. 3.
//!
//! A thin wrapper over the simulator's recorded timeline: the paper plots
//! per-system utilization over the trace window; Takeaway 5 contrasts the
//! DL clusters' low utilization (Philly ≈ 43 % average) with the > 85 %
//! utilization of the HPC machines.

use lumos_sim::SimResult;
use serde::Serialize;

/// Fig. 3 data for one system.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Utilization {
    /// Time-weighted mean utilization.
    pub mean: f64,
    /// Utilization measured over the submission window (the headline
    /// `util` number).
    pub window_util: f64,
    /// Binned utilization series `(time, util)`.
    pub series: Vec<(i64, f64)>,
    /// Fraction of time the machine was over 80 % utilized — the paper's
    /// "most of the time, less than 80 % of the GPUs are used" observation
    /// inverts to a small value on DL clusters.
    pub time_above_80: f64,
}

/// Computes Fig. 3 from a replay result with `bins` time windows.
#[must_use]
pub fn utilization(result: &SimResult, bins: usize) -> Utilization {
    let series = result.timeline.binned(bins);
    let above = if series.is_empty() {
        0.0
    } else {
        series.iter().filter(|&&(_, u)| u > 0.8).count() as f64 / series.len() as f64
    };
    Utilization {
        mean: result.timeline.mean_util(),
        window_util: result.metrics.util,
        series,
        time_above_80: above,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec, Trace};
    use lumos_sim::{simulate, SimConfig};

    fn tiny_trace(jobs: Vec<Job>) -> Trace {
        let mut s = SystemSpec::theta();
        s.total_nodes = 100;
        s.units_per_node = 1;
        s.total_units = 100;
        Trace::new(s, jobs).unwrap()
    }

    #[test]
    fn full_machine_is_fully_utilized() {
        let t = tiny_trace(vec![
            Job::basic(1, 1, 0, 100, 100),
            Job::basic(2, 1, 50, 100, 100),
        ]);
        let r = simulate(&t, &SimConfig::default());
        let u = utilization(&r, 4);
        assert!(u.mean > 0.9, "mean {}", u.mean);
        assert!(u.time_above_80 > 0.9);
        assert_eq!(u.series.len(), 4);
    }

    #[test]
    fn idle_machine_shows_low_utilization() {
        let t = tiny_trace(vec![
            Job::basic(1, 1, 0, 10, 1),
            Job::basic(2, 1, 1_000, 10, 1),
        ]);
        let r = simulate(&t, &SimConfig::default());
        let u = utilization(&r, 4);
        assert!(u.mean < 0.1, "mean {}", u.mean);
        assert_eq!(u.time_above_80, 0.0);
    }
}
