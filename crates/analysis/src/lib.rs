//! # lumos-analysis
//!
//! The cross-system characterization engine: one module per paper figure.
//!
//! | Module | Paper content |
//! |---|---|
//! | [`geometry`] | Fig. 1 — runtime / arrival / resource geometries |
//! | [`domination`] | Fig. 2 — core-hour domination by size & length class |
//! | [`utilization`] | Fig. 3 — utilization timelines |
//! | [`waiting`] | Figs. 4–5 — waiting & turnaround CDFs, waits by class |
//! | [`failures`] | Figs. 6–7 — status distributions and their geometry correlations |
//! | [`user_groups`] | Fig. 8 — per-user resource-configuration groups |
//! | [`submission`] | Figs. 9–10 — queue-length-conditioned submission behaviour |
//! | [`user_failures`] | Fig. 11 — per-user runtime violins by status |
//! | [`report`] | Table I — dataset overview |
//! | [`takeaways`] | the paper's eight takeaways, evaluated on data |
//!
//! The umbrella entry point is [`analyze_system`] / [`analyze_suite`], which
//! replay each trace through `lumos-sim` (the traces carry no observed
//! waits) and run every per-figure analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domination;
pub mod failures;
pub mod geometry;
pub mod periodicity;
pub mod report;
pub mod submission;
pub mod takeaways;
pub mod user_failures;
pub mod user_groups;
pub mod utilization;
pub mod waiting;

use lumos_core::Trace;
use lumos_sim::{simulate, SimConfig};
use rayon::prelude::*;
use serde::Serialize;

/// Everything the paper reports about one system, computed from one trace.
#[derive(Debug, Clone, Serialize)]
pub struct SystemAnalysis {
    /// System name.
    pub system: String,
    /// Table I row.
    pub overview: report::OverviewRow,
    /// Fig. 1a.
    pub runtime: geometry::RuntimeGeometry,
    /// Fig. 1b.
    pub arrival: geometry::ArrivalGeometry,
    /// Fig. 1c.
    pub resources: geometry::ResourceGeometry,
    /// Fig. 2.
    pub domination: domination::Domination,
    /// Fig. 3.
    pub utilization: utilization::Utilization,
    /// Figs. 4–5.
    pub waiting: waiting::WaitingAnalysis,
    /// Figs. 6–7.
    pub failures: failures::FailureAnalysis,
    /// Fig. 8.
    pub user_groups: user_groups::GroupCurve,
    /// Figs. 9–10.
    pub submission: submission::SubmissionBehaviour,
    /// Fig. 11.
    pub user_failures: Vec<user_failures::UserStatusViolins>,
}

/// Replays `trace` with the given scheduler configuration and runs every
/// per-figure analysis on the result.
#[must_use]
pub fn analyze_system_with(trace: &Trace, sim: &SimConfig) -> SystemAnalysis {
    let result = simulate(trace, sim);
    // Rebuild a trace whose jobs carry the observed waits, for the
    // wait-dependent analyses.
    let replayed =
        Trace::new(trace.system.clone(), result.jobs.clone()).expect("replay preserves validity");

    SystemAnalysis {
        system: trace.system.name.clone(),
        overview: report::overview(trace),
        runtime: geometry::runtime_geometry(trace),
        arrival: geometry::arrival_geometry(trace),
        resources: geometry::resource_geometry(trace),
        domination: domination::domination(trace),
        utilization: utilization::utilization(&result, 48),
        waiting: waiting::waiting_analysis(&replayed),
        failures: failures::failure_analysis(trace),
        user_groups: user_groups::group_curve(trace, 20),
        submission: submission::submission_behaviour(&replayed),
        user_failures: user_failures::top_user_violins(trace, 3),
    }
}

/// [`analyze_system_with`] under the default scheduler (FCFS + strict EASY,
/// virtual clusters honoured) — the configuration the paper's observational
/// sections correspond to.
#[must_use]
pub fn analyze_system(trace: &Trace) -> SystemAnalysis {
    analyze_system_with(trace, &SimConfig::default())
}

/// Analyzes many systems in parallel (rayon), preserving input order.
#[must_use]
pub fn analyze_suite(traces: &[Trace]) -> Vec<SystemAnalysis> {
    traces.par_iter().map(analyze_system).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::SystemId;
    use lumos_traces::{systems, Generator, GeneratorConfig};

    #[test]
    fn analyze_system_produces_complete_output() {
        let trace = Generator::new(
            systems::profile_for(SystemId::Helios),
            GeneratorConfig {
                seed: 1,
                span_days: 1,
                ..GeneratorConfig::default()
            },
        )
        .generate();
        let a = analyze_system(&trace);
        assert_eq!(a.system, "Helios");
        assert!(a.overview.job_count > 100);
        assert!(a.runtime.median > 0.0);
        assert!(!a.user_failures.is_empty());
        // The analysis serializes (CLI contract).
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.len() > 1_000);
    }
}
