//! Per-user resource-configuration groups — paper Fig. 8.
//!
//! The "resource-configuration" of a job is the pair `[procs, runtime]`.
//! Two jobs from the same user belong to the same group when they request
//! exactly the same number of units and their runtimes lie within 10 % of
//! the group's mean runtime (§V.A, following Patel et al.). The figure
//! plots, averaged over representative (heavy) users, the cumulative share
//! of each user's jobs covered by their top-k groups, k = 1..10.

use lumos_core::{Trace, UserId};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::HashMap;

/// Fig. 8 data for one system.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GroupCurve {
    /// `cumulative[k-1]` = average share of a user's jobs inside their top-k
    /// groups.
    pub cumulative: [f64; 10],
    /// Users averaged over.
    pub users: usize,
}

/// Groups one user's runtimes (all with equal `procs`) greedily: runtimes
/// are sorted; a runtime joins the current group while it stays within 10 %
/// of the group's running mean, else it opens a new group. Returns group
/// sizes.
fn cluster_runtimes(mut runtimes: Vec<f64>) -> Vec<usize> {
    runtimes.sort_by(|a, b| a.partial_cmp(b).expect("no NaN runtimes"));
    let mut groups = Vec::new();
    let mut count = 0usize;
    let mut mean = 0.0f64;
    for r in runtimes {
        if count == 0 {
            count = 1;
            mean = r;
            continue;
        }
        let candidate_mean = (mean * count as f64 + r) / (count + 1) as f64;
        // Membership rule: the newcomer stays within 10 % of the group's
        // mean. Sorted input means `r` is always the current extreme.
        if (r - candidate_mean).abs() <= 0.10 * candidate_mean {
            count += 1;
            mean = candidate_mean;
        } else {
            groups.push(count);
            count = 1;
            mean = r;
        }
    }
    if count > 0 {
        groups.push(count);
    }
    groups
}

/// Cumulative top-10 group share for one user's jobs.
fn user_curve(trace: &Trace, user: UserId) -> Option<([f64; 10], usize)> {
    let mut by_procs: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut total = 0usize;
    for j in trace.jobs() {
        if j.user == user {
            by_procs.entry(j.procs).or_default().push(j.runtime as f64);
            total += 1;
        }
    }
    if total < 10 {
        return None; // not enough jobs to be a representative user
    }
    let mut group_sizes: Vec<usize> = by_procs.into_values().flat_map(cluster_runtimes).collect();
    group_sizes.sort_unstable_by(|a, b| b.cmp(a));
    let mut curve = [0.0f64; 10];
    let mut acc = 0usize;
    for (k, slot) in curve.iter_mut().enumerate() {
        if let Some(&size) = group_sizes.get(k) {
            acc += size;
        }
        *slot = acc as f64 / total as f64;
    }
    Some((curve, total))
}

/// Computes Fig. 8: the average cumulative curve over the `top_n` heaviest
/// users (those with ≥ 10 jobs).
#[must_use]
pub fn group_curve(trace: &Trace, top_n: usize) -> GroupCurve {
    let heavy = trace.top_users(top_n);
    let curves: Vec<[f64; 10]> = heavy
        .par_iter()
        .filter_map(|&(u, _)| user_curve(trace, u).map(|(c, _)| c))
        .collect();
    if curves.is_empty() {
        return GroupCurve {
            cumulative: [0.0; 10],
            users: 0,
        };
    }
    let mut cumulative = [0.0f64; 10];
    for c in &curves {
        for (acc, v) in cumulative.iter_mut().zip(c) {
            *acc += v;
        }
    }
    for acc in &mut cumulative {
        *acc /= curves.len() as f64;
    }
    GroupCurve {
        cumulative,
        users: curves.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    #[test]
    fn identical_runtimes_form_one_group() {
        let g = cluster_runtimes(vec![100.0; 50]);
        assert_eq!(g, vec![50]);
    }

    #[test]
    fn distant_runtimes_split() {
        let g = cluster_runtimes(vec![100.0, 100.0, 500.0, 500.0]);
        assert_eq!(g, vec![2, 2]);
    }

    #[test]
    fn ten_percent_window_is_respected() {
        // 100 and 109: candidate mean 104.5, |109−104.5| = 4.5 ≤ 10.45 ⇒ same.
        assert_eq!(cluster_runtimes(vec![100.0, 109.0]), vec![2]);
        // 100 and 130: candidate mean 115, |130−115| = 15 > 11.5 ⇒ split.
        assert_eq!(cluster_runtimes(vec![100.0, 130.0]), vec![1, 1]);
    }

    #[test]
    fn repetitive_user_has_high_top1_share() {
        let spec = SystemSpec::philly();
        let mut jobs: Vec<Job> = (0..90)
            .map(|i| Job::basic(i, 7, i as i64, 300, 1))
            .collect();
        jobs.extend((90..100).map(|i| Job::basic(i, 7, i as i64, 50_000 + 5_000 * i as i64, 8)));
        let t = Trace::new(spec, jobs).unwrap();
        let g = group_curve(&t, 5);
        assert_eq!(g.users, 1);
        assert!(g.cumulative[0] >= 0.9, "top-1 share {}", g.cumulative[0]);
        assert!(g.cumulative[9] <= 1.0 + 1e-12);
        // Curve is non-decreasing.
        for w in g.cumulative.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn different_procs_never_share_groups() {
        let spec = SystemSpec::philly();
        let mut jobs: Vec<Job> = (0..10)
            .map(|i| Job::basic(i, 1, i as i64, 100, 1))
            .collect();
        jobs.extend((10..20).map(|i| Job::basic(i, 1, i as i64, 100, 2)));
        let t = Trace::new(spec, jobs).unwrap();
        let g = group_curve(&t, 1);
        // Two groups of 10 each: top-1 = 0.5, top-2 = 1.0.
        assert!((g.cumulative[0] - 0.5).abs() < 1e-12);
        assert!((g.cumulative[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn light_users_are_excluded() {
        let spec = SystemSpec::philly();
        let jobs: Vec<Job> = (0..5).map(|i| Job::basic(i, 9, i as i64, 100, 1)).collect();
        let t = Trace::new(spec, jobs).unwrap();
        let g = group_curve(&t, 3);
        assert_eq!(g.users, 0);
    }
}
