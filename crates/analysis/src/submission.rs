//! Queue-length-conditioned submission behaviour — paper Figs. 9 & 10.
//!
//! For every submission event, reconstruct the queue length at that moment
//! (jobs submitted but not yet started), classify it into the short /
//! middle / long terciles of the *maximum observed* queue, and tabulate
//! what users request: resource class (Fig. 9, with the extra `Minimal`
//! bucket) and runtime class (Fig. 10). The paper's Takeaway 8: users
//! submit smaller jobs under congestion everywhere, and *shorter* jobs
//! under congestion only on the DL systems.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lumos_core::{QueueClass, RequestClass, RuntimeClass, Trace};
use serde::Serialize;

/// Figs. 9–10 data for one system.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SubmissionBehaviour {
    /// Maximum observed queue length.
    pub max_queue: usize,
    /// Submissions per queue class.
    pub submissions: [usize; 3],
    /// Fig. 9: `request_shares[queue_class][request_class]`
    /// (Minimal, Small, Middle, Large). `None` for empty queue classes.
    pub request_shares: [Option<[f64; 4]>; 3],
    /// Fig. 10: `runtime_shares[queue_class][runtime_class]`
    /// (Minimal, Short, Middle, Long).
    pub runtime_shares: [Option<[f64; 4]>; 3],
    /// Mean requested units per queue class.
    pub mean_procs: [Option<f64>; 3],
    /// Mean runtime per queue class.
    pub mean_runtime: [Option<f64>; 3],
}

/// Queue length observed by each job at its own submission instant:
/// the number of earlier-submitted jobs that have not yet started.
///
/// # Panics
/// Panics if any job lacks a wait — replay the trace first.
#[must_use]
pub fn queue_lengths_at_submission(replayed: &Trace) -> Vec<usize> {
    let mut starts: BinaryHeap<Reverse<i64>> = BinaryHeap::new();
    let mut out = Vec::with_capacity(replayed.len());
    for j in replayed.jobs() {
        // Jobs that started strictly before this submission leave the queue.
        while let Some(&Reverse(s)) = starts.peek() {
            if s <= j.submit {
                starts.pop();
            } else {
                break;
            }
        }
        out.push(starts.len());
        starts.push(Reverse(
            j.submit + j.wait.expect("replayed trace carries waits"),
        ));
    }
    out
}

/// Computes Figs. 9–10 for a replayed trace.
#[must_use]
pub fn submission_behaviour(replayed: &Trace) -> SubmissionBehaviour {
    let qlens = queue_lengths_at_submission(replayed);
    let max_queue = qlens.iter().copied().max().unwrap_or(0);

    let mut req_counts = [[0usize; 4]; 3];
    let mut run_counts = [[0usize; 4]; 3];
    let mut sub_counts = [0usize; 3];
    let mut procs_sum = [0.0f64; 3];
    let mut runtime_sum = [0.0f64; 3];
    for (j, &q) in replayed.jobs().iter().zip(&qlens) {
        let qc = QueueClass::classify(q, max_queue) as usize;
        sub_counts[qc] += 1;
        req_counts[qc][RequestClass::classify(j.procs, &replayed.system) as usize] += 1;
        run_counts[qc][RuntimeClass::classify(j.runtime) as usize] += 1;
        procs_sum[qc] += j.procs as f64;
        runtime_sum[qc] += j.runtime as f64;
    }

    let shares = |counts: [[usize; 4]; 3]| {
        [0, 1, 2].map(|qc| {
            let total: usize = counts[qc].iter().sum();
            (total > 0).then(|| counts[qc].map(|c| c as f64 / total as f64))
        })
    };
    let means = |sums: [f64; 3]| {
        [0, 1, 2].map(|qc| (sub_counts[qc] > 0).then(|| sums[qc] / sub_counts[qc] as f64))
    };

    SubmissionBehaviour {
        max_queue,
        submissions: sub_counts,
        request_shares: shares(req_counts),
        runtime_shares: shares(run_counts),
        mean_procs: means(procs_sum),
        mean_runtime: means(runtime_sum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    fn job(id: u64, submit: i64, wait: i64, runtime: i64, procs: u64) -> Job {
        let mut j = Job::basic(id, 1, submit, runtime, procs);
        j.wait = Some(wait);
        j
    }

    #[test]
    fn queue_lengths_count_pending_jobs() {
        let spec = SystemSpec::philly();
        // j1 starts at 100; j2 submitted at 10 sees 1 pending; j3 at 200
        // sees only j2 (j1 started), which starts at 150 ⇒ 0 pending.
        let jobs = vec![
            job(1, 0, 100, 50, 1),
            job(2, 10, 140, 50, 1),
            job(3, 200, 0, 50, 1),
        ];
        let t = Trace::new(spec, jobs).unwrap();
        assert_eq!(queue_lengths_at_submission(&t), vec![0, 1, 0]);
    }

    #[test]
    fn simultaneous_start_does_not_count() {
        let spec = SystemSpec::philly();
        // j1 starts exactly when j2 is submitted: not pending any more.
        let jobs = vec![job(1, 0, 10, 50, 1), job(2, 10, 0, 50, 1)];
        let t = Trace::new(spec, jobs).unwrap();
        assert_eq!(queue_lengths_at_submission(&t), vec![0, 0]);
    }

    #[test]
    fn behaviour_shares_sum_to_one() {
        let spec = SystemSpec::philly();
        let jobs: Vec<Job> = (0..100)
            .map(|i| {
                job(
                    i,
                    i as i64,
                    (i % 40) as i64 * 100,
                    60 + i as i64,
                    1 + (i % 16),
                )
            })
            .collect();
        let t = Trace::new(spec, jobs).unwrap();
        let b = submission_behaviour(&t);
        assert_eq!(b.submissions.iter().sum::<usize>(), 100);
        for qc in 0..3 {
            if let Some(shares) = b.request_shares[qc] {
                assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            if let Some(shares) = b.runtime_shares[qc] {
                assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn adaptive_users_shrink_under_load() {
        // Construct a trace where congested-time submissions are 1 GPU and
        // idle-time submissions are 8 GPUs, then check the tabulation sees it.
        let spec = SystemSpec::philly();
        let mut jobs = Vec::new();
        // Phase 1: idle, big jobs, no waits.
        for i in 0..30u64 {
            jobs.push(job(i, i as i64, 0, 1_000, 8));
        }
        // Phase 2: a pile-up — everyone waits, submissions shrink to 1 GPU.
        for i in 30..60u64 {
            jobs.push(job(i, 1_000 + i as i64, 5_000, 100, 1));
        }
        let t = Trace::new(spec, jobs).unwrap();
        let b = submission_behaviour(&t);
        let short_queue = b.request_shares[0].unwrap();
        let long_queue = b.request_shares[2].unwrap();
        // Minimal share rises with congestion.
        assert!(long_queue[0] > short_queue[0]);
        assert!(b.mean_procs[0].unwrap() > b.mean_procs[2].unwrap());
    }
}
