//! Arrival-process periodicity (an extension of the Fig. 1b analysis).
//!
//! The paper observes that diurnal patterns exist on *some* systems and
//! warns against assuming them (Takeaway 2). This module quantifies that:
//! the autocorrelation function of the hourly arrival series, the strength
//! of the 24-hour peak, and a burstiness measure (the coefficient of
//! variation of inter-arrival gaps; 1 = Poisson).

use lumos_core::Trace;
use serde::Serialize;

/// Periodicity diagnostics for one system's arrival process.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Periodicity {
    /// Hourly arrival counts over the whole trace (one bin per hour).
    pub hourly_series_len: usize,
    /// Autocorrelation at lags 1..=48 hours (empty when the trace spans
    /// fewer than ~3 days).
    pub acf: Vec<f64>,
    /// Autocorrelation at lag 24 — the diurnal signature.
    pub diurnal_strength: Option<f64>,
    /// Lag (hours) of the highest autocorrelation peak in 12..=36, if any.
    pub dominant_period: Option<usize>,
    /// Coefficient of variation of inter-arrival gaps (1 ⇒ Poisson-like,
    /// > 1 ⇒ bursty).
    pub gap_cv: f64,
}

/// Computes arrival periodicity diagnostics.
#[must_use]
pub fn periodicity(trace: &Trace) -> Periodicity {
    let jobs = trace.jobs();
    // Hour-resolution arrival counts over the full span.
    let t0 = trace.start_time();
    let hours = ((trace.span() / 3_600) + 1).max(1) as usize;
    let mut series = vec![0.0f64; hours];
    for j in jobs {
        let h = ((j.submit - t0) / 3_600) as usize;
        series[h.min(hours - 1)] += 1.0;
    }

    let max_lag = 48.min(series.len().saturating_sub(2));
    let acf = autocorrelation(&series, max_lag);
    let diurnal_strength = acf.get(23).copied(); // lag 24 is index 23
    let dominant_period = (12..=36.min(max_lag))
        .max_by(|&a, &b| {
            acf[a - 1]
                .partial_cmp(&acf[b - 1])
                .expect("finite autocorrelations")
        })
        .filter(|&lag| acf[lag - 1] > 0.1);

    // Burstiness of raw gaps.
    let gaps: Vec<f64> = jobs
        .windows(2)
        .map(|w| (w[1].submit - w[0].submit).max(0) as f64)
        .collect();
    let gap_cv = if gaps.len() < 2 {
        0.0
    } else {
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        }
    };

    Periodicity {
        hourly_series_len: series.len(),
        acf,
        diurnal_strength,
        dominant_period,
        gap_cv,
    }
}

/// Sample autocorrelation at lags `1..=max_lag`.
fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 3 || max_lag == 0 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom <= 0.0 {
        return vec![0.0; max_lag];
    }
    (1..=max_lag)
        .map(|lag| {
            let num: f64 = series[..n - lag]
                .iter()
                .zip(&series[lag..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum();
            num / denom
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    /// Builds a trace with `per_hour[h % cycle]` arrivals in hour `h`.
    fn cyclic_trace(per_hour: &[usize], days: usize) -> Trace {
        let mut jobs = Vec::new();
        let mut id = 0u64;
        for h in 0..days * 24 {
            let count = per_hour[h % per_hour.len()];
            for k in 0..count {
                jobs.push(Job::basic(
                    id,
                    1,
                    (h * 3_600 + k * 3_600 / count.max(1)) as i64,
                    60,
                    8,
                ));
                id += 1;
            }
        }
        Trace::new(SystemSpec::theta(), jobs).unwrap()
    }

    #[test]
    fn strong_diurnal_cycle_is_detected() {
        // 24-hour cycle: busy days, quiet nights, 6 days of data.
        let mut pattern = vec![1usize; 24];
        for slot in pattern.iter_mut().take(17).skip(8) {
            *slot = 20;
        }
        let p = periodicity(&cyclic_trace(&pattern, 6));
        assert_eq!(p.dominant_period, Some(24), "acf peak at 24h");
        assert!(p.diurnal_strength.unwrap() > 0.5);
    }

    #[test]
    fn flat_arrivals_have_no_dominant_period() {
        let p = periodicity(&cyclic_trace(&[5; 24], 6));
        assert!(p.dominant_period.is_none());
        assert!(p.diurnal_strength.unwrap_or(0.0) < 0.3);
    }

    #[test]
    fn poisson_like_gaps_have_cv_near_one() {
        // Exponential-ish gaps via a deterministic low-discrepancy trick
        // would be overkill; just check CV is finite and positive on a
        // bursty series and compare against a regular series.
        let bursty = cyclic_trace(&[1, 1, 50, 1], 4);
        let regular = cyclic_trace(&[10; 4], 4);
        let cv_bursty = periodicity(&bursty).gap_cv;
        let cv_regular = periodicity(&regular).gap_cv;
        assert!(cv_bursty > cv_regular, "{cv_bursty} vs {cv_regular}");
    }

    #[test]
    fn short_traces_degrade_gracefully() {
        let jobs = vec![Job::basic(0, 1, 0, 60, 8), Job::basic(1, 1, 100, 60, 8)];
        let t = Trace::new(SystemSpec::theta(), jobs).unwrap();
        let p = periodicity(&t);
        assert!(p.acf.is_empty());
        assert!(p.dominant_period.is_none());
    }
}
