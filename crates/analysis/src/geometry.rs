//! Job geometries — paper Fig. 1.
//!
//! * [`runtime_geometry`] — runtime CDF + violin (Fig. 1a),
//! * [`arrival_geometry`] — inter-arrival CDF + hourly pattern (Fig. 1b),
//! * [`resource_geometry`] — requested-units CDF, absolute and as a
//!   fraction of the machine (Fig. 1c).

use lumos_core::{hour_of_day, Trace};
use lumos_stats::{Ecdf, ViolinSummary};
use serde::Serialize;

/// Number of points in exported CDF curves.
const CURVE_POINTS: usize = 100;

/// Fig. 1a data for one system.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeGeometry {
    /// Median runtime (s).
    pub median: f64,
    /// Mean runtime (s).
    pub mean: f64,
    /// Minimum / maximum runtime (s).
    pub min: f64,
    /// Maximum runtime (s).
    pub max: f64,
    /// Log-spaced CDF curve `(runtime_s, F)`.
    pub cdf: Vec<(f64, f64)>,
    /// Violin summary (log scale).
    pub violin: ViolinSummary,
}

/// Computes Fig. 1a for one trace.
#[must_use]
pub fn runtime_geometry(trace: &Trace) -> RuntimeGeometry {
    let runtimes: Vec<f64> = trace
        .jobs()
        .iter()
        .map(|j| (j.runtime.max(1)) as f64)
        .collect();
    let ecdf = Ecdf::new(runtimes.clone());
    RuntimeGeometry {
        median: ecdf.median(),
        mean: ecdf.mean(),
        min: ecdf.min(),
        max: ecdf.max(),
        cdf: ecdf.log_curve(CURVE_POINTS, 1.0),
        violin: ViolinSummary::build(&runtimes, true, 1.0, 120),
    }
}

/// Fig. 1b data for one system.
#[derive(Debug, Clone, Serialize)]
pub struct ArrivalGeometry {
    /// Median inter-arrival gap (s).
    pub median_interval: f64,
    /// Mean inter-arrival gap (s).
    pub mean_interval: f64,
    /// Log-spaced CDF curve of inter-arrival gaps `(gap_s, F)`.
    pub interval_cdf: Vec<(f64, f64)>,
    /// Job arrivals per local hour of day (24 bins).
    pub hourly: [u64; 24],
    /// Max/min ratio over the populated hourly bins — the paper's measure
    /// of diurnal peak intensity (e.g. ≈ 2.5 for Philly, ≈ 10 for Helios).
    pub hourly_max_min_ratio: Option<f64>,
}

/// Computes Fig. 1b for one trace.
#[must_use]
pub fn arrival_geometry(trace: &Trace) -> ArrivalGeometry {
    let jobs = trace.jobs();
    let gaps: Vec<f64> = jobs
        .windows(2)
        .map(|w| ((w[1].submit - w[0].submit).max(0)) as f64)
        .collect();
    // A single-job trace has no gaps; treat it as one zero gap.
    let gaps = if gaps.is_empty() { vec![0.0] } else { gaps };
    let ecdf = Ecdf::new(gaps);

    let mut hourly = [0u64; 24];
    for j in jobs {
        hourly[hour_of_day(j.submit, trace.system.tz_offset) as usize] += 1;
    }
    let populated: Vec<u64> = hourly.iter().copied().filter(|&c| c > 0).collect();
    let hourly_max_min_ratio = if populated.len() >= 2 {
        let max = *populated.iter().max().expect("non-empty");
        let min = *populated.iter().min().expect("non-empty");
        Some(max as f64 / min as f64)
    } else {
        None
    };

    ArrivalGeometry {
        median_interval: ecdf.median(),
        mean_interval: ecdf.mean(),
        interval_cdf: ecdf.log_curve(CURVE_POINTS, 0.5),
        hourly,
        hourly_max_min_ratio,
    }
}

/// Fig. 1c data for one system.
#[derive(Debug, Clone, Serialize)]
pub struct ResourceGeometry {
    /// Median requested units (cores / GPUs).
    pub median_procs: f64,
    /// Fraction of jobs requesting exactly one unit.
    pub single_unit_share: f64,
    /// Fraction of jobs requesting more than 1,000 units (the paper's
    /// Mira-vs-DL contrast).
    pub over_1000_share: f64,
    /// Log-spaced CDF of requested units `(units, F)`.
    pub procs_cdf: Vec<(f64, f64)>,
    /// Log-spaced CDF of requested fraction of the machine `(fraction, F)`.
    pub fraction_cdf: Vec<(f64, f64)>,
}

/// Computes Fig. 1c for one trace.
#[must_use]
pub fn resource_geometry(trace: &Trace) -> ResourceGeometry {
    let total = trace.system.total_units as f64;
    let procs: Vec<f64> = trace.jobs().iter().map(|j| j.procs as f64).collect();
    let n = procs.len() as f64;
    let single = procs.iter().filter(|&&p| p <= 1.0).count() as f64 / n;
    let over_1000 = procs.iter().filter(|&&p| p > 1_000.0).count() as f64 / n;
    let ecdf = Ecdf::new(procs.clone());
    let frac_ecdf = Ecdf::new(procs.iter().map(|p| p / total).collect());
    ResourceGeometry {
        median_procs: ecdf.median(),
        single_unit_share: single,
        over_1000_share: over_1000,
        procs_cdf: ecdf.log_curve(CURVE_POINTS, 1.0),
        fraction_cdf: frac_ecdf.log_curve(CURVE_POINTS, 1e-7),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    fn trace(runtimes: &[i64]) -> Trace {
        let jobs: Vec<Job> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &r)| Job::basic(i as u64, 1, (i as i64) * 100, r, 64))
            .collect();
        Trace::new(SystemSpec::theta(), jobs).unwrap()
    }

    #[test]
    fn runtime_geometry_median() {
        let g = runtime_geometry(&trace(&[100, 200, 300]));
        assert_eq!(g.median, 200.0);
        assert_eq!(g.min, 100.0);
        assert_eq!(g.max, 300.0);
        assert_eq!(g.violin.n, 3);
    }

    #[test]
    fn zero_runtimes_are_floored_for_log_axes() {
        let g = runtime_geometry(&trace(&[0, 10]));
        assert_eq!(g.min, 1.0);
    }

    #[test]
    fn arrival_gaps_are_differences() {
        let a = arrival_geometry(&trace(&[10, 10, 10]));
        assert_eq!(a.median_interval, 100.0);
        assert_eq!(a.mean_interval, 100.0);
    }

    #[test]
    fn hourly_pattern_uses_local_time() {
        // Theta is UTC−6: submissions at trace-hour 8 land in local hour 2.
        let a = arrival_geometry(&trace(&[10; 5]));
        let total: u64 = a.hourly.iter().sum();
        assert_eq!(total, 5);
        // All five jobs are within the first 500 seconds ⇒ local hour 18.
        assert_eq!(a.hourly[18], 5);
    }

    #[test]
    fn resource_shares() {
        let mut jobs: Vec<Job> = (0..8).map(|i| Job::basic(i, 1, i as i64, 10, 1)).collect();
        jobs.push(Job::basic(8, 1, 8, 10, 2_000));
        jobs.push(Job::basic(9, 1, 9, 10, 2_000));
        let t = Trace::new(SystemSpec::theta(), jobs).unwrap();
        let r = resource_geometry(&t);
        assert!((r.single_unit_share - 0.8).abs() < 1e-12);
        assert!((r.over_1000_share - 0.2).abs() < 1e-12);
        assert_eq!(r.median_procs, 1.0);
    }
}
