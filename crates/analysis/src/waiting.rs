//! Waiting time and turnaround — paper Figs. 4 & 5.
//!
//! Requires a *replayed* trace (every job carries a wait). Fig. 4 plots
//! per-system CDFs of waiting time and turnaround; Fig. 5 correlates mean
//! waiting time with the size and length classes — the paper's surprises:
//! middle-*size* jobs (not the largest) wait longest on most systems, and
//! long jobs always wait longest (backfilling favours short jobs).

use lumos_core::{LengthClass, SizeClass, Trace};
use lumos_stats::Ecdf;
use serde::Serialize;

const CURVE_POINTS: usize = 100;

/// Figs. 4–5 data for one system.
#[derive(Debug, Clone, Serialize)]
pub struct WaitingAnalysis {
    /// Mean waiting time (s).
    pub mean_wait: f64,
    /// Median waiting time (s).
    pub median_wait: f64,
    /// Fraction of jobs waiting ≤ 10 s (Helios: ≈ 80 %).
    pub under_10s_share: f64,
    /// Fraction of jobs waiting more than 1.5 h (Blue Waters: > 50 %).
    pub over_90min_share: f64,
    /// Log-spaced CDF of waiting time `(wait_s, F)`.
    pub wait_cdf: Vec<(f64, f64)>,
    /// Log-spaced CDF of turnaround time `(turnaround_s, F)`.
    pub turnaround_cdf: Vec<(f64, f64)>,
    /// Mean wait per size class (small, middle, large); `None` when a class
    /// is empty.
    pub mean_wait_by_size: [Option<f64>; 3],
    /// Mean wait per length class (short, middle, long).
    pub mean_wait_by_length: [Option<f64>; 3],
    /// Which size class waits longest.
    pub longest_waiting_size: Option<SizeClass>,
    /// Which length class waits longest.
    pub longest_waiting_length: Option<LengthClass>,
}

/// Computes Figs. 4–5 for a replayed trace.
///
/// # Panics
/// Panics if any job lacks a wait (replay the trace through `lumos-sim`
/// first).
#[must_use]
pub fn waiting_analysis(replayed: &Trace) -> WaitingAnalysis {
    let waits: Vec<f64> = replayed
        .jobs()
        .iter()
        .map(|j| j.wait.expect("replayed trace carries waits") as f64)
        .collect();
    let turnarounds: Vec<f64> = replayed
        .jobs()
        .iter()
        .map(|j| j.turnaround().expect("replayed") as f64)
        .collect();
    let n = waits.len() as f64;
    let under_10 = waits.iter().filter(|&&w| w <= 10.0).count() as f64 / n;
    let over_90min = waits.iter().filter(|&&w| w > 5_400.0).count() as f64 / n;

    let wait_ecdf = Ecdf::new(waits);
    let turn_ecdf = Ecdf::new(turnarounds);

    let mut sum_size = [0.0f64; 3];
    let mut n_size = [0usize; 3];
    let mut sum_len = [0.0f64; 3];
    let mut n_len = [0usize; 3];
    for j in replayed.jobs() {
        let w = j.wait.expect("replayed") as f64;
        let s = SizeClass::classify(j.procs, &replayed.system) as usize;
        let l = LengthClass::classify(j.runtime) as usize;
        sum_size[s] += w;
        n_size[s] += 1;
        sum_len[l] += w;
        n_len[l] += 1;
    }
    let means =
        |sum: [f64; 3], n: [usize; 3]| [0, 1, 2].map(|i| (n[i] > 0).then(|| sum[i] / n[i] as f64));
    let mean_wait_by_size = means(sum_size, n_size);
    let mean_wait_by_length = means(sum_len, n_len);

    let argmax = |xs: &[Option<f64>; 3]| {
        xs.iter()
            .enumerate()
            .filter_map(|(i, x)| x.map(|v| (i, v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
    };

    WaitingAnalysis {
        mean_wait: wait_ecdf.mean(),
        median_wait: wait_ecdf.median(),
        under_10s_share: under_10,
        over_90min_share: over_90min,
        wait_cdf: wait_ecdf.log_curve(CURVE_POINTS, 1.0),
        turnaround_cdf: turn_ecdf.log_curve(CURVE_POINTS, 1.0),
        mean_wait_by_size,
        mean_wait_by_length,
        longest_waiting_size: argmax(&mean_wait_by_size).map(|i| SizeClass::ALL[i]),
        longest_waiting_length: argmax(&mean_wait_by_length).map(|i| LengthClass::ALL[i]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec, HOUR};

    fn job(id: u64, wait: i64, runtime: i64, procs: u64) -> Job {
        let mut j = Job::basic(id, 1, id as i64, runtime, procs);
        j.wait = Some(wait);
        j
    }

    #[test]
    fn aggregates_and_classes() {
        let spec = SystemSpec::philly();
        let jobs = vec![
            job(1, 0, 100, 1),          // small, short, no wait
            job(2, 7_200, 2 * HOUR, 4), // middle size, middle length
            job(3, 100, 30 * HOUR, 64), // large, long
        ];
        let w = waiting_analysis(&Trace::new(spec, jobs).unwrap());
        assert!((w.mean_wait - (7_300.0 / 3.0)).abs() < 1e-9);
        assert!((w.under_10s_share - 1.0 / 3.0).abs() < 1e-9);
        assert!((w.over_90min_share - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(w.longest_waiting_size, Some(SizeClass::Middle));
        assert_eq!(w.mean_wait_by_size[0], Some(0.0));
        assert_eq!(w.mean_wait_by_size[1], Some(7_200.0));
        assert_eq!(w.mean_wait_by_size[2], Some(100.0));
    }

    #[test]
    fn empty_classes_are_none() {
        let spec = SystemSpec::philly();
        let jobs = vec![job(1, 5, 100, 1)];
        let w = waiting_analysis(&Trace::new(spec, jobs).unwrap());
        assert!(w.mean_wait_by_size[2].is_none());
        assert_eq!(w.longest_waiting_size, Some(SizeClass::Small));
    }

    #[test]
    #[should_panic(expected = "replayed")]
    fn rejects_unscheduled_traces() {
        let spec = SystemSpec::philly();
        let jobs = vec![Job::basic(1, 1, 0, 10, 1)];
        let _ = waiting_analysis(&Trace::new(spec, jobs).unwrap());
    }

    #[test]
    fn turnaround_is_wait_plus_runtime() {
        let spec = SystemSpec::philly();
        let jobs = vec![job(1, 50, 100, 1), job(2, 50, 100, 1)];
        let w = waiting_analysis(&Trace::new(spec, jobs).unwrap());
        // All turnarounds are 150: the CDF jumps to 1 at 150.
        let last = w.turnaround_cdf.last().unwrap();
        assert!((last.0 - 150.0).abs() < 1.0);
        assert!((last.1 - 1.0).abs() < 1e-12);
    }
}
