//! Job failures — paper Figs. 6 & 7.
//!
//! Fig. 6: the Passed / Failed / Killed split by job count *and* by
//! consumed core-hours (killed jobs over-consume; failed jobs die early so
//! they under-consume). Fig. 7: how the split shifts with job size (only on
//! DL systems) and with job length (everywhere — long jobs mostly get
//! killed).

use lumos_core::{JobStatus, LengthClass, SizeClass, Trace};
use serde::Serialize;

/// Fig. 6 data: status shares by count and by core-hours.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StatusBreakdown {
    /// Job counts per status (Passed, Failed, Killed).
    pub counts: [usize; 3],
    /// Count shares per status.
    pub count_shares: [f64; 3],
    /// Core-hour shares per status.
    pub core_hour_shares: [f64; 3],
}

/// Figs. 6–7 data for one system.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FailureAnalysis {
    /// Fig. 6: overall breakdown.
    pub overall: StatusBreakdown,
    /// Fig. 7a: per size class, the status count-shares
    /// (`by_size[size][status]`). `None` when the class is empty.
    pub by_size: [Option<[f64; 3]>; 3],
    /// Fig. 7b: per length class, the status count-shares.
    pub by_length: [Option<[f64; 3]>; 3],
}

fn status_index(s: JobStatus) -> usize {
    match s {
        JobStatus::Passed => 0,
        JobStatus::Failed => 1,
        JobStatus::Killed => 2,
    }
}

/// Computes Figs. 6–7 for one trace.
#[must_use]
pub fn failure_analysis(trace: &Trace) -> FailureAnalysis {
    let mut counts = [0usize; 3];
    let mut hours = [0.0f64; 3];
    let mut size_counts = [[0usize; 3]; 3];
    let mut len_counts = [[0usize; 3]; 3];
    for j in trace.jobs() {
        let s = status_index(j.status);
        counts[s] += 1;
        hours[s] += j.core_hours();
        size_counts[SizeClass::classify(j.procs, &trace.system) as usize][s] += 1;
        len_counts[LengthClass::classify(j.runtime) as usize][s] += 1;
    }
    let n = trace.len().max(1) as f64;
    let total_hours: f64 = hours.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let shares = |c: [[usize; 3]; 3]| {
        c.map(|row| {
            let total: usize = row.iter().sum();
            (total > 0).then(|| row.map(|x| x as f64 / total as f64))
        })
    };
    FailureAnalysis {
        overall: StatusBreakdown {
            counts,
            count_shares: counts.map(|c| c as f64 / n),
            core_hour_shares: hours.map(|h| h / total_hours),
        },
        by_size: shares(size_counts),
        by_length: shares(len_counts),
    }
}

/// Rank correlations between job geometry and the kill/fail outcome —
/// quantifying the Fig. 7 panels: runtime correlates with being killed on
/// every system, while size only correlates with failure on DL systems.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FailureCorrelations {
    /// Spearman ρ between runtime and the killed indicator.
    pub runtime_vs_killed: Option<f64>,
    /// Spearman ρ between requested units and the unsuccessful indicator.
    pub size_vs_unsuccessful: Option<f64>,
}

/// Computes the Fig. 7 correlation coefficients.
#[must_use]
pub fn failure_correlations(trace: &Trace) -> FailureCorrelations {
    let runtimes: Vec<f64> = trace.jobs().iter().map(|j| j.runtime as f64).collect();
    let killed: Vec<f64> = trace
        .jobs()
        .iter()
        .map(|j| f64::from(u8::from(j.status == JobStatus::Killed)))
        .collect();
    let sizes: Vec<f64> = trace.jobs().iter().map(|j| j.procs as f64).collect();
    let unsuccessful: Vec<f64> = trace
        .jobs()
        .iter()
        .map(|j| f64::from(u8::from(j.status.is_unsuccessful())))
        .collect();
    FailureCorrelations {
        runtime_vs_killed: lumos_stats::correlation::spearman(&runtimes, &killed),
        size_vs_unsuccessful: lumos_stats::correlation::spearman(&sizes, &unsuccessful),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec, DAY, HOUR};

    fn job(id: u64, runtime: i64, procs: u64, status: JobStatus) -> Job {
        let mut j = Job::basic(id, 1, id as i64, runtime, procs);
        j.status = status;
        j
    }

    #[test]
    fn overall_breakdown() {
        let spec = SystemSpec::philly();
        let jobs = vec![
            job(1, 100, 1, JobStatus::Passed),
            job(2, 100, 1, JobStatus::Failed),
            job(3, 100, 1, JobStatus::Killed),
            job(4, 100, 1, JobStatus::Killed),
        ];
        let f = failure_analysis(&Trace::new(spec, jobs).unwrap());
        assert_eq!(f.overall.counts, [1, 1, 2]);
        assert!((f.overall.count_shares[2] - 0.5).abs() < 1e-12);
        // Equal runtimes/procs: core-hour shares equal count shares.
        assert!((f.overall.core_hour_shares[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn killed_jobs_over_consume_core_hours() {
        let spec = SystemSpec::philly();
        let jobs = vec![
            job(1, 60, 1, JobStatus::Passed),
            job(2, 60, 1, JobStatus::Passed),
            job(3, 60, 1, JobStatus::Passed),
            job(4, 6_000, 8, JobStatus::Killed),
        ];
        let f = failure_analysis(&Trace::new(spec, jobs).unwrap());
        assert!(f.overall.count_shares[2] < f.overall.core_hour_shares[2]);
    }

    #[test]
    fn by_length_tracks_kill_rates() {
        let spec = SystemSpec::philly();
        let jobs = vec![
            job(1, 60, 1, JobStatus::Passed),
            job(2, 2 * HOUR, 1, JobStatus::Passed),
            job(3, 2 * DAY, 1, JobStatus::Killed),
            job(4, 3 * DAY, 1, JobStatus::Killed),
        ];
        let f = failure_analysis(&Trace::new(spec, jobs).unwrap());
        let long = f.by_length[2].unwrap();
        assert!((long[2] - 1.0).abs() < 1e-12, "all long jobs killed");
        let short = f.by_length[0].unwrap();
        assert!((short[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlations_detect_the_kill_runtime_link() {
        let spec = SystemSpec::philly();
        let mut jobs = Vec::new();
        // Short jobs pass, long jobs get killed: strong positive rho.
        for i in 0..50u64 {
            jobs.push(job(i, 60 + i as i64, 1, JobStatus::Passed));
        }
        for i in 50..100u64 {
            jobs.push(job(i, 80_000 + i as i64, 1, JobStatus::Killed));
        }
        let c = failure_correlations(&Trace::new(spec, jobs).unwrap());
        assert!(c.runtime_vs_killed.unwrap() > 0.8);
        // Size is constant, so no size correlation is computable.
        assert!(c.size_vs_unsuccessful.is_none());
    }

    #[test]
    fn correlations_near_zero_when_independent() {
        let spec = SystemSpec::philly();
        let jobs: Vec<Job> = (0..100u64)
            .map(|i| {
                let status = if i % 2 == 0 {
                    JobStatus::Passed
                } else {
                    JobStatus::Killed
                };
                job(i, 100 + (i % 7) as i64, 1 + (i % 5), status)
            })
            .collect();
        let c = failure_correlations(&Trace::new(spec, jobs).unwrap());
        assert!(c.size_vs_unsuccessful.unwrap().abs() < 0.3);
    }

    #[test]
    fn empty_classes_are_none() {
        let spec = SystemSpec::philly();
        let jobs = vec![job(1, 60, 1, JobStatus::Passed)];
        let f = failure_analysis(&Trace::new(spec, jobs).unwrap());
        assert!(f.by_size[2].is_none());
        assert!(f.by_length[1].is_none());
        assert!(f.by_length[2].is_none());
    }
}
