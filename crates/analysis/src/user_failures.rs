//! Per-user runtime-vs-status signatures — paper Fig. 11.
//!
//! For the heaviest users, the runtime distributions of Passed, Failed, and
//! Killed jobs separate sharply (failed jobs die early; killed jobs run
//! long). That separation is the statistical basis of Use Case 1: observing
//! a job's elapsed time narrows down its eventual status and therefore its
//! remaining runtime.

use lumos_core::{JobStatus, Trace, UserId};
use lumos_stats::ViolinSummary;
use serde::Serialize;

/// Fig. 11 data for one user: a runtime violin per status.
#[derive(Debug, Clone, Serialize)]
pub struct UserStatusViolins {
    /// The user.
    pub user: UserId,
    /// Total jobs the user submitted.
    pub jobs: usize,
    /// Violin per status (Passed, Failed, Killed); `None` when the user has
    /// no jobs with that status.
    pub violins: [Option<ViolinSummary>; 3],
    /// Median runtime per status.
    pub medians: [Option<f64>; 3],
}

impl UserStatusViolins {
    /// True when failed jobs are clearly shorter than passed jobs
    /// (median ratio below `ratio`) — the separation Fig. 11 highlights.
    #[must_use]
    pub fn failed_shorter_than_passed(&self, ratio: f64) -> Option<bool> {
        match (self.medians[0], self.medians[1]) {
            (Some(p), Some(f)) if p > 0.0 => Some(f < ratio * p),
            _ => None,
        }
    }
}

/// Computes Fig. 11 for the `top_n` heaviest users of a trace.
#[must_use]
pub fn top_user_violins(trace: &Trace, top_n: usize) -> Vec<UserStatusViolins> {
    trace
        .top_users(top_n)
        .into_iter()
        .map(|(user, jobs)| {
            let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for j in trace.jobs() {
                if j.user == user {
                    let idx = match j.status {
                        JobStatus::Passed => 0,
                        JobStatus::Failed => 1,
                        JobStatus::Killed => 2,
                    };
                    samples[idx].push(j.runtime.max(1) as f64);
                }
            }
            let violins = [0, 1, 2].map(|i| {
                (!samples[i].is_empty()).then(|| ViolinSummary::build(&samples[i], true, 1.0, 80))
            });
            let medians = [0, 1, 2].map(|i| violins[i].as_ref().map(|v| v.median));
            UserStatusViolins {
                user,
                jobs,
                violins,
                medians,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    fn job(id: u64, user: UserId, runtime: i64, status: JobStatus) -> Job {
        let mut j = Job::basic(id, user, id as i64, runtime, 1);
        j.status = status;
        j
    }

    #[test]
    fn violins_split_by_status() {
        let spec = SystemSpec::philly();
        let mut jobs = Vec::new();
        for i in 0..20u64 {
            jobs.push(job(i, 1, 3_600, JobStatus::Passed));
        }
        for i in 20..30u64 {
            jobs.push(job(i, 1, 30, JobStatus::Failed));
        }
        for i in 30..40u64 {
            jobs.push(job(i, 1, 90_000, JobStatus::Killed));
        }
        let t = Trace::new(spec, jobs).unwrap();
        let v = top_user_violins(&t, 1);
        assert_eq!(v.len(), 1);
        let u = &v[0];
        assert_eq!(u.jobs, 40);
        assert_eq!(u.medians[0], Some(3_600.0));
        assert_eq!(u.medians[1], Some(30.0));
        assert_eq!(u.medians[2], Some(90_000.0));
        assert_eq!(u.failed_shorter_than_passed(0.5), Some(true));
    }

    #[test]
    fn missing_statuses_are_none() {
        let spec = SystemSpec::philly();
        let jobs = vec![job(1, 1, 100, JobStatus::Passed)];
        let t = Trace::new(spec, jobs).unwrap();
        let v = top_user_violins(&t, 1);
        assert!(v[0].violins[0].is_some());
        assert!(v[0].violins[1].is_none());
        assert!(v[0].violins[2].is_none());
        assert_eq!(v[0].failed_shorter_than_passed(0.5), None);
    }

    #[test]
    fn top_n_limits_output() {
        let spec = SystemSpec::philly();
        let jobs: Vec<Job> = (0..30)
            .map(|i| job(i, (i % 5) as UserId, 100, JobStatus::Passed))
            .collect();
        let t = Trace::new(spec, jobs).unwrap();
        assert_eq!(top_user_violins(&t, 3).len(), 3);
    }
}
