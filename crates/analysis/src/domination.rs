//! Core-hour domination — paper Fig. 2.
//!
//! Which job groups (by size class and by length class) consume the
//! machine's core-hours? The paper's Takeaway 4: dominating groups
//! (> 50 % of core-hours) widely exist but *shift* across systems, so
//! schedulers must identify them per system instead of assuming "large
//! jobs dominate".

use lumos_core::{LengthClass, SizeClass, Trace};
use serde::Serialize;

/// Fig. 2 data for one system.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Domination {
    /// Share of total core-hours per size class (small, middle, large).
    pub by_size: [f64; 3],
    /// Share of total jobs per size class.
    pub job_share_by_size: [f64; 3],
    /// Share of total core-hours per length class (short, middle, long).
    pub by_length: [f64; 3],
    /// Share of total jobs per length class.
    pub job_share_by_length: [f64; 3],
    /// The size class holding the most core-hours.
    pub dominant_size: SizeClass,
    /// The length class holding the most core-hours.
    pub dominant_length: LengthClass,
}

/// Computes Fig. 2 for one trace.
#[must_use]
pub fn domination(trace: &Trace) -> Domination {
    let mut ch_size = [0.0f64; 3];
    let mut n_size = [0usize; 3];
    let mut ch_len = [0.0f64; 3];
    let mut n_len = [0usize; 3];
    for j in trace.jobs() {
        let ch = j.core_hours();
        let s = SizeClass::classify(j.procs, &trace.system) as usize;
        let l = LengthClass::classify(j.runtime) as usize;
        ch_size[s] += ch;
        n_size[s] += 1;
        ch_len[l] += ch;
        n_len[l] += 1;
    }
    let total_ch: f64 = ch_size.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let total_n = trace.len().max(1) as f64;

    let share = |xs: [f64; 3]| [xs[0] / total_ch, xs[1] / total_ch, xs[2] / total_ch];
    let nshare = |xs: [usize; 3]| {
        [
            xs[0] as f64 / total_n,
            xs[1] as f64 / total_n,
            xs[2] as f64 / total_n,
        ]
    };
    let by_size = share(ch_size);
    let by_length = share(ch_len);

    let argmax = |xs: &[f64; 3]| {
        xs.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite shares"))
            .map(|(i, _)| i)
            .expect("three classes")
    };

    Domination {
        by_size,
        job_share_by_size: nshare(n_size),
        by_length,
        job_share_by_length: nshare(n_len),
        dominant_size: SizeClass::ALL[argmax(&by_size)],
        dominant_length: LengthClass::ALL[argmax(&by_length)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec, HOUR};

    #[test]
    fn shares_sum_to_one() {
        let spec = SystemSpec::philly();
        let jobs = vec![
            Job::basic(1, 1, 0, HOUR / 2, 1),   // small, short
            Job::basic(2, 1, 1, 2 * HOUR, 4),   // middle, middle
            Job::basic(3, 1, 2, 30 * HOUR, 64), // large, long
        ];
        let d = domination(&Trace::new(spec, jobs).unwrap());
        assert!((d.by_size.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((d.by_length.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((d.job_share_by_size.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_long_job_dominates() {
        let spec = SystemSpec::philly();
        let jobs = vec![
            Job::basic(1, 1, 0, HOUR / 2, 1),
            Job::basic(2, 1, 1, 30 * HOUR, 64), // 1920 GPU-hours ≫ 0.5
        ];
        let d = domination(&Trace::new(spec, jobs).unwrap());
        assert_eq!(d.dominant_size, SizeClass::Large);
        assert_eq!(d.dominant_length, LengthClass::Long);
        assert!(d.by_size[2] > 0.99);
    }

    #[test]
    fn job_counts_can_disagree_with_core_hours() {
        // Many tiny jobs vs one huge one: counts say Small, hours say Large.
        let spec = SystemSpec::philly();
        let mut jobs: Vec<Job> = (0..99).map(|i| Job::basic(i, 1, i as i64, 60, 1)).collect();
        jobs.push(Job::basic(99, 1, 99, 100 * HOUR, 128));
        let d = domination(&Trace::new(spec, jobs).unwrap());
        assert!(d.job_share_by_size[0] > 0.9);
        assert_eq!(d.dominant_size, SizeClass::Large);
    }
}
