//! The paper's eight takeaways, evaluated on data.
//!
//! Each takeaway is turned into a falsifiable predicate over the suite of
//! [`SystemAnalysis`] values; the CLI prints them as a reproduction
//! checklist, and the paper-shape integration tests assert the load-bearing
//! ones.

use lumos_core::SystemKind;
use serde::Serialize;

use crate::SystemAnalysis;

/// One evaluated takeaway.
#[derive(Debug, Clone, Serialize)]
pub struct Takeaway {
    /// Paper takeaway number (1–8).
    pub id: u8,
    /// Short statement.
    pub title: &'static str,
    /// Whether the predicate holds on this suite.
    pub holds: bool,
    /// Human-readable evidence string.
    pub evidence: String,
}

fn split(analyses: &[SystemAnalysis]) -> (Vec<&SystemAnalysis>, Vec<&SystemAnalysis>) {
    let dl: Vec<&SystemAnalysis> = analyses
        .iter()
        .filter(|a| a.overview.kind == SystemKind::DlCluster)
        .collect();
    let hpc: Vec<&SystemAnalysis> = analyses
        .iter()
        .filter(|a| a.overview.kind != SystemKind::DlCluster)
        .collect();
    (dl, hpc)
}

/// Evaluates all eight takeaways. Requires at least one DL and one non-DL
/// system in the suite; predicates degrade to `holds = false` with
/// explanatory evidence otherwise.
#[must_use]
pub fn evaluate(analyses: &[SystemAnalysis]) -> Vec<Takeaway> {
    let (dl, hpc) = split(analyses);
    let mut out = Vec::with_capacity(8);

    // T1: DL runtimes are shorter and more diverse.
    {
        let dl_median = dl.iter().map(|a| a.runtime.median).fold(f64::MAX, f64::min);
        let hpc_median = hpc.iter().map(|a| a.runtime.median).fold(0.0, f64::max);
        let spread = |a: &SystemAnalysis| (a.runtime.max / a.runtime.min.max(1.0)).log10();
        let dl_spread = dl.iter().map(|a| spread(a)).fold(0.0, f64::max);
        let hpc_spread = hpc
            .iter()
            .filter(|a| a.overview.kind == SystemKind::ClassicHpc)
            .map(|a| spread(a))
            .fold(0.0, f64::max);
        let holds =
            !dl.is_empty() && !hpc.is_empty() && dl_median < hpc_median && dl_spread >= hpc_spread;
        out.push(Takeaway {
            id: 1,
            title: "DL runtimes are shorter and more diverse than HPC runtimes",
            holds,
            evidence: format!(
                "min DL median {dl_median:.0}s vs max HPC median {hpc_median:.0}s; \
                 log10 spread DL {dl_spread:.1} vs classic-HPC {hpc_spread:.1}"
            ),
        });
    }

    // T2: periodic patterns exist but their intensity varies per system.
    {
        let ratios: Vec<f64> = analyses
            .iter()
            .filter_map(|a| a.arrival.hourly_max_min_ratio)
            .collect();
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let holds = ratios.len() >= 2 && max >= 2.0 * min;
        out.push(Takeaway {
            id: 2,
            title: "diurnal patterns exist but are not general across systems",
            holds,
            evidence: format!("hourly max/min ratios range {min:.1}×–{max:.1}×"),
        });
    }

    // T3: DL workloads are dominated by tiny requests.
    {
        let dl_single = dl
            .iter()
            .map(|a| a.resources.single_unit_share)
            .fold(f64::MAX, f64::min);
        let hpc_single = hpc
            .iter()
            .map(|a| a.resources.single_unit_share)
            .fold(0.0, f64::max);
        let holds = !dl.is_empty() && dl_single > 0.5 && dl_single > hpc_single;
        out.push(Takeaway {
            id: 3,
            title: "small single-unit jobs dominate DL clusters",
            holds,
            evidence: format!(
                "min DL single-GPU share {:.0}% vs max HPC single-core share {:.0}%",
                dl_single * 100.0,
                hpc_single * 100.0
            ),
        });
    }

    // T4: dominating core-hour groups exist but shift across systems.
    {
        let max_share =
            |a: &SystemAnalysis| a.domination.by_size.iter().cloned().fold(0.0f64, f64::max);
        let all_have_dominant = analyses.iter().all(|a| max_share(a) >= 0.4);
        let dominants: std::collections::HashSet<_> = analyses
            .iter()
            .map(|a| a.domination.dominant_size)
            .collect();
        let holds = all_have_dominant && dominants.len() >= 2;
        out.push(Takeaway {
            id: 4,
            title: "dominating core-hour groups exist on every system but shift",
            holds,
            evidence: format!(
                "dominant size classes: {:?}",
                analyses
                    .iter()
                    .map(|a| (a.system.as_str(), a.domination.dominant_size))
                    .collect::<Vec<_>>()
            ),
        });
    }

    // T5: DL utilization is lower than HPC utilization.
    {
        let dl_util = dl
            .iter()
            .map(|a| a.utilization.window_util)
            .fold(f64::MAX, f64::min);
        let hpc_util = hpc
            .iter()
            .map(|a| a.utilization.window_util)
            .fold(f64::MAX, f64::min);
        let holds = !dl.is_empty() && !hpc.is_empty() && dl_util < hpc_util;
        out.push(Takeaway {
            id: 5,
            title: "DL clusters run at lower utilization despite queued jobs",
            holds,
            evidence: format!("min DL util {:.2} vs min HPC util {:.2}", dl_util, hpc_util),
        });
    }

    // T6: waiting disparity — some DL system waits long despite low util,
    // another barely waits.
    {
        let best = dl
            .iter()
            .map(|a| a.waiting.under_10s_share)
            .fold(0.0, f64::max);
        let worst_median = analyses
            .iter()
            .map(|a| a.waiting.median_wait)
            .fold(0.0, f64::max);
        let holds = best > 0.5 && worst_median > 60.0;
        out.push(Takeaway {
            id: 6,
            title: "waiting behaviour diverges: near-interactive vs hours-long queues",
            holds,
            evidence: format!(
                "best DL under-10s share {:.0}%; worst system median wait {:.0}s",
                best * 100.0,
                worst_median
            ),
        });
    }

    // T7: failures are common everywhere and killed jobs over-consume.
    {
        let all_below_70 = analyses
            .iter()
            .all(|a| a.failures.overall.count_shares[0] < 0.70);
        let killed_over_consume = analyses.iter().all(|a| {
            a.failures.overall.core_hour_shares[2] + 1e-9 >= a.failures.overall.count_shares[2]
        });
        let holds = all_below_70 && killed_over_consume;
        out.push(Takeaway {
            id: 7,
            title: "pass rates stay below 70% and killed jobs over-consume core-hours",
            holds,
            evidence: format!(
                "pass shares: {:?}",
                analyses
                    .iter()
                    .map(|a| (
                        a.system.as_str(),
                        (a.failures.overall.count_shares[0] * 100.0).round()
                    ))
                    .collect::<Vec<_>>()
            ),
        });
    }

    // T8: per-user regularities — repeated configs and congestion adaptation.
    {
        let repeated = analyses
            .iter()
            .filter(|a| a.user_groups.users > 0)
            .all(|a| a.user_groups.cumulative[9] >= 0.75);
        let dl_adapts = dl.iter().all(|a| {
            match (
                a.submission.request_shares[0],
                a.submission.request_shares[2],
            ) {
                (Some(short), Some(long)) => long[0] >= short[0],
                _ => true, // not enough congestion variation to judge
            }
        });
        let holds = repeated && dl_adapts;
        out.push(Takeaway {
            id: 8,
            title: "users repeat configurations and shrink submissions under congestion",
            holds,
            evidence: format!(
                "top-10 group coverage: {:?}; DL minimal-share rises with queue: {dl_adapts}",
                analyses
                    .iter()
                    .map(|a| (
                        a.system.as_str(),
                        (a.user_groups.cumulative[9] * 100.0).round()
                    ))
                    .collect::<Vec<_>>()
            ),
        });
    }

    out
}
