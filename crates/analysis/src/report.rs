//! Dataset overview — paper Table I.

use lumos_core::{SystemKind, Trace};
use serde::Serialize;

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OverviewRow {
    /// System name.
    pub system: String,
    /// Workload class.
    pub kind: SystemKind,
    /// Jobs in the trace window.
    pub job_count: usize,
    /// Total nodes.
    pub nodes: u32,
    /// Total scheduling units (cores or GPUs).
    pub units: u64,
    /// Whether the units are GPUs.
    pub gpu_scheduled: bool,
    /// Distinct users.
    pub users: usize,
    /// Trace window length in days.
    pub span_days: f64,
    /// Virtual clusters.
    pub virtual_clusters: u16,
}

/// Builds the Table I row for one trace.
#[must_use]
pub fn overview(trace: &Trace) -> OverviewRow {
    OverviewRow {
        system: trace.system.name.clone(),
        kind: trace.system.kind,
        job_count: trace.len(),
        nodes: trace.system.total_nodes,
        units: trace.system.total_units,
        gpu_scheduled: trace.system.is_gpu_scheduled(),
        users: trace.users().len(),
        span_days: trace.span() as f64 / 86_400.0,
        virtual_clusters: trace.system.virtual_clusters,
    }
}

/// Renders rows as an aligned text table (the CLI's `table1` output).
#[must_use]
pub fn render_table(rows: &[OverviewRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>8} {:>9} {:>6} {:>6} {:>5} {:>4}",
        "System", "Jobs", "Nodes", "Units", "GPU?", "Users", "Days", "VCs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>8} {:>9} {:>6} {:>6} {:>5.1} {:>4}",
            r.system,
            r.job_count,
            r.nodes,
            r.units,
            if r.gpu_scheduled { "yes" } else { "no" },
            r.users,
            r.span_days,
            r.virtual_clusters,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_core::{Job, SystemSpec};

    #[test]
    fn overview_counts() {
        let jobs = vec![
            Job::basic(1, 1, 0, 10, 64),
            Job::basic(2, 2, 86_400, 10, 64),
        ];
        let t = Trace::new(SystemSpec::theta(), jobs).unwrap();
        let r = overview(&t);
        assert_eq!(r.job_count, 2);
        assert_eq!(r.users, 2);
        assert!((r.span_days - 1.0).abs() < 1e-9);
        assert!(!r.gpu_scheduled);
    }

    #[test]
    fn table_renders_all_rows() {
        let jobs = vec![Job::basic(1, 1, 0, 10, 1)];
        let t = Trace::new(SystemSpec::philly(), jobs).unwrap();
        let table = render_table(&[overview(&t)]);
        assert!(table.contains("Philly"));
        assert!(table.contains("yes"));
        assert_eq!(table.lines().count(), 2);
    }
}
