//! Load generator for `lumos serve`: replays a synthetic trace against a
//! running server over NDJSON/TCP and prints the live stats it reports.
//!
//! ```text
//! # terminal 1
//! cargo run --release -- serve --addr 127.0.0.1:7421 --system theta
//! # terminal 2
//! cargo run --release --example serve_load -- --addr 127.0.0.1:7421 --jobs 500
//! ```
//!
//! With no `--addr`, the example spawns its own in-process virtual-time
//! server on an ephemeral port, so it also works standalone.
//!
//! `--two-tenant` switches to a fairness demo instead: the same skewed
//! two-tenant load (a 9:1 heavy/light submission mix) is replayed
//! against one FIFO server and one max-min fair-share server, and the
//! per-tenant delivered service plus Jain's fairness index of both are
//! printed side by side.
//!
//! The generator targets *virtual-time* servers (`--time-scale 0`, the
//! default): it stamps explicit submit times and drives the clock with
//! `Advance` commands, so every run is deterministic for a given seed.
//!
//! `--firehose` drops the lockstep pacing: submissions are pipelined
//! (up to 256 outstanding) the way the `serve_throughput` bench drives
//! the server, and the sustained acknowledged-commands/sec rate is
//! printed — handy for eyeballing group-commit throughput against a
//! `--journal --fsync always` server.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use lumos_core::SystemSpec;
use lumos_serve::{ServeConfig, Server};
use lumos_sim::{Policy, SimConfig, TenantTable};
use lumos_stats::Rng;

struct Options {
    addr: Option<String>,
    jobs: u64,
    seed: u64,
    /// Mean inter-arrival gap in simulation seconds.
    mean_gap: f64,
    /// Run the two-tenant fairness demo instead of the plain load.
    two_tenant: bool,
    /// Pipeline submissions with no pacing and report commands/sec.
    firehose: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: None,
        jobs: 200,
        seed: 42,
        mean_gap: 30.0,
        two_tenant: false,
        firehose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")?),
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--mean-gap" => {
                opts.mean_gap = value("--mean-gap")?
                    .parse()
                    .map_err(|e| format!("--mean-gap: {e}"))?;
            }
            "--two-tenant" => opts.two_tenant = true,
            "--firehose" => opts.firehose = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.two_tenant && opts.addr.is_some() {
        return Err("--two-tenant spawns its own servers; drop --addr".into());
    }
    if opts.two_tenant && opts.firehose {
        return Err("--firehose is the plain-load mode; drop --two-tenant".into());
    }
    Ok(opts)
}

fn roundtrip(writer: &mut impl Write, reader: &mut impl BufRead, request: &str) -> String {
    writeln!(writer, "{request}").expect("write request");
    writer.flush().expect("flush request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim().to_string()
}

/// Numeric field of a parsed JSON value.
fn num(v: &serde_json::Value) -> f64 {
    match v {
        serde_json::Value::I64(n) => *n as f64,
        serde_json::Value::U64(n) => *n as f64,
        serde_json::Value::F64(n) => *n,
        other => panic!("not a number: {other:?}"),
    }
}

/// Replays the seeded 9:1 heavy/light backlog against a fresh in-process
/// server under `policy` and returns the `stats` tenants block captured
/// mid-run (a drained run would equalize totals regardless of policy).
fn two_tenant_stats(policy: Policy, opts: &Options) -> serde_json::Value {
    // A deliberately small machine, so a backlog builds and the policy —
    // not spare capacity — decides whose jobs run.
    let mut system = SystemSpec::theta();
    system.name = "fairness-demo".into();
    system.total_nodes = 64;
    system.units_per_node = 1;
    system.total_units = 64;
    let sim = SimConfig {
        policy,
        ..SimConfig::default()
    };
    let config = ServeConfig {
        system,
        sim,
        queue_capacity: 65_536,
        time_scale: 0.0,
        journal: None,
        predictor: None,
        tenants: Some(TenantTable::parse("heavy 1.0 -\nlight 1.0 -\n").expect("valid table")),
        replicate_to: None,
        follow: None,
        group_commit: 64,
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind demo server");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run(false));
    let stream = TcpStream::connect(&addr).expect("connect to demo server");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    let mut rng = Rng::new(opts.seed);
    let mut clock: i64 = 0;
    for id in 0..opts.jobs {
        let gap = -(opts.mean_gap / 6.0) * (1.0 - rng.next_f64_open()).ln();
        clock += gap.ceil() as i64;
        let runtime = (60.0 * (0.8 * rng.next_gaussian()).exp() * 10.0).ceil() as i64;
        let procs = 1u64 << rng.next_below(5);
        // The skew: nine heavy submissions for every light one.
        let tenant = if id % 10 == 0 { "light" } else { "heavy" };
        roundtrip(
            &mut writer,
            &mut reader,
            &format!(r#"{{"Advance":{{"to":{clock}}}}}"#),
        );
        roundtrip(
            &mut writer,
            &mut reader,
            &format!(
                r#"{{"Submit":{{"job":{{"id":{id},"procs":{procs},"runtime":{runtime},"walltime":{},"submit":{clock},"tenant":"{tenant}"}}}}}}"#,
                runtime + 120,
            ),
        );
    }
    // Let half the backlog play out, then read the block mid-contention.
    roundtrip(
        &mut writer,
        &mut reader,
        &format!(r#"{{"Advance":{{"to":{}}}}}"#, clock + 2_000),
    );
    let stats = roundtrip(&mut writer, &mut reader, r#""Stats""#);
    roundtrip(&mut writer, &mut reader, r#""Shutdown""#);
    handle.join().expect("demo thread").expect("demo run");

    serde_json::parse_value_complete(&stats)
        .expect("stats JSON")
        .get("Stats")
        .and_then(|v| v.get("stats"))
        .and_then(|v| v.get("tenants"))
        .expect("tenant-enabled stats carry a tenants block")
        .clone()
}

/// The `--firehose` loop: the same workload as the paced mode, but every
/// command is pipelined (up to [`FIREHOSE_WINDOW`] outstanding, well
/// under the server's submission-queue bound) with no per-command
/// lockstep, an `Advance` every 64 commands so completed jobs drain, and
/// the sustained acknowledged rate printed at the end.
fn firehose(opts: &Options, stream: TcpStream, reader: &mut BufReader<TcpStream>) {
    const FIREHOSE_WINDOW: usize = 256;
    let mut writer = BufWriter::new(stream);
    let mut rng = Rng::new(opts.seed);
    let mut clock: i64 = 0;
    let (mut accepted, mut rejected) = (0u64, 0u64);
    let mut outstanding = 0usize;
    let mut line = String::new();
    let reap = |reader: &mut BufReader<TcpStream>, line: &mut String| {
        line.clear();
        reader.read_line(line).expect("read reply");
        assert!(!line.is_empty(), "server closed mid-stream");
        line.contains("Rejected")
    };

    let start = std::time::Instant::now();
    let mut commands = 0u64;
    for id in 0..opts.jobs {
        if outstanding == FIREHOSE_WINDOW {
            writer.flush().expect("flush before reap");
            if reap(reader, &mut line) {
                rejected += 1;
            } else {
                accepted += 1;
            }
            outstanding -= 1;
        }
        clock += 1;
        let runtime = (60.0 * (0.8 * rng.next_gaussian()).exp() * 10.0).ceil() as i64;
        let procs = 1u64 << rng.next_below(7);
        writeln!(
            writer,
            r#"{{"Submit":{{"job":{{"id":{id},"procs":{procs},"runtime":{runtime},"submit":{clock}}}}}}}"#
        )
        .expect("write submit");
        outstanding += 1;
        commands += 1;
        if (id + 1) % 64 == 0 {
            writeln!(writer, r#"{{"Advance":{{"to":{clock}}}}}"#).expect("write advance");
            outstanding += 1;
            commands += 1;
        }
    }
    writer.flush().expect("flush tail");
    while outstanding > 0 {
        if reap(reader, &mut line) {
            rejected += 1;
        } else {
            accepted += 1;
        }
        outstanding -= 1;
    }
    let seconds = start.elapsed().as_secs_f64();

    println!(
        "firehose: {commands} commands acknowledged in {seconds:.3}s — {:.0} cmds/sec \
         ({accepted} accepted, {rejected} rejected)",
        commands as f64 / seconds.max(1e-9),
    );
    let stats = roundtrip(&mut writer, reader, r#""Stats""#);
    println!("final stats: {stats}");
    if opts.addr.is_none() {
        let bye = roundtrip(&mut writer, reader, r#""Shutdown""#);
        println!("drained: {bye}");
    } else {
        println!("leaving the external server running (send \"Shutdown\" to stop it)");
    }
}

/// The `--two-tenant` fairness demo: same skewed load, FIFO vs max-min.
fn fairness_demo(opts: &Options) {
    println!(
        "two-tenant fairness demo: {} jobs, 9:1 heavy/light mix, seed {}",
        opts.jobs, opts.seed
    );
    for (label, policy) in [("FIFO", Policy::Fcfs), ("max-min", Policy::MaxMinFair)] {
        let block = two_tenant_stats(policy, opts);
        println!("{label}:");
        for row in block
            .get("tenants")
            .and_then(serde_json::Value::as_array)
            .expect("per-tenant rows")
        {
            let usage = row.get("usage").expect("usage");
            let name = usage
                .get("name")
                .and_then(serde_json::Value::as_str)
                .unwrap();
            let submitted = usage
                .get("counts")
                .and_then(|c| c.get("submitted"))
                .map(num)
                .unwrap();
            if submitted == 0.0 {
                continue;
            }
            println!(
                "  {name:>8}: {submitted:>4} submitted, {:>12} unit-seconds delivered, mean wait {:.1}s",
                usage.get("served_unit_seconds").map(num).unwrap(),
                row.get("mean_wait").map(num).unwrap(),
            );
        }
        println!(
            "  Jain's fairness index: {:.4}",
            block.get("fairness").map(num).unwrap()
        );
    }
    println!("(1.0 = perfectly equal weight-normalized service; 1/n = one tenant hogs it all)");
}

fn main() {
    let opts = match parse_options() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("serve_load: {message}");
            eprintln!(
                "usage: serve_load [--addr HOST:PORT] [--jobs N] [--seed S] [--mean-gap SECS] \
                 [--two-tenant] [--firehose]"
            );
            std::process::exit(2);
        }
    };

    if opts.two_tenant {
        fairness_demo(&opts);
        return;
    }

    // Connect to the given server, or spawn one in-process.
    let (addr, server_thread) = match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let config = ServeConfig {
                system: SystemSpec::theta(),
                sim: SimConfig::default(),
                queue_capacity: 1024,
                time_scale: 0.0,
                journal: None,
                predictor: None,
                tenants: None,
                replicate_to: None,
                follow: None,
                group_commit: 64,
            };
            let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral server");
            let addr = server.local_addr().expect("local addr").to_string();
            println!("spawned in-process server on {addr}");
            (addr, Some(std::thread::spawn(move || server.run(false))))
        }
    };

    let stream = TcpStream::connect(&addr).expect("connect to server");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));

    if opts.firehose {
        firehose(&opts, stream, &mut reader);
        if let Some(handle) = server_thread {
            handle.join().expect("server thread").expect("server run");
        }
        return;
    }
    let mut writer = stream;

    // Synthetic open-arrival workload: exponential gaps, heavy-tailed
    // runtimes (lognormal), mostly-small power-of-two-ish widths.
    let mut rng = Rng::new(opts.seed);
    let mut clock: i64 = 0;
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for id in 0..opts.jobs {
        let gap = -opts.mean_gap * (1.0 - rng.next_f64_open()).ln();
        clock += gap.ceil() as i64;
        let runtime = (60.0 * (0.8 * rng.next_gaussian()).exp() * 10.0).ceil() as i64;
        let walltime = runtime + 60 + rng.next_below(3_600) as i64;
        let procs = 1u64 << rng.next_below(7);
        let user = rng.next_below(16) as u32;

        // Move time forward to the arrival, then submit at it.
        roundtrip(
            &mut writer,
            &mut reader,
            &format!(r#"{{"Advance":{{"to":{clock}}}}}"#),
        );
        let reply = roundtrip(
            &mut writer,
            &mut reader,
            &format!(
                r#"{{"Submit":{{"job":{{"id":{id},"procs":{procs},"runtime":{runtime},"walltime":{walltime},"user":{user},"submit":{clock}}}}}}}"#
            ),
        );
        if reply.contains("Rejected") {
            rejected += 1;
        } else {
            accepted += 1;
        }

        if (id + 1) % 100 == 0 {
            let stats = roundtrip(&mut writer, &mut reader, r#""Stats""#);
            println!("[{:>6}] after {} submissions: {stats}", clock, id + 1);
        }
    }

    println!("submitted {accepted} jobs ({rejected} rejected) over {clock} sim seconds");
    let stats = roundtrip(&mut writer, &mut reader, r#""Stats""#);
    println!("final stats: {stats}");

    if let Some(handle) = server_thread {
        let bye = roundtrip(&mut writer, &mut reader, r#""Shutdown""#);
        println!("drained: {bye}");
        handle.join().expect("server thread").expect("server run");
    } else {
        println!("leaving the external server running (send \"Shutdown\" to stop it)");
    }
}
