//! Prediction-driven backfilling: close the loop the paper's §VI.A opens
//! ("schedulers may reversely predict job run time, which is helpful in
//! making effective scheduling decisions").
//!
//! The same Theta workload is replayed under SJF + EASY backfilling with
//! three sources of planning walltimes:
//!
//! 1. the users' own requests (the baseline schedulers actually have),
//! 2. Last2 system-generated predictions (Tsafrir et al.), and
//! 3. a perfect oracle (actual runtimes).
//!
//! Tighter estimates let backfilling pack more jobs into reservation
//! holes; the oracle bounds what any predictor can buy.
//!
//! ```sh
//! cargo run --release --example prediction_scheduling
//! ```

use lumos_core::SystemId;
use lumos_predict::walltime::{last2_walltimes, perfect_walltimes, user_walltimes};
use lumos_sim::{simulate_with_walltimes, Policy, SimConfig};
use lumos_traces::{systems, Generator, GeneratorConfig};

fn main() {
    let trace = Generator::new(
        systems::profile_for(SystemId::Theta),
        GeneratorConfig {
            seed: 13,
            span_days: 10,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    println!(
        "workload: {} jobs over 10 days on {}\n",
        trace.len(),
        trace.system.name
    );

    let cfg = SimConfig {
        policy: Policy::Sjf,
        ..SimConfig::default()
    };
    let variants: [(&str, Vec<i64>); 4] = [
        ("user walltimes", user_walltimes(&trace, 1.5)),
        ("Last2 x1.5", last2_walltimes(&trace, 1.5)),
        ("Last2 x4", last2_walltimes(&trace, 4.0)),
        ("perfect oracle", perfect_walltimes(&trace)),
    ];

    println!(
        "{:<16} {:>12} {:>10} {:>8} {:>12}",
        "estimates", "mean wait", "bsld", "util", "p90 wait"
    );
    for (name, walltimes) in &variants {
        let m = simulate_with_walltimes(&trace, &cfg, walltimes).metrics;
        println!(
            "{:<16} {:>11.0}s {:>10.2} {:>7.1}% {:>11.0}s",
            name,
            m.mean_wait,
            m.mean_bsld,
            m.util * 100.0,
            m.p90_wait,
        );
    }

    println!("\nExpected shape: the oracle bounds what estimates can buy, and a");
    println!("*small* safety margin hurts — naive Last2 underestimates often");
    println!("(failed reruns drag user histories down), and underestimated");
    println!("walltimes wreck backfill plans. That asymmetry is exactly why the");
    println!("paper's §VI.A optimizes the underestimate rate first, and why its");
    println!("elapsed-time feature (which slashes underestimates, Fig. 12) is");
    println!("the right input for prediction-driven scheduling.");
}
