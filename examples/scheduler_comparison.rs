//! Scheduling-policy sweep: run one workload under every combination of
//! queue policy (FCFS/SJF/LJF/SAF/SQF) and backfilling discipline
//! (none/EASY/conservative), comparing wait, bounded slowdown, and
//! utilization — the kind of experiment SchedGym (paper §II.C) is for.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use lumos_core::SystemId;
use lumos_sim::{simulate, Backfill, Policy, Relax, SimConfig};
use lumos_traces::{systems, Generator, GeneratorConfig};

fn main() {
    // Theta's workload is a good sweep target: big rigid jobs, real
    // walltimes, moderate queue depth.
    let trace = Generator::new(
        systems::profile_for(SystemId::Theta),
        GeneratorConfig {
            seed: 7,
            span_days: 8,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    println!(
        "workload: {} jobs over {} days on {}\n",
        trace.len(),
        trace.span() / 86_400,
        trace.system.name
    );

    println!(
        "{:<6} {:<14} {:>12} {:>10} {:>8} {:>12}",
        "policy", "backfill", "mean wait", "bsld", "util", "p90 wait"
    );
    for policy in Policy::ALL {
        for backfill in [Backfill::None, Backfill::Easy, Backfill::Conservative] {
            let cfg = SimConfig {
                policy,
                backfill,
                relax: Relax::Strict,
                ..SimConfig::default()
            };
            let result = simulate(&trace, &cfg);
            let m = &result.metrics;
            println!(
                "{:<6} {:<14} {:>11.0}s {:>10.2} {:>7.1}% {:>11.0}s",
                policy.name(),
                backfill.name(),
                m.mean_wait,
                m.mean_bsld,
                m.util * 100.0,
                m.p90_wait,
            );
        }
    }

    println!("\nNote: backfilling should cut waits sharply under every policy;");
    println!("SJF/SAF trade large-job waits for small-job latency (see bsld).");
}
