//! Use Case 1 (paper §VI.A): predict job runtimes with and without the
//! elapsed-time feature and show the underestimate-rate reduction.
//!
//! ```sh
//! cargo run --release --example runtime_prediction
//! ```

use lumos_core::SystemId;
use lumos_predict::evaluate_trace;
use lumos_traces::{systems, Generator, GeneratorConfig};

fn main() {
    let trace = Generator::new(
        systems::profile_for(SystemId::Philly),
        GeneratorConfig {
            seed: 11,
            span_days: 2,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    println!(
        "predicting runtimes for {} Philly jobs (chronological 60/40 split)\n",
        trace.len()
    );

    // Evaluate every model at elapsed points of 1/8, 1/4, 1/2 of the mean
    // runtime — the Fig. 12 grid.
    let rows = evaluate_trace(&trace, &[0.125, 0.25, 0.5], 20_000);

    println!(
        "{:<8} {:>8} | {:>13} {:>10} | {:>13} {:>10}",
        "model", "elapsed", "underest base", "with elaps", "accuracy base", "with elaps"
    );
    for r in &rows {
        println!(
            "{:<8} {:>7.0}s | {:>13.3} {:>10.3} | {:>13.3} {:>10.3}",
            r.model.name(),
            r.elapsed_seconds,
            r.without.underestimate_rate,
            r.with_elapsed.underestimate_rate,
            r.without.accuracy,
            r.with_elapsed.accuracy,
        );
    }

    // Aggregate story, as in the paper's summary of Fig. 12.
    let n = rows.len() as f64;
    let before: f64 = rows
        .iter()
        .map(|r| r.without.underestimate_rate)
        .sum::<f64>()
        / n;
    let after: f64 = rows
        .iter()
        .map(|r| r.with_elapsed.underestimate_rate)
        .sum::<f64>()
        / n;
    println!(
        "\nmean underestimate rate: {before:.3} -> {after:.3} \
         ({:.0}% reduction) once elapsed time is considered",
        (before - after) / before * 100.0
    );
}
