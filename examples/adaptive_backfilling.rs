//! Use Case 2 (paper §VI.B): adaptive relaxed backfilling.
//!
//! Relaxed backfilling (Ward et al.) lets backfill candidates delay a
//! reserved job by up to `factor × expected_wait`, unlocking more backfill
//! opportunities at the cost of reservation violations. The paper's
//! adaptive variant (Eq. 1) scales the factor by live queue pressure
//! (`base × queue_len / max_queue_len`), relaxing exactly when users are
//! submitting the small short jobs that backfill well (Takeaway 8).
//!
//! This example regenerates Table II: strict vs fixed-relaxed vs adaptive
//! on Blue Waters, Mira, and Theta.
//!
//! ```sh
//! cargo run --release --example adaptive_backfilling
//! ```

use lumos_core::SystemId;
use lumos_sim::{simulate, Relax, SimConfig};
use lumos_traces::{systems, Generator, GeneratorConfig};

fn main() {
    for id in [SystemId::BlueWaters, SystemId::Mira, SystemId::Theta] {
        // HPC arrivals are minutes apart, so give the sparse systems a
        // longer window for stable statistics.
        let days = match id {
            SystemId::BlueWaters => 2,
            _ => 16,
        };
        let trace = Generator::new(
            systems::profile_for(id),
            GeneratorConfig {
                seed: 2024,
                span_days: days,
                ..GeneratorConfig::default()
            },
        )
        .generate();

        println!("== {} ({} jobs, {} days) ==", id.name(), trace.len(), days);
        println!(
            "{:<14} {:>12} {:>8} {:>8} {:>12} {:>10}",
            "relaxation", "mean wait", "bsld", "util", "violation", "violated"
        );
        for (name, relax) in [
            ("strict", Relax::Strict),
            ("fixed 10%", Relax::Fixed { factor: 0.10 }),
            ("adaptive 10%", Relax::Adaptive { base: 0.10 }),
        ] {
            let cfg = SimConfig {
                relax,
                ..SimConfig::default()
            };
            let m = simulate(&trace, &cfg).metrics;
            println!(
                "{:<14} {:>11.0}s {:>8.2} {:>7.1}% {:>11.1}s {:>10}",
                name,
                m.mean_wait,
                m.mean_bsld,
                m.util * 100.0,
                m.violation,
                m.violated_jobs,
            );
        }
        println!();
    }
    println!("Expected shape (paper Table II): the adaptive variant keeps the");
    println!("wait/bsld/util benefits of fixed relaxing while cutting the");
    println!("violation metric substantially (paper: 5-49% across systems).");
}
