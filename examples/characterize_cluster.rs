//! Cross-system characterization: regenerate the paper's comparative
//! analysis over all five systems and evaluate the eight takeaways.
//!
//! Also demonstrates loading a real trace in Standard Workload Format:
//! pass a path to an SWF file as the first argument to characterize it
//! instead of the synthetic suite.
//!
//! ```sh
//! cargo run --release --example characterize_cluster [trace.swf]
//! ```

use lumos_analysis::{analyze_suite, takeaways};
use lumos_core::SystemSpec;
use lumos_traces::generate_paper_suite;

fn main() {
    let traces = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable SWF file");
            // SWF headers override capacity; Theta is just the fallback spec.
            let trace =
                lumos_traces::swf::parse(&text, SystemSpec::theta()).expect("valid SWF trace");
            println!("loaded {} jobs from {path}", trace.len());
            vec![trace]
        }
        None => {
            println!("generating the five-system synthetic suite (2 days each)...");
            generate_paper_suite(2024, 2)
        }
    };

    let analyses = analyze_suite(&traces);

    println!(
        "\n{:<14} {:>8} {:>12} {:>10} {:>10} {:>9}",
        "System", "jobs", "med runtime", "util", "mean wait", "pass rate"
    );
    for a in &analyses {
        println!(
            "{:<14} {:>8} {:>11.0}s {:>9.1}% {:>9.0}s {:>8.1}%",
            a.system,
            a.overview.job_count,
            a.runtime.median,
            a.utilization.window_util * 100.0,
            a.waiting.mean_wait,
            a.failures.overall.count_shares[0] * 100.0,
        );
    }

    println!("\n== the paper's eight takeaways, evaluated on this data ==");
    for t in takeaways::evaluate(&analyses) {
        println!(
            "[{}] T{}: {}",
            if t.holds { "ok" } else { "??" },
            t.id,
            t.title
        );
        println!("     {}", t.evidence);
    }
}
