//! Quickstart: generate a synthetic cluster trace, replay it through the
//! scheduler simulator, and print the headline characterization numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lumos_analysis::analyze_system;
use lumos_core::SystemId;
use lumos_traces::{systems, Generator, GeneratorConfig};

fn main() {
    // 1. Pick one of the five calibrated paper systems (or build your own
    //    `SystemProfile`) and generate a deterministic synthetic trace.
    let profile = systems::profile_for(SystemId::Helios);
    let trace = Generator::new(
        profile,
        GeneratorConfig {
            seed: 42,
            span_days: 2,
            ..GeneratorConfig::default()
        },
    )
    .generate();
    println!(
        "generated {} jobs from {} users on {}",
        trace.len(),
        trace.users().len(),
        trace.system.name
    );

    // 2. Run the full characterization: this replays the trace through the
    //    `lumos-sim` scheduler (FCFS + EASY backfilling) to obtain waits,
    //    then computes every per-figure analysis of the paper.
    let analysis = analyze_system(&trace);

    println!("\n-- geometries (paper Fig. 1) --");
    println!("median runtime      : {:.0} s", analysis.runtime.median);
    println!(
        "median arrival gap  : {:.1} s",
        analysis.arrival.median_interval
    );
    println!(
        "single-GPU jobs     : {:.1} %",
        analysis.resources.single_unit_share * 100.0
    );

    println!("\n-- scheduling (paper Figs. 3-5) --");
    println!(
        "utilization         : {:.1} %",
        analysis.utilization.window_util * 100.0
    );
    println!("mean wait           : {:.0} s", analysis.waiting.mean_wait);
    println!(
        "jobs waiting <= 10 s: {:.1} %",
        analysis.waiting.under_10s_share * 100.0
    );

    println!("\n-- failures (paper Fig. 6) --");
    let f = &analysis.failures.overall;
    println!(
        "passed/failed/killed: {:.0}% / {:.0}% / {:.0}% of jobs",
        f.count_shares[0] * 100.0,
        f.count_shares[1] * 100.0,
        f.count_shares[2] * 100.0
    );
    println!(
        "  ... but by core-hours: {:.0}% / {:.0}% / {:.0}%",
        f.core_hour_shares[0] * 100.0,
        f.core_hour_shares[1] * 100.0,
        f.core_hour_shares[2] * 100.0
    );

    println!("\n-- user behaviour (paper Fig. 8) --");
    println!(
        "top-10 resource-config groups cover {:.0}% of a heavy user's jobs",
        analysis.user_groups.cumulative[9] * 100.0
    );
}
