//! Scheduling-level integration: policies, backfilling family, and the
//! adaptive-relaxation experiment (Table II shape) on generated workloads.

use lumos_core::SystemId;
use lumos_sim::{simulate, Backfill, Policy, Relax, SimConfig};
use lumos_traces::{systems, Generator, GeneratorConfig};

fn theta_trace(days: u32) -> lumos_core::Trace {
    Generator::new(
        systems::profile_for(SystemId::Theta),
        GeneratorConfig {
            seed: 5,
            span_days: days,
            ..GeneratorConfig::default()
        },
    )
    .generate()
}

#[test]
fn backfilling_reduces_waits_on_congested_workloads() {
    let trace = theta_trace(8);
    let no_bf = simulate(
        &trace,
        &SimConfig {
            backfill: Backfill::None,
            ..SimConfig::default()
        },
    );
    let easy = simulate(&trace, &SimConfig::default());
    assert!(
        easy.metrics.mean_wait <= no_bf.metrics.mean_wait,
        "EASY {} vs none {}",
        easy.metrics.mean_wait,
        no_bf.metrics.mean_wait
    );
}

#[test]
fn conservative_backfilling_also_schedules_everything() {
    let trace = theta_trace(4);
    let r = simulate(
        &trace,
        &SimConfig {
            backfill: Backfill::Conservative,
            ..SimConfig::default()
        },
    );
    assert_eq!(r.jobs.len(), trace.len());
    assert!(r.jobs.iter().all(|j| j.wait.is_some()));
}

#[test]
fn relaxed_backfilling_trades_violations_for_waits() {
    let trace = theta_trace(8);
    let strict = simulate(&trace, &SimConfig::default());
    let relaxed = simulate(
        &trace,
        &SimConfig {
            relax: Relax::Fixed { factor: 0.10 },
            ..SimConfig::default()
        },
    );
    // Strict EASY never delays a reservation.
    assert_eq!(strict.metrics.violated_jobs, 0);
    // Relaxed backfilling may; its mean wait must not blow up
    // (the whole point is the waits stay comparable or better).
    assert!(relaxed.metrics.mean_wait <= strict.metrics.mean_wait * 1.3);
}

#[test]
fn adaptive_relaxation_cuts_violations_versus_fixed() {
    // The Table II headline, asserted as a shape: violations(adaptive)
    // < violations(fixed) with wait/util within a few percent.
    let trace = theta_trace(12);
    let fixed = simulate(
        &trace,
        &SimConfig {
            relax: Relax::Fixed { factor: 0.10 },
            ..SimConfig::default()
        },
    );
    let adaptive = simulate(
        &trace,
        &SimConfig {
            relax: Relax::Adaptive { base: 0.10 },
            ..SimConfig::default()
        },
    );
    assert!(
        adaptive.metrics.violation <= fixed.metrics.violation,
        "adaptive {} vs fixed {}",
        adaptive.metrics.violation,
        fixed.metrics.violation
    );
    assert!((adaptive.metrics.util - fixed.metrics.util).abs() < 0.05);
}

#[test]
fn all_policies_complete_on_every_system() {
    for id in SystemId::PAPER_SYSTEMS {
        let trace = Generator::new(
            systems::profile_for(id),
            GeneratorConfig {
                seed: 9,
                span_days: 1,
                ..GeneratorConfig::default()
            },
        )
        .generate();
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::Saf] {
            let r = simulate(
                &trace,
                &SimConfig {
                    policy,
                    ..SimConfig::default()
                },
            );
            assert_eq!(r.jobs.len(), trace.len(), "{id:?} {policy:?}");
            assert!(r.metrics.util > 0.0);
        }
    }
}
