//! End-to-end tests of multi-tenant serving: the `stats` tenants block
//! shows max-min fair-share beating FIFO on a skewed two-tenant load,
//! quota refusals arrive as a distinct reply, and a SIGKILLed
//! tenant-enabled `lumos serve --journal` process recovers byte-identical
//! state (per-tenant accounting and fairness included).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use lumos_core::SystemSpec;
use lumos_serve::{ServeConfig, Server};
use lumos_sim::{Policy, SimConfig, TenantTable};
use serde_json::Value;

/// The two-tenant table every test here uses: equal weights, a quota on
/// `light` tight enough to refuse one oversized probe.
const TENANTS: &str = "heavy 1.0 -\nlight 1.0 100\n";

/// A small machine so the policy, not spare capacity, decides who runs.
fn tiny_system(capacity: u64) -> SystemSpec {
    let mut s = SystemSpec::theta();
    s.name = "tenant-serve-test".into();
    s.total_nodes = capacity as u32;
    s.units_per_node = 1;
    s.total_units = capacity;
    s
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lumos-tenants-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dir");
    dir
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// One NDJSON exchange, returning the raw response line.
fn exchange(writer: &mut impl Write, reader: &mut impl BufRead, request: &str) -> String {
    writeln!(writer, "{request}").expect("write request");
    writer.flush().expect("flush request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "server closed on {request}");
    line.trim_end().to_string()
}

fn parsed(line: &str) -> Value {
    serde_json::parse_value_complete(line).expect("response is JSON")
}

/// Numeric field extraction (the wire carries integers and floats).
fn num(v: &Value) -> f64 {
    match v {
        Value::I64(n) => *n as f64,
        Value::U64(n) => *n as f64,
        Value::F64(n) => *n,
        other => panic!("not a number: {other:?}"),
    }
}

/// Binds an in-process virtual-time server over the tenant table.
fn bind_tenant_server(policy: Policy) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let sim = SimConfig {
        policy,
        ..SimConfig::default()
    };
    let config = ServeConfig {
        system: tiny_system(8),
        sim,
        queue_capacity: 64,
        time_scale: 0.0,
        journal: None,
        predictor: None,
        tenants: Some(TenantTable::parse(TENANTS).expect("valid table")),
        replicate_to: None,
        follow: None,
        group_commit: 64,
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, std::thread::spawn(move || server.run(false)))
}

/// The skewed backlog: 16 heavy jobs vs 4 light jobs, all at t = 0, each
/// 2 units × 400 s on an 8-unit machine — four run at a time.
fn skewed_submits() -> Vec<String> {
    let mut cmds = Vec::new();
    for i in 0..16u64 {
        cmds.push(format!(
            r#"{{"Submit":{{"job":{{"id":{i},"procs":2,"runtime":400,"walltime":450,"submit":0,"tenant":"heavy"}}}}}}"#
        ));
    }
    for i in 100..104u64 {
        cmds.push(format!(
            r#"{{"Submit":{{"job":{{"id":{i},"procs":2,"runtime":400,"walltime":450,"submit":0,"tenant":"light"}}}}}}"#
        ));
    }
    cmds
}

/// Runs the skewed load to t = 500 and returns the `stats` tenants block.
fn tenants_block_at_500(policy: Policy) -> Value {
    let (addr, handle) = bind_tenant_server(policy);
    let (mut writer, mut reader) = connect(&addr);
    for c in skewed_submits() {
        let reply = exchange(&mut writer, &mut reader, &c);
        assert!(reply.contains("Submitted"), "unexpected {reply}");
    }
    // Mid-backlog, NOT after a drain: a full drain delivers every job
    // regardless of policy and would equalize the totals.
    exchange(&mut writer, &mut reader, r#"{"Advance":{"to":500}}"#);
    let stats = exchange(&mut writer, &mut reader, r#""Stats""#);
    exchange(&mut writer, &mut reader, r#""Shutdown""#);
    handle.join().expect("server thread").expect("server run");
    parsed(&stats)
        .get("Stats")
        .and_then(|v| v.get("stats"))
        .and_then(|v| v.get("tenants"))
        .expect("tenant-enabled stats carry a tenants block")
        .clone()
}

#[test]
fn maxmin_reports_strictly_higher_fairness_than_fifo() {
    let fifo = tenants_block_at_500(Policy::Fcfs);
    let maxmin = tenants_block_at_500(Policy::MaxMinFair);
    let fairness = |block: &Value| num(block.get("fairness").expect("fairness index"));
    let (jf, jm) = (fairness(&fifo), fairness(&maxmin));
    assert!(
        jm > jf,
        "max-min fairness ({jm}) must strictly beat FIFO ({jf})"
    );
    // Arrivals are processed as they land, so the first wave fills the
    // machine with heavy jobs (lowest ids) under every policy; max-min
    // splits each later wave evenly. By t = 500 that is 4800 vs 1600
    // unit-seconds — Jain 0.8 — against FIFO's total starvation at 0.5.
    assert!((jf - 0.5).abs() < 1e-9, "FIFO starves light: {jf}");
    assert!((jm - 0.8).abs() < 1e-9, "max-min splits later waves: {jm}");

    // The per-tenant rows carry usage and wait quantiles for both
    // tenants; under FIFO the light tenant has started nothing.
    let rows = maxmin.get("tenants").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), 3, "heavy, light, and built-in default");
    let light = &fifo.get("tenants").and_then(Value::as_array).unwrap()[1];
    let light_served = light
        .get("usage")
        .and_then(|u| u.get("served_unit_seconds"))
        .map(num);
    assert_eq!(
        light_served,
        Some(0.0),
        "FIFO delivered nothing to light by t = 500"
    );
}

#[test]
fn quota_refusals_are_a_distinct_reply() {
    let (addr, handle) = bind_tenant_server(Policy::Fcfs);
    let (mut writer, mut reader) = connect(&addr);

    // light's quota bounds *outstanding* units at 100. Pile up queued
    // full-machine jobs until the quota — not capacity — refuses.
    let reply = exchange(
        &mut writer,
        &mut reader,
        r#"{"Submit":{"job":{"id":1,"procs":3,"runtime":50,"submit":0,"tenant":"light"}}}"#,
    );
    assert!(reply.contains("Submitted"), "unexpected {reply}");
    for i in 2..=12u64 {
        let reply = exchange(
            &mut writer,
            &mut reader,
            &format!(
                r#"{{"Submit":{{"job":{{"id":{i},"procs":8,"runtime":5000,"submit":0,"tenant":"light"}}}}}}"#
            ),
        );
        assert!(reply.contains("Submitted"), "unexpected {reply}");
    }
    // 3 + 11 × 8 = 91 outstanding; 8 more would make 99 ≤ 100: fine.
    // Then 8 on top busts it: 99 + 8 = 107 > 100.
    let reply = exchange(
        &mut writer,
        &mut reader,
        r#"{"Submit":{"job":{"id":13,"procs":8,"runtime":5000,"submit":0,"tenant":"light"}}}"#,
    );
    assert!(reply.contains("Submitted"), "unexpected {reply}");
    let reply = parsed(&exchange(
        &mut writer,
        &mut reader,
        r#"{"Submit":{"job":{"id":14,"procs":8,"runtime":5000,"submit":0,"tenant":"light"}}}"#,
    ));
    let quota = reply
        .get("QuotaExceeded")
        .unwrap_or_else(|| panic!("expected QuotaExceeded, got {reply:?}"));
    assert_eq!(quota.get("tenant").and_then(Value::as_str), Some("light"));
    assert_eq!(quota.get("requested").map(num), Some(8.0));
    assert_eq!(quota.get("in_use").map(num), Some(99.0));
    assert_eq!(quota.get("quota").map(num), Some(100.0));

    // Cancelling a queued job releases quota: the same submission is
    // accepted afterwards.
    let reply = exchange(&mut writer, &mut reader, r#"{"Cancel":{"id":13}}"#);
    assert!(reply.contains("true"), "cancel failed: {reply}");
    let reply = exchange(
        &mut writer,
        &mut reader,
        r#"{"Submit":{"job":{"id":14,"procs":8,"runtime":5000,"submit":0,"tenant":"light"}}}"#,
    );
    assert!(reply.contains("Submitted"), "unexpected {reply}");

    // Unknown tenants are refused outright; empty names die at the
    // protocol edge with field context.
    let reply = exchange(
        &mut writer,
        &mut reader,
        r#"{"Submit":{"job":{"id":50,"procs":1,"runtime":5,"submit":0,"tenant":"mallory"}}}"#,
    );
    assert!(
        reply.contains("Rejected") && reply.contains("unknown tenant"),
        "unexpected {reply}"
    );
    let reply = exchange(
        &mut writer,
        &mut reader,
        r#"{"Submit":{"job":{"id":51,"procs":1,"runtime":5,"submit":0,"tenant":" "}}}"#,
    );
    assert!(
        reply.contains("Error") && reply.contains("Submit.job.tenant"),
        "unexpected {reply}"
    );

    exchange(&mut writer, &mut reader, r#""Shutdown""#);
    handle.join().expect("server thread").expect("server run");
}

// ---------------------------------------------------------------------
// Crash injection: SIGKILL a tenant-enabled journaled server, restart,
// and demand byte-identical answers versus an uninterrupted run.
// ---------------------------------------------------------------------

struct ServerProc {
    child: Child,
    addr: String,
    stderr: BufReader<ChildStderr>,
}

impl ServerProc {
    fn spawn(dir: &Path, tenants_file: &Path) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_lumos"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .arg("--journal")
            .arg(dir)
            .args(["--fsync", "always", "--snapshot-every", "6"])
            .args(["--policy", "maxmin"])
            .arg("--tenants")
            .arg(tenants_file)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn lumos serve");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut banner = String::new();
        stderr.read_line(&mut banner).expect("read banner");
        let addr = banner
            .strip_prefix("lumos-serve listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_string();
        Self {
            child,
            addr,
            stderr,
        }
    }

    fn read_recovery_lines(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.stderr.read_line(&mut line).expect("read stderr");
            assert!(n > 0, "stderr closed before recovery line: {lines:?}");
            let done = line.contains("recovered") && line.contains("journaled commands");
            lines.push(line.trim_end().to_string());
            if done {
                return lines;
            }
        }
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }
}

/// Pre-crash commands on the default (theta-sized) system: tenant-tagged
/// submissions for both tenants, advances, and a cancel. All of these are
/// durable operations; refusals are probed post-crash instead, because
/// refused submissions are never journaled and the live rejection counter
/// is deliberately not durable state.
fn precrash_commands(units: u64) -> Vec<String> {
    let big = units - 8;
    let mut cmds = Vec::new();
    for i in 0..24u64 {
        let submit = i as i64 * 13;
        let tenant = if i % 3 == 0 { "light" } else { "heavy" };
        let (procs, runtime) = if i % 5 == 0 && tenant == "heavy" {
            (big, 400 + i as i64 * 7)
        } else {
            (1 + (i % 7), 90 + i as i64 * 11)
        };
        if i % 4 == 0 {
            cmds.push(format!(r#"{{"Advance":{{"to":{submit}}}}}"#));
        }
        cmds.push(format!(
            r#"{{"Submit":{{"job":{{"id":{i},"procs":{procs},"runtime":{runtime},"walltime":{},"user":{},"submit":{submit},"tenant":"{tenant}"}}}}}}"#,
            runtime + 200,
            i % 3,
        ));
    }
    cmds.push(r#"{"Cancel":{"id":20}}"#.to_string());
    cmds.push(r#"{"Advance":{"to":500}}"#.to_string());
    cmds
}

/// Post-crash probes whose raw responses must match byte for byte — the
/// `Stats` probe covers the whole tenants block (usage, waits, fairness),
/// and the two refusal probes (over-quota and unknown tenant) demand that
/// the recovered quota accounting refuses with the exact same numbers an
/// uninterrupted server would.
fn probe_commands() -> Vec<String> {
    vec![
        r#"{"Submit":{"job":{"id":900,"procs":95,"runtime":50,"submit":500,"tenant":"light"}}}"#
            .to_string(),
        r#"{"Submit":{"job":{"id":901,"procs":1,"runtime":5,"submit":500,"tenant":"mallory"}}}"#
            .to_string(),
        r#"{"Query":{"id":0}}"#.to_string(),
        r#"{"Query":{"id":20}}"#.to_string(),
        r#"{"Query":{"id":23}}"#.to_string(),
        r#""Stats""#.to_string(),
        r#""Snapshot""#.to_string(),
        r#""Shutdown""#.to_string(),
    ]
}

/// Feeds `commands` to an uninterrupted in-process tenant-enabled server
/// and returns every raw response line.
fn reference_responses(commands: &[String]) -> Vec<String> {
    let sim = SimConfig {
        policy: Policy::MaxMinFair,
        ..SimConfig::default()
    };
    let config = ServeConfig {
        system: SystemSpec::theta(),
        sim,
        queue_capacity: 1024,
        time_scale: 0.0,
        journal: None,
        predictor: None,
        tenants: Some(TenantTable::parse(TENANTS).expect("valid table")),
        replicate_to: None,
        follow: None,
        group_commit: 64,
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind reference");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run(false));
    let (mut writer, mut reader) = connect(&addr);
    let replies: Vec<String> = commands
        .iter()
        .map(|c| exchange(&mut writer, &mut reader, c))
        .collect();
    handle
        .join()
        .expect("reference thread")
        .expect("reference run");
    replies
}

#[test]
fn killed_tenant_server_recovers_byte_identical_state() {
    let dir = fresh_dir("kill");
    let tenants_file = dir.join("tenants.conf");
    std::fs::write(&tenants_file, TENANTS).expect("write tenant table");
    let pre = precrash_commands(SystemSpec::theta().total_units);
    let probes = probe_commands();

    let server = ServerProc::spawn(&dir, &tenants_file);
    let (mut writer, mut reader) = connect(&server.addr);
    let mut live_replies = Vec::new();
    for c in &pre {
        live_replies.push(exchange(&mut writer, &mut reader, c));
    }
    server.kill();

    let mut restarted = ServerProc::spawn(&dir, &tenants_file);
    let recovery = restarted.read_recovery_lines();
    assert!(
        recovery
            .iter()
            .any(|l| l.contains("journaled commands (t = 500)")),
        "unexpected recovery chatter: {recovery:?}"
    );

    let (mut writer, mut reader) = connect(&restarted.addr);
    let recovered_replies: Vec<String> = probes
        .iter()
        .map(|c| exchange(&mut writer, &mut reader, c))
        .collect();
    let status = restarted.child.wait().expect("server exits after Shutdown");
    assert!(status.success(), "restarted server exited with {status}");

    // The refusals really were refused — by the *recovered* server.
    assert!(
        recovered_replies[0].contains("QuotaExceeded"),
        "over-quota probe was not refused: {}",
        recovered_replies[0]
    );
    assert!(
        recovered_replies[1].contains("unknown tenant"),
        "unknown-tenant probe was not refused: {}",
        recovered_replies[1]
    );

    let all: Vec<String> = pre.iter().chain(&probes).cloned().collect();
    let reference = reference_responses(&all);
    assert_eq!(
        live_replies[..],
        reference[..pre.len()],
        "pre-crash acknowledgments diverged from the uninterrupted run"
    );
    assert_eq!(
        recovered_replies[..],
        reference[pre.len()..],
        "recovered tenant state diverged from the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).ok();
}
