//! Online-vs-batch parity for the predictor-in-the-loop serving path: a
//! virtual-time server with `--predictor` enabled, fed a trace one job at
//! a time, must report exactly the metrics of a batch
//! `simulate_with_walltimes` over the corresponding offline provider
//! (`last2_walltimes` / `user_walltimes`) — the streaming predictor and
//! the batch provider are the same model observed in the same order.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use lumos_core::{Job, SystemSpec, Trace};
use lumos_predict::walltime::{last2_walltimes, user_walltimes};
use lumos_serve::{PredictorConfig, ServeConfig, Server};
use lumos_sim::{simulate_with_walltimes, SimConfig};
use serde_json::Value;

/// Numeric accessors the vendored `Value` doesn't provide.
fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::I64(n) => Some(n as f64),
        Value::U64(n) => Some(n as f64),
        Value::F64(n) => Some(n),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::I64(n) => u64::try_from(n).ok(),
        Value::U64(n) => Some(n),
        _ => None,
    }
}

/// A small machine so jobs actually queue and backfill decisions depend on
/// the planned walltimes.
fn tiny_system(capacity: u64) -> SystemSpec {
    let mut s = SystemSpec::theta();
    s.name = "predictor-test".into();
    s.total_nodes = capacity as u32;
    s.units_per_node = 1;
    s.total_units = capacity;
    s
}

/// A deterministic workload over a handful of users with per-user runtime
/// drift, so Last2 histories matter. When `with_walltimes` is set, even
/// ids carry a requested walltime (exercising the `user` provider's
/// pass-through + fallback split).
fn workload(with_walltimes: bool) -> Vec<Job> {
    let mut jobs = Vec::new();
    for i in 0..30u64 {
        let submit = (i as i64) * 41 % 700;
        let runtime = 45 + (i as i64 * 97) % 500 + (i as i64 % 4) * 60;
        let procs = 1 + (i * 5) % 11;
        let mut j = Job::basic(i, (i % 4) as u32, submit, runtime, procs);
        if with_walltimes && i % 2 == 0 {
            j.walltime = Some(runtime + 90 + (i as i64 * 31) % 300);
        }
        jobs.push(j);
    }
    jobs
}

/// One NDJSON request/response exchange.
fn roundtrip(writer: &mut impl Write, reader: &mut impl BufRead, request: &str) -> Value {
    writeln!(writer, "{request}").expect("write request");
    writer.flush().expect("flush request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    serde_json::parse_value_complete(&line).expect("response is JSON")
}

/// Drives a predictor-enabled virtual-time server through `trace`'s jobs
/// in trace order and returns `(stats, bye_metrics)` — the pre-shutdown
/// `Stats` payload and the final `Bye` metrics.
fn serve_trace(trace: &Trace, sim: SimConfig, predictor: PredictorConfig) -> (Value, Value) {
    let config = ServeConfig {
        system: trace.system.clone(),
        sim,
        queue_capacity: 64,
        time_scale: 0.0,
        journal: None,
        predictor: Some(predictor),
        tenants: None,
        replicate_to: None,
        follow: None,
        group_commit: 64,
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run(false));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    // Trace order is the order the batch providers observe runtimes in;
    // submitting in the same order makes the streaming predictor see the
    // identical history at every decision point.
    for (i, job) in trace.jobs().iter().enumerate() {
        if i % 3 == 0 && job.submit > 0 {
            let reply = roundtrip(
                &mut writer,
                &mut reader,
                &format!(r#"{{"Advance":{{"to":{}}}}}"#, job.submit - 1),
            );
            assert!(reply.get("Advanced").is_some(), "unexpected {reply:?}");
        }
        let walltime = job
            .walltime
            .map_or(String::new(), |w| format!(r#""walltime":{w},"#));
        let reply = roundtrip(
            &mut writer,
            &mut reader,
            &format!(
                r#"{{"Submit":{{"job":{{"id":{},"procs":{},"runtime":{},{walltime}"user":{},"submit":{}}}}}}}"#,
                job.id, job.procs, job.runtime, job.user, job.submit
            ),
        );
        assert!(reply.get("Submitted").is_some(), "unexpected {reply:?}");
    }

    // Drain everything so prediction accuracy covers every job, then read
    // the live stats before shutting down.
    let reply = roundtrip(&mut writer, &mut reader, r#"{"Advance":{"to":100000}}"#);
    assert!(reply.get("Advanced").is_some(), "unexpected {reply:?}");
    let stats = roundtrip(&mut writer, &mut reader, r#""Stats""#)
        .get("Stats")
        .and_then(|v| v.get("stats"))
        .expect("stats payload")
        .clone();
    let bye = roundtrip(&mut writer, &mut reader, r#""Shutdown""#);
    let metrics = bye
        .get("Bye")
        .and_then(|v| v.get("metrics"))
        .expect("bye carries metrics")
        .clone();
    handle.join().expect("server thread").expect("server run");
    (stats, metrics)
}

fn as_json(value: &impl serde::Serialize) -> Value {
    serde_json::parse_value_complete(&serde_json::to_string(value).unwrap()).expect("JSON")
}

/// Checks the served metrics and prediction-accuracy stats for `provider`
/// against the batch reference built from `walltimes`.
fn assert_parity(with_walltimes: bool, predictor: PredictorConfig, walltimes: &[i64]) {
    let system = tiny_system(16);
    let sim = SimConfig::default();
    let trace = Trace::new(system, workload(with_walltimes)).expect("valid trace");
    let batch = simulate_with_walltimes(&trace, &sim, walltimes);

    let (stats, online_metrics) = serve_trace(&trace, sim, predictor);
    assert_eq!(
        online_metrics,
        as_json(&batch.metrics),
        "predictor-enabled serve diverged from batch simulate_with_walltimes"
    );

    // The accuracy stats cover every completed job and agree with the
    // offline estimates the batch path used.
    let prediction = stats.get("prediction").expect("prediction stats");
    assert_eq!(
        prediction.get("jobs").and_then(as_u64),
        Some(trace.len() as u64)
    );
    let scored: Vec<(f64, f64)> = trace
        .jobs()
        .iter()
        .zip(walltimes)
        .map(|(j, &w)| (w as f64, j.runtime as f64))
        .collect();
    let under = scored.iter().filter(|(w, r)| w < r).count() as f64 / scored.len() as f64;
    let mae = scored.iter().map(|(w, r)| (w - r).abs()).sum::<f64>() / scored.len() as f64;
    let got_under = prediction
        .get("underestimate_rate")
        .and_then(as_f64)
        .expect("underestimate_rate");
    let got_mae = prediction
        .get("mean_abs_error")
        .and_then(as_f64)
        .expect("mean_abs_error");
    assert!((got_under - under).abs() < 1e-12, "{got_under} vs {under}");
    assert!((got_mae - mae).abs() < 1e-9, "{got_mae} vs {mae}");
}

#[test]
fn last2_serve_matches_batch_last2_walltimes() {
    let trace = Trace::new(tiny_system(16), workload(false)).expect("valid trace");
    let walltimes = last2_walltimes(&trace, 1.5);
    assert_parity(false, PredictorConfig::Last2 { margin: 1.5 }, &walltimes);
}

#[test]
fn user_serve_matches_batch_user_walltimes() {
    let trace = Trace::new(tiny_system(16), workload(true)).expect("valid trace");
    let walltimes = user_walltimes(&trace, 2.0);
    assert_parity(true, PredictorConfig::User { margin: 2.0 }, &walltimes);
}

#[test]
fn stats_names_the_active_predictor() {
    let trace = Trace::new(tiny_system(16), workload(false)).expect("valid trace");
    let (stats, _) = serve_trace(
        &trace,
        SimConfig::default(),
        PredictorConfig::Last2 { margin: 1.0 },
    );
    assert_eq!(
        stats.get("predictor").and_then(Value::as_str),
        Some("last2")
    );
}
