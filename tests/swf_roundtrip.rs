//! SWF interchange: generated traces survive a write→parse round trip and
//! feed back into the analysis pipeline unchanged.

use lumos_analysis::analyze_system;
use lumos_core::SystemId;
use lumos_traces::{swf, systems, Generator, GeneratorConfig};

fn trace(id: SystemId) -> lumos_core::Trace {
    Generator::new(
        systems::profile_for(id),
        GeneratorConfig {
            seed: 55,
            span_days: 1,
            ..GeneratorConfig::default()
        },
    )
    .generate()
}

#[test]
fn roundtrip_preserves_every_system() {
    for id in SystemId::PAPER_SYSTEMS {
        let original = trace(id);
        let text = swf::write(&original);
        let spec = original.system.clone();
        let parsed = swf::parse(&text, spec).expect("own output parses");
        assert_eq!(original.len(), parsed.len(), "{id:?}");
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.procs, b.procs);
            assert_eq!(a.walltime, b.walltime);
            assert_eq!(a.status, b.status);
            assert_eq!(a.user, b.user);
        }
    }
}

#[test]
fn analysis_results_match_through_swf() {
    let original = trace(SystemId::Theta);
    let text = swf::write(&original);
    let parsed = swf::parse(&text, original.system.clone()).expect("parses");
    let a = analyze_system(&original);
    let b = analyze_system(&parsed);
    assert_eq!(a.overview.job_count, b.overview.job_count);
    assert_eq!(a.runtime.median, b.runtime.median);
    assert_eq!(a.failures.overall.counts, b.failures.overall.counts);
    // Waits come from the deterministic replay, so they match too.
    assert_eq!(a.waiting.mean_wait, b.waiting.mean_wait);
}

#[test]
fn philly_virtual_clusters_survive_swf() {
    let original = trace(SystemId::Philly);
    let text = swf::write(&original);
    let parsed = swf::parse(&text, original.system.clone()).expect("parses");
    for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
        assert_eq!(a.virtual_cluster, b.virtual_cluster);
    }
}
