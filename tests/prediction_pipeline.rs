//! Prediction integration: the Fig. 12 experiment on real generated traces
//! (not just the synthetic bimodal fixtures used in unit tests).

use lumos_core::SystemId;
use lumos_predict::{evaluate_trace, ModelKind};
use lumos_traces::{systems, Generator, GeneratorConfig};

fn trace(id: SystemId, days: u32) -> lumos_core::Trace {
    Generator::new(
        systems::profile_for(id),
        GeneratorConfig {
            seed: 31,
            span_days: days,
            ..GeneratorConfig::default()
        },
    )
    .generate()
}

#[test]
fn fig12_grid_runs_on_a_dl_trace() {
    let rows = evaluate_trace(&trace(SystemId::Helios, 1), &[0.125, 0.25, 0.5], 4_000);
    assert_eq!(rows.len(), 15, "5 models x 3 elapsed points");
    for r in &rows {
        assert!(r.without.jobs >= 10);
        assert!((0.0..=1.0).contains(&r.without.underestimate_rate));
        assert!((0.0..=1.0).contains(&r.with_elapsed.accuracy));
    }
}

#[test]
fn elapsed_time_cuts_underestimates_on_generated_workloads() {
    // The paper's headline claim, on the synthetic Philly workload whose
    // per-user failure modes (Fig. 11) make elapsed time informative.
    let rows = evaluate_trace(&trace(SystemId::Philly, 1), &[0.25, 0.5], 4_000);
    assert!(!rows.is_empty());
    let improved = rows
        .iter()
        .filter(|r| r.with_elapsed.underestimate_rate <= r.without.underestimate_rate)
        .count();
    assert!(
        improved * 10 >= rows.len() * 8,
        "elapsed time should reduce underestimation for >=80% of cells: {improved}/{}",
        rows.len()
    );
}

#[test]
fn every_model_is_exercised() {
    let rows = evaluate_trace(&trace(SystemId::Helios, 1), &[0.25], 2_000);
    for kind in ModelKind::ALL {
        assert!(
            rows.iter().any(|r| r.model == kind),
            "missing model {kind:?}"
        );
    }
}

#[test]
fn evaluation_is_deterministic() {
    let t = trace(SystemId::Philly, 1);
    let a = evaluate_trace(&t, &[0.25], 2_000);
    let b = evaluate_trace(&t, &[0.25], 2_000);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.without.underestimate_rate, y.without.underestimate_rate);
        assert_eq!(x.with_elapsed.accuracy, y.with_elapsed.accuracy);
    }
}
