//! Paper-shape assertions: the qualitative cross-system facts the paper
//! reports, verified on the synthetic suite. These are the contracts the
//! calibration must keep (EXPERIMENTS.md records the quantitative
//! comparison; these tests pin the *orderings and contrasts*).

use lumos_analysis::{analyze_suite, SystemAnalysis};
use lumos_traces::generate_paper_suite;
use std::sync::OnceLock;

/// The replayed-and-analyzed suite is expensive (minutes of simulation);
/// compute it once per test process.
fn suite() -> &'static [SystemAnalysis] {
    static SUITE: OnceLock<Vec<SystemAnalysis>> = OnceLock::new();
    SUITE.get_or_init(|| analyze_suite(&generate_paper_suite(2024, 2)))
}

fn get<'a>(analyses: &'a [SystemAnalysis], name: &str) -> &'a SystemAnalysis {
    analyses
        .iter()
        .find(|a| a.system == name)
        .unwrap_or_else(|| panic!("system {name} missing"))
}

#[test]
fn fig1a_runtime_ordering_and_diversity() {
    let a = suite();
    let (mira, bw) = (get(a, "Mira"), get(a, "Blue Waters"));
    let (philly, helios) = (get(a, "Philly"), get(a, "Helios"));
    // Median runtimes: Mira/BW ≈ 1.5 h ≫ Philly ≈ minutes ≫ Helios ≈ 90 s.
    assert!(
        mira.runtime.median > 3_000.0,
        "Mira {}",
        mira.runtime.median
    );
    assert!(bw.runtime.median > 2_000.0, "BW {}", bw.runtime.median);
    assert!(
        philly.runtime.median < mira.runtime.median / 3.0,
        "Philly {}",
        philly.runtime.median
    );
    assert!(
        helios.runtime.median < 300.0,
        "Helios {}",
        helios.runtime.median
    );
    // DL runtimes span more orders of magnitude than classic HPC.
    let spread = |s: &SystemAnalysis| (s.runtime.max / s.runtime.min.max(1.0)).log10();
    assert!(spread(helios) > spread(mira));
}

#[test]
fn fig1b_arrival_density_split() {
    let a = suite();
    // HPC arrivals are ≥10× sparser than DL/hybrid arrivals.
    let mira = get(a, "Mira").arrival.mean_interval;
    let theta = get(a, "Theta").arrival.mean_interval;
    let bw = get(a, "Blue Waters").arrival.mean_interval;
    let helios = get(a, "Helios").arrival.mean_interval;
    assert!(mira > 10.0 * bw, "Mira {mira} vs BW {bw}");
    assert!(theta > 10.0 * helios, "Theta {theta} vs Helios {helios}");
    // Helios has a strong diurnal peak; Philly's is much flatter.
    let helios_ratio = get(a, "Helios").arrival.hourly_max_min_ratio.unwrap();
    let philly_ratio = get(a, "Philly").arrival.hourly_max_min_ratio.unwrap();
    assert!(helios_ratio > 2.0 * philly_ratio);
}

#[test]
fn fig1c_resource_request_split() {
    let a = suite();
    // ~80 % of DL jobs use one GPU; >50 % of Mira jobs exceed 1,000 cores.
    for name in ["Philly", "Helios"] {
        let share = get(a, name).resources.single_unit_share;
        assert!((0.7..=0.95).contains(&share), "{name} single-GPU {share}");
    }
    assert!(get(a, "Mira").resources.over_1000_share > 0.5);
    // Blue Waters sits in the middle: small median, nearly no 1-core jobs
    // beyond its debug mode.
    let bw = get(a, "Blue Waters").resources.median_procs;
    assert!((4.0..=512.0).contains(&bw), "BW median procs {bw}");
}

#[test]
fn fig2_dominating_groups_shift() {
    let a = suite();
    // Small jobs dominate Blue Waters core-hours (>70 %); on Helios they
    // carry almost nothing (<15 %).
    assert!(get(a, "Blue Waters").domination.by_size[0] > 0.7);
    assert!(get(a, "Helios").domination.by_size[0] < 0.15);
    // Classic HPC core-hours concentrate in middle-length jobs; DL
    // core-hours lean long (Takeaway 4's strongest contrast).
    let mira = get(a, "Mira").domination.by_length;
    assert!(
        mira[1] > mira[0],
        "Mira middle {} vs short {}",
        mira[1],
        mira[0]
    );
    let helios = get(a, "Helios").domination.by_length;
    assert!(helios[2] > 0.4, "Helios long share {}", helios[2]);
}

#[test]
fn fig3_fig4_utilization_and_wait_contrast() {
    let a = suite();
    // Philly runs at the lowest utilization (virtual-cluster isolation)
    // while still making jobs wait; Helios waits are near-interactive.
    let philly = get(a, "Philly");
    let helios = get(a, "Helios");
    let mira = get(a, "Mira");
    assert!(philly.utilization.window_util < mira.utilization.window_util);
    assert!(philly.utilization.window_util < 0.7);
    assert!(
        helios.waiting.under_10s_share > 0.6,
        "Helios {}",
        helios.waiting.under_10s_share
    );
    assert!(philly.waiting.mean_wait > 10.0 * helios.waiting.mean_wait.max(1.0));
    // Blue Waters queues: mean wait well above Helios.
    let bw = get(a, "Blue Waters");
    assert!(bw.waiting.mean_wait > 20.0 * helios.waiting.mean_wait.max(1.0));
}

#[test]
fn fig5_long_jobs_wait_longest() {
    let a = suite();
    // Backfilling favours short jobs, so the long class waits the longest
    // on the congested systems.
    for name in ["Blue Waters", "Mira"] {
        let w = &get(a, name).waiting.mean_wait_by_length;
        if let (Some(short), Some(long)) = (w[0], w[2]) {
            assert!(long >= short, "{name}: long {long} < short {short}");
        }
    }
}

#[test]
fn fig6_fig7_failure_structure() {
    let a = suite();
    for s in a {
        let f = &s.failures.overall;
        // Pass rates below 70 % everywhere.
        assert!(
            f.count_shares[0] < 0.72,
            "{} pass {}",
            s.system,
            f.count_shares[0]
        );
        // Killed jobs consume at least their count share of core-hours;
        // failed jobs consume at most theirs (they die early).
        assert!(
            f.core_hour_shares[2] >= f.count_shares[2] * 0.8,
            "{}",
            s.system
        );
        assert!(
            f.core_hour_shares[1] <= f.count_shares[1] * 1.2,
            "{}",
            s.system
        );
        // Long jobs are overwhelmingly killed.
        if let Some(long) = s.failures.by_length[2] {
            assert!(long[2] > 0.5, "{} long-kill {}", s.system, long[2]);
        }
    }
    // Mira's long jobs are almost all killed (paper: ~99 %).
    if let Some(long) = get(a, "Mira").failures.by_length[2] {
        assert!(long[2] > 0.85, "Mira long-kill {}", long[2]);
    }
}

#[test]
fn fig8_repeated_configurations() {
    let a = suite();
    for s in a {
        if s.user_groups.users == 0 {
            continue;
        }
        assert!(
            s.user_groups.cumulative[9] > 0.7,
            "{} top-10 coverage {}",
            s.system,
            s.user_groups.cumulative[9]
        );
    }
    // DL users repeat less at the top-3 level than hybrid/HPC heavy users.
    let bw3 = get(a, "Blue Waters").user_groups.cumulative[2];
    let helios3 = get(a, "Helios").user_groups.cumulative[2];
    assert!(bw3 > helios3, "BW {bw3} vs Helios {helios3}");
}

#[test]
fn fig9_fig10_queue_adaptation() {
    let a = suite();
    // On the DL systems, the minimal-request share rises with queue length…
    for name in ["Philly", "Helios"] {
        let s = get(a, name);
        if let (Some(short), Some(long)) = (
            s.submission.request_shares[0],
            s.submission.request_shares[2],
        ) {
            assert!(
                long[0] >= short[0],
                "{name}: minimal share under long queue {} < short queue {}",
                long[0],
                short[0]
            );
        }
    }
    // …and mean runtimes shrink under congestion (Fig. 10, DL-only).
    let philly = get(a, "Philly");
    if let (Some(idle), Some(busy)) = (
        philly.submission.mean_runtime[0],
        philly.submission.mean_runtime[2],
    ) {
        assert!(
            busy <= idle,
            "Philly runtime under load {busy} vs idle {idle}"
        );
    }
}

#[test]
fn fig11_status_separates_runtimes_per_user() {
    let a = suite();
    let mut separated_users = 0;
    let mut judged = 0;
    for s in a {
        for u in &s.user_failures {
            if let Some(sep) = u.failed_shorter_than_passed(0.8) {
                judged += 1;
                if sep {
                    separated_users += 1;
                }
            }
        }
    }
    assert!(judged >= 5, "need users with both statuses, got {judged}");
    assert!(
        separated_users * 10 >= judged * 7,
        "failed-vs-passed separation holds for {separated_users}/{judged} users"
    );
}
