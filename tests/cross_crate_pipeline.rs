//! End-to-end pipeline test: generate → simulate → analyze, across crates.

use lumos_analysis::{analyze_suite, takeaways};
use lumos_traces::generate_paper_suite;

#[test]
fn generate_simulate_analyze_all_five_systems() {
    let traces = generate_paper_suite(1234, 1);
    assert_eq!(traces.len(), 5);
    let analyses = analyze_suite(&traces);
    assert_eq!(analyses.len(), 5);
    for a in &analyses {
        assert!(a.overview.job_count > 30, "{}", a.system);
        assert!(a.runtime.median > 0.0, "{}", a.system);
        assert!(a.utilization.window_util > 0.0, "{}", a.system);
        assert!(
            (0.0..=1.0).contains(&a.failures.overall.count_shares[0]),
            "{}",
            a.system
        );
        // The waiting analysis proves the replay filled every wait.
        assert!(a.waiting.mean_wait >= 0.0);
        // Serialization contract for the CLI.
        serde_json::to_string(a).expect("analysis serializes");
    }
}

#[test]
fn takeaways_evaluate_on_the_suite() {
    let traces = generate_paper_suite(1234, 1);
    let analyses = analyze_suite(&traces);
    let ts = takeaways::evaluate(&analyses);
    assert_eq!(ts.len(), 8);
    for t in &ts {
        assert!(!t.evidence.is_empty());
    }
    // The core cross-system contrasts must hold even on a 1-day window.
    let by_id = |id: u8| ts.iter().find(|t| t.id == id).expect("takeaway exists");
    assert!(by_id(1).holds, "T1: {}", by_id(1).evidence);
    assert!(by_id(3).holds, "T3: {}", by_id(3).evidence);
    assert!(by_id(7).holds, "T7: {}", by_id(7).evidence);
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let a = analyze_suite(&generate_paper_suite(77, 1));
    let b = analyze_suite(&generate_paper_suite(77, 1));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.overview.job_count, y.overview.job_count);
        assert_eq!(x.waiting.mean_wait, y.waiting.mean_wait);
        assert_eq!(x.failures.overall.counts, y.failures.overall.counts);
    }
}
