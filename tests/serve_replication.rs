//! Failover crash-injection tests for hot-standby replication: a primary
//! `lumos serve --journal --replicate-to` streams every journal record to
//! a follower, the primary is SIGKILLed mid-stream, the follower is
//! promoted, and its answers are compared **byte for byte** against an
//! uninterrupted reference server fed the exact same acknowledged command
//! sequence. The follower's journal directory must also mirror the
//! primary's byte for byte — segments and rotation snapshots alike.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lumos_core::SystemSpec;
use lumos_serve::{ServeConfig, Server};
use lumos_sim::SimConfig;

/// A fresh, unique journal directory under the system temp dir.
fn journal_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lumos-replica-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create journal dir");
    dir
}

/// Reserves an ephemeral port by binding and immediately releasing it, so
/// a server spawned later can listen on a known address.
fn reserve_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let port = listener.local_addr().expect("local addr").port();
    drop(listener);
    port
}

/// A spawned `lumos serve` process with its bound address parsed from the
/// startup banner.
struct ServerProc {
    child: Child,
    addr: String,
    #[allow(dead_code)]
    stderr: BufReader<ChildStderr>,
}

impl ServerProc {
    /// Spawns `lumos serve --journal <dir> --fsync always <extra...>` on
    /// an ephemeral port (pass `--addr` in `extra` to override) and waits
    /// for the listening banner.
    fn spawn(dir: &Path, extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_lumos"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .arg("--journal")
            .arg(dir)
            .args(["--fsync", "always"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn lumos serve");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut banner = String::new();
        stderr.read_line(&mut banner).expect("read banner");
        let addr = banner
            .strip_prefix("lumos-serve listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_string();
        Self {
            child,
            addr,
            stderr,
        }
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }
}

/// One NDJSON exchange over a live connection, returning the raw response
/// line (trailing newline stripped).
fn exchange(writer: &mut impl Write, reader: &mut impl BufRead, request: &str) -> String {
    writeln!(writer, "{request}").expect("write request");
    writer.flush().expect("flush request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(
        !line.is_empty(),
        "server closed the connection on {request}"
    );
    line.trim_end().to_string()
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// Polls the server's `Stats` until its clock reaches `t` (replication is
/// asynchronous: the follower trails the primary by the in-flight
/// window). Panics after 30 s.
fn wait_for_clock(addr: &str, t: i64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let (mut writer, mut reader) = connect(addr);
    let needle = format!("\"now\":{t},");
    loop {
        let stats = exchange(&mut writer, &mut reader, r#""Stats""#);
        if stats.contains(&needle) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never reached t = {t}: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The deterministic pre-crash command stream (no refused submissions:
/// refusals are never journaled, so they must not appear in a stream whose
/// replica is compared against a reference run). Ends with an `Advance` so
/// catch-up is observable as the follower's clock.
fn precrash_commands() -> Vec<String> {
    let units = SystemSpec::theta().total_units;
    let big = units - 8;
    let mut cmds = Vec::new();
    for i in 0..24u64 {
        let submit = i as i64 * 13;
        let (procs, runtime) = if i % 5 == 0 {
            (big, 400 + i as i64 * 7)
        } else {
            (1 + (i % 7), 90 + i as i64 * 11)
        };
        if i % 4 == 0 {
            cmds.push(format!(r#"{{"Advance":{{"to":{submit}}}}}"#));
        }
        cmds.push(format!(
            r#"{{"Submit":{{"job":{{"id":{i},"procs":{procs},"runtime":{runtime},"walltime":{},"user":{},"submit":{submit}}}}}}}"#,
            runtime + 200,
            i % 3,
        ));
    }
    cmds.push(r#"{"Cancel":{"id":20}}"#.to_string());
    cmds.push(r#"{"Advance":{"to":500}}"#.to_string());
    cmds
}

/// The post-failover probes whose raw responses must match byte for byte.
fn probe_commands() -> Vec<String> {
    vec![
        r#"{"Query":{"id":0}}"#.to_string(),
        r#"{"Query":{"id":20}}"#.to_string(),
        r#"{"Query":{"id":23}}"#.to_string(),
        r#""Stats""#.to_string(),
        r#""Snapshot""#.to_string(),
        r#""Shutdown""#.to_string(),
    ]
}

/// Feeds `commands` to an uninterrupted in-process server (no journal, no
/// replication) and returns every raw response line.
fn reference_responses(commands: &[String]) -> Vec<String> {
    let config = ServeConfig {
        system: SystemSpec::theta(),
        sim: SimConfig::default(),
        queue_capacity: 1024,
        time_scale: 0.0,
        journal: None,
        predictor: None,
        tenants: None,
        replicate_to: None,
        follow: None,
        group_commit: 64,
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind reference");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run(false));
    let (mut writer, mut reader) = connect(&addr);
    let replies: Vec<String> = commands
        .iter()
        .map(|c| exchange(&mut writer, &mut reader, c))
        .collect();
    handle
        .join()
        .expect("reference thread")
        .expect("reference run");
    replies
}

/// Every journal file (segments and snapshots) in `dir`, by name.
fn journal_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("read journal dir")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            let name = path.file_name()?.to_str()?.to_string();
            let journal = (name.starts_with("journal-") && name.ends_with(".log"))
                || (name.starts_with("snapshot-") && name.ends_with(".json"));
            journal.then(|| (name, std::fs::read(&path).expect("read journal file")))
        })
        .collect()
}

/// Asserts the follower's journal directory mirrors the primary's byte
/// for byte — same file names, same contents.
fn assert_dirs_identical(primary: &Path, follower: &Path) {
    let p = journal_files(primary);
    let f = journal_files(follower);
    assert_eq!(
        p.keys().collect::<Vec<_>>(),
        f.keys().collect::<Vec<_>>(),
        "journal file sets differ"
    );
    for (name, bytes) in &p {
        assert_eq!(
            bytes, &f[name],
            "{name} differs between primary and follower"
        );
    }
    assert!(!p.is_empty(), "no journal files to compare");
}

#[test]
fn promoted_follower_is_byte_identical_to_uninterrupted_run() {
    let prim_dir = journal_dir("failover-prim");
    let fol_dir = journal_dir("failover-fol");
    let pre = precrash_commands();
    let probes = probe_commands();

    // The follower starts first (the primary dials it) on a reserved
    // primary address, so `--follow` names the real peer.
    let prim_port = reserve_port();
    let prim_addr = format!("127.0.0.1:{prim_port}");
    let mut follower = ServerProc::spawn(&fol_dir, &["--follow", &prim_addr]);
    // Rotate every 8 records so the stream crosses segment boundaries and
    // the follower synthesizes its own rotation snapshots.
    let primary = ServerProc::spawn(
        &prim_dir,
        &[
            "--addr",
            &prim_addr,
            "--replicate-to",
            &follower.addr,
            "--snapshot-every",
            "8",
        ],
    );

    let (mut writer, mut reader) = connect(&primary.addr);
    let mut live_replies = Vec::new();
    for c in &pre {
        live_replies.push(exchange(&mut writer, &mut reader, c));
    }
    // Replication is asynchronous: wait until the follower has applied
    // the final Advance, then verify its mirror and pull the plug.
    wait_for_clock(&follower.addr, 500);
    assert_dirs_identical(&prim_dir, &fol_dir);
    primary.kill();

    // Promote the standby; it must answer exactly like a server that
    // never crashed.
    let (mut writer, mut reader) = connect(&follower.addr);
    let promoted = exchange(&mut writer, &mut reader, r#""Promote""#);
    assert!(
        promoted.contains("Promoted") && promoted.contains("\"now\":500"),
        "unexpected promotion reply: {promoted}"
    );
    let failover_replies: Vec<String> = probes
        .iter()
        .map(|c| exchange(&mut writer, &mut reader, c))
        .collect();
    let status = follower
        .child
        .wait()
        .expect("follower exits after Shutdown");
    assert!(status.success(), "promoted follower exited with {status}");

    let all: Vec<String> = pre.iter().chain(&probes).cloned().collect();
    let reference = reference_responses(&all);
    assert_eq!(
        live_replies[..],
        reference[..pre.len()],
        "pre-crash acknowledgments diverged from the uninterrupted run"
    );
    assert_eq!(
        failover_replies[..],
        reference[pre.len()..],
        "promoted standby diverged from the uninterrupted run"
    );

    std::fs::remove_dir_all(&prim_dir).ok();
    std::fs::remove_dir_all(&fol_dir).ok();
}

#[test]
fn follower_joins_mid_segment_and_resumes_after_its_own_crash() {
    let prim_dir = journal_dir("resume-prim");
    let fol_dir = journal_dir("resume-fol");

    // The primary starts alone, dialing a reserved follower address; the
    // sender retries until someone listens there.
    let fol_port = reserve_port();
    let fol_addr = format!("127.0.0.1:{fol_port}");
    let primary = ServerProc::spawn(&prim_dir, &["--replicate-to", &fol_addr]);
    let (mut writer, mut reader) = connect(&primary.addr);
    for i in 0..6u64 {
        let reply = exchange(
            &mut writer,
            &mut reader,
            &format!(
                r#"{{"Submit":{{"job":{{"id":{i},"procs":2,"runtime":100,"walltime":200,"submit":{}}}}}}}"#,
                i as i64 * 10
            ),
        );
        assert!(reply.contains("Submitted"), "unexpected {reply}");
    }
    exchange(&mut writer, &mut reader, r#"{"Advance":{"to":100}}"#);

    // The follower appears mid-segment: the handshake starts it at
    // offset 0 and the primary ships the whole backlog.
    let follower = ServerProc::spawn(&fol_dir, &["--addr", &fol_addr, "--follow", &primary.addr]);
    wait_for_clock(&follower.addr, 100);
    assert_dirs_identical(&prim_dir, &fol_dir);

    // Kill the follower mid-life; the primary keeps serving (and keeps
    // journaling) while nobody is listening.
    follower.kill();
    for i in 6..12u64 {
        let reply = exchange(
            &mut writer,
            &mut reader,
            &format!(
                r#"{{"Submit":{{"job":{{"id":{i},"procs":2,"runtime":100,"walltime":200,"submit":{}}}}}}}"#,
                100 + i as i64 * 10
            ),
        );
        assert!(reply.contains("Submitted"), "unexpected {reply}");
    }
    exchange(&mut writer, &mut reader, r#"{"Advance":{"to":400}}"#);

    // Restart the follower on the same directory and address: the
    // handshake reports its durable mid-segment offset and the primary
    // resumes from exactly there — no re-shipping, no gaps.
    let mut follower =
        ServerProc::spawn(&fol_dir, &["--addr", &fol_addr, "--follow", &primary.addr]);
    wait_for_clock(&follower.addr, 400);
    assert_dirs_identical(&prim_dir, &fol_dir);

    let (mut writer, mut reader) = connect(&follower.addr);
    exchange(&mut writer, &mut reader, r#""Shutdown""#);
    follower.child.wait().expect("reap follower");
    primary.kill();
    std::fs::remove_dir_all(&prim_dir).ok();
    std::fs::remove_dir_all(&fol_dir).ok();
}

#[test]
fn follower_catches_up_across_multiple_rotations() {
    let prim_dir = journal_dir("lag-prim");
    let fol_dir = journal_dir("lag-fol");

    // Aggressive rotation: by the time the follower connects, the record
    // it needs next lives several segments behind the active one.
    let fol_port = reserve_port();
    let fol_addr = format!("127.0.0.1:{fol_port}");
    let primary = ServerProc::spawn(
        &prim_dir,
        &["--replicate-to", &fol_addr, "--snapshot-every", "4"],
    );
    let (mut writer, mut reader) = connect(&primary.addr);
    let pre = precrash_commands();
    for c in &pre {
        exchange(&mut writer, &mut reader, c);
    }
    let segments = journal_files(&prim_dir)
        .keys()
        .filter(|n| n.ends_with(".log"))
        .count();
    assert!(
        segments > 2,
        "need a multi-rotation backlog, got {segments}"
    );

    let mut follower =
        ServerProc::spawn(&fol_dir, &["--addr", &fol_addr, "--follow", &primary.addr]);
    wait_for_clock(&follower.addr, 500);
    assert_dirs_identical(&prim_dir, &fol_dir);

    // The replayed state answers like the primary, not just the files.
    let (mut pw, mut pr) = connect(&primary.addr);
    let (mut fw, mut fr) = connect(&follower.addr);
    let p = exchange(&mut pw, &mut pr, r#""Snapshot""#);
    let f = exchange(&mut fw, &mut fr, r#""Snapshot""#);
    assert_eq!(p, f, "snapshots diverged");

    exchange(&mut fw, &mut fr, r#""Shutdown""#);
    follower.child.wait().expect("reap follower");
    primary.kill();
    std::fs::remove_dir_all(&prim_dir).ok();
    std::fs::remove_dir_all(&fol_dir).ok();
}

#[test]
fn promotion_rules_and_follower_write_refusal() {
    let prim_dir = journal_dir("rules-prim");
    let fol_dir = journal_dir("rules-fol");

    let prim_port = reserve_port();
    let prim_addr = format!("127.0.0.1:{prim_port}");
    let mut follower = ServerProc::spawn(&fol_dir, &["--follow", &prim_addr]);
    let primary = ServerProc::spawn(
        &prim_dir,
        &["--addr", &prim_addr, "--replicate-to", &follower.addr],
    );

    // A primary refuses promotion — it already is one.
    let (mut pw, mut pr) = connect(&primary.addr);
    let reply = exchange(&mut pw, &mut pr, r#""Promote""#);
    assert!(
        reply.contains("Error") && reply.contains("already the primary"),
        "unexpected {reply}"
    );

    // A follower refuses writes while following.
    let (mut fw, mut fr) = connect(&follower.addr);
    for refused in [
        r#"{"Submit":{"job":{"id":1,"procs":1,"runtime":10}}}"#,
        r#"{"Cancel":{"id":1}}"#,
        r#"{"Advance":{"to":50}}"#,
    ] {
        let reply = exchange(&mut fw, &mut fr, refused);
        assert!(
            reply.contains("Error") && reply.contains("read-only follower"),
            "unexpected {reply}"
        );
    }

    // First promotion succeeds; the second is refused (no double
    // promotion), and the promoted server accepts writes.
    primary.kill();
    let reply = exchange(&mut fw, &mut fr, r#""Promote""#);
    assert!(reply.contains("Promoted"), "unexpected {reply}");
    let reply = exchange(&mut fw, &mut fr, r#""Promote""#);
    assert!(
        reply.contains("Error") && reply.contains("already the primary"),
        "double promotion accepted: {reply}"
    );
    let reply = exchange(
        &mut fw,
        &mut fr,
        r#"{"Submit":{"job":{"id":1,"procs":1,"runtime":10,"submit":0}}}"#,
    );
    assert!(reply.contains("Submitted"), "unexpected {reply}");
    exchange(&mut fw, &mut fr, r#""Shutdown""#);
    follower.child.wait().expect("reap follower");

    std::fs::remove_dir_all(&prim_dir).ok();
    std::fs::remove_dir_all(&fol_dir).ok();
}
